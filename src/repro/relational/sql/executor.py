"""SQL execution: lowering to runtime expressions + the select pipeline.

The executor implements INNER-join SELECT semantics with predicate pushdown
and greedy equi-join ordering (hash joins), grouped aggregation with the
permissive "first row of group" rule for non-aggregated columns (this is what
lets the paper's general pattern ``SELECT τa.*, ENT_LIST(...) GROUP BY τa.id``
run unchanged — every τa column is functionally dependent on the primary
key), correlated EXISTS / IN subqueries, DISTINCT, ORDER BY (aliases,
ordinals, or arbitrary expressions), LIMIT/OFFSET, and UNION [ALL].
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.errors import (
    AmbiguousColumn,
    SqlSemanticError,
    UnknownColumn,
)
from repro.relational.aggregates import AGGREGATES
from repro.relational.algebra import (
    ColumnId,
    Relation,
    _null_aware_key,
    equi_join,
    from_table,
    select as algebra_select,
)
from repro.relational.database import Database
from repro.relational.expressions import (
    And,
    Arithmetic,
    ColumnRef,
    Comparison,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
    Scope,
    conjoin,
)
from repro.relational.sql.ast_nodes import (
    AndNode,
    BetweenNode,
    BinaryNode,
    ColumnNode,
    ExistsNode,
    ExprNode,
    FuncNode,
    InListNode,
    InSubqueryNode,
    IsNullNode,
    JoinClause,
    LikeNode,
    LiteralNode,
    NotNode,
    OrNode,
    SelectItem,
    SelectStatement,
    StarNode,
    Statement,
    TableRef,
    UnionStatement,
)
from repro.relational.sql.parser import parse
from repro.relational.sql.planner import (
    ScopeMap,
    contains_aggregate,
    contains_subquery,
    find_equi_pair,
    split_conjuncts,
)

_COMPARISON_OPS = {"=", "!=", "<", "<=", ">", ">="}
_ARITHMETIC_OPS = {"+", "-", "*", "/"}


def execute_sql(database: Database, sql: str) -> Relation:
    """Parse and execute one SQL statement against ``database``."""
    return execute_statement(database, parse(sql))


def execute_statement(database: Database, statement: Statement) -> Relation:
    if isinstance(statement, UnionStatement):
        return _execute_union(database, statement)
    return _execute_select(database, statement)


# ----------------------------------------------------------------------
# Runtime subquery predicates
# ----------------------------------------------------------------------
class ExistsPredicate(Expression):
    """Correlated EXISTS with equality decorrelation.

    When the only correlation between the subquery and the outer query is a
    conjunction of equalities ``inner_column = outer_reference``, the
    subquery is rewritten once into an uncorrelated
    ``SELECT inner_columns ...`` whose result is hashed; each outer row then
    costs a single set lookup (textbook semi-join decorrelation). Any other
    correlation shape falls back to per-row re-execution.
    """

    def __init__(self, database: Database, subquery: SelectStatement,
                 negate: bool = False) -> None:
        self._database = database
        self._subquery = subquery
        self._negate = negate
        # None = not attempted yet; False = fall back to per-row execution;
        # otherwise (outer_refs, hashed inner tuples).
        self._plan: tuple[list[tuple[str | None, str]], set] | bool | None = None

    def evaluate(self, scope: Scope) -> bool:
        if self._plan is None:
            self._plan = _decorrelate_exists(self._database, self._subquery)
        if self._plan is False:
            result = _execute_select(
                self._database, self._subquery, outer_scope=scope
            )
            found = bool(result.rows)
            return not found if self._negate else found
        outer_refs, values = self._plan  # type: ignore[misc]
        key = tuple(
            scope.resolve(qualifier, name) for qualifier, name in outer_refs
        )
        found = not any(part is None for part in key) and key in values
        return not found if self._negate else found

    def __str__(self) -> str:
        keyword = "NOT EXISTS" if self._negate else "EXISTS"
        return f"{keyword} (...)"


def _decorrelate_exists(
    database: Database, subquery: SelectStatement
) -> tuple[list[tuple[str | None, str]], set] | bool:
    """Rewrite EXISTS into a hashed semi-join when correlation is equality-only.

    Returns ``False`` when the rewrite is not applicable (grouping, limits,
    non-equality correlation, correlation inside nested subqueries).
    """
    if (subquery.group_by or subquery.having or subquery.order_by
            or subquery.limit is not None or subquery.offset is not None
            or subquery.distinct):
        return False
    refs = list(subquery.from_tables) + [j.table for j in subquery.joins]
    try:
        scope_map = ScopeMap({
            ref.qualifier: set(
                database.table(ref.name).schema.column_names
            )
            for ref in refs
        })
    except Exception:
        return False

    conjuncts: list[ExprNode] = split_conjuncts(subquery.where)
    for join in subquery.joins:
        conjuncts.extend(split_conjuncts(join.condition))

    kept: list[ExprNode] = []
    inner_columns: list[ColumnNode] = []
    outer_refs: list[tuple[str | None, str]] = []
    for conjunct in conjuncts:
        if contains_subquery(conjunct):
            return False  # nested subqueries may correlate arbitrarily
        if scope_map.tables_for(conjunct) is not None:
            kept.append(conjunct)
            continue
        pair = _equality_with_outer(conjunct, scope_map)
        if pair is None:
            return False
        inner_columns.append(pair[0])
        outer_refs.append(pair[1])
    if not outer_refs:
        kept_where = _conjoin_nodes(kept)
        flat = SelectStatement(
            items=[SelectItem(LiteralNode(1))],
            from_tables=list(subquery.from_tables),
            joins=list(subquery.joins),
            where=kept_where,
            limit=1,
        )
        result = _execute_select(database, flat)
        # Uncorrelated EXISTS: constant truth value for every outer row.
        return ([], {()} if result.rows else set())

    rewritten = SelectStatement(
        items=[SelectItem(column) for column in inner_columns],
        from_tables=list(subquery.from_tables),
        joins=list(subquery.joins),
        where=_conjoin_nodes(kept),
    )
    relation = _execute_select(database, rewritten)
    values = {
        row for row in relation.rows if not any(part is None for part in row)
    }
    return (outer_refs, values)


def _equality_with_outer(
    node: ExprNode, scope_map: ScopeMap
) -> tuple[ColumnNode, tuple[str | None, str]] | None:
    """Match ``inner_column = outer_reference`` in either order."""
    if not isinstance(node, BinaryNode) or node.op != "=":
        return None
    left, right = node.left, node.right
    if not isinstance(left, ColumnNode) or not isinstance(right, ColumnNode):
        return None
    left_owners = scope_map.owners(left.qualifier, left.name)
    right_owners = scope_map.owners(right.qualifier, right.name)
    if len(left_owners) == 1 and not right_owners:
        return left, (right.qualifier, right.name)
    if len(right_owners) == 1 and not left_owners:
        return right, (left.qualifier, left.name)
    return None


def _conjoin_nodes(nodes: list[ExprNode]) -> ExprNode | None:
    if not nodes:
        return None
    if len(nodes) == 1:
        return nodes[0]
    return AndNode(tuple(nodes))


class InSubqueryPredicate(Expression):
    """Correlated ``expr IN (SELECT ...)`` with SQL NULL semantics."""

    def __init__(self, database: Database, operand: Expression,
                 subquery: SelectStatement, negate: bool = False) -> None:
        self._database = database
        self._operand = operand
        self._subquery = subquery
        self._negate = negate

    def evaluate(self, scope: Scope) -> bool | None:
        value = self._operand.evaluate(scope)
        if value is None:
            return None
        result = _execute_select(self._database, self._subquery, outer_scope=scope)
        if len(result.columns) != 1:
            raise SqlSemanticError("IN subquery must return exactly one column")
        values = [row[0] for row in result.rows]
        if value in values:
            return not self._negate
        if any(candidate is None for candidate in values):
            return None
        return self._negate

    def references(self) -> set[tuple[str | None, str]]:
        return self._operand.references()


# ----------------------------------------------------------------------
# Lowering AST expressions to runtime expressions
# ----------------------------------------------------------------------
def lower_expression(node: ExprNode, database: Database) -> Expression:
    """Lower an AST expression to a runtime one. Aggregates are rejected —
    callers in grouped context must use :func:`_eval_group_expr` instead."""
    if isinstance(node, LiteralNode):
        return Literal(node.value)
    if isinstance(node, ColumnNode):
        return ColumnRef(node.name, node.qualifier)
    if isinstance(node, BinaryNode):
        left = lower_expression(node.left, database)
        right = lower_expression(node.right, database)
        if node.op in _COMPARISON_OPS:
            return Comparison(node.op, left, right)
        if node.op in _ARITHMETIC_OPS:
            return Arithmetic(node.op, left, right)
        raise SqlSemanticError(f"unknown binary operator {node.op!r}")
    if isinstance(node, AndNode):
        return And(tuple(lower_expression(op, database) for op in node.operands))
    if isinstance(node, OrNode):
        return Or(tuple(lower_expression(op, database) for op in node.operands))
    if isinstance(node, NotNode):
        return Not(lower_expression(node.operand, database))
    if isinstance(node, LikeNode):
        return Like(lower_expression(node.operand, database), node.pattern,
                    node.negate)
    if isinstance(node, InListNode):
        return InList(lower_expression(node.operand, database), node.values,
                      node.negate)
    if isinstance(node, IsNullNode):
        return IsNull(lower_expression(node.operand, database), node.negate)
    if isinstance(node, BetweenNode):
        operand = lower_expression(node.operand, database)
        bounds = And((
            Comparison(">=", operand, lower_expression(node.low, database)),
            Comparison("<=", operand, lower_expression(node.high, database)),
        ))
        return Not(bounds) if node.negate else bounds
    if isinstance(node, ExistsNode):
        return ExistsPredicate(database, node.subquery, node.negate)
    if isinstance(node, InSubqueryNode):
        operand = lower_expression(node.operand, database)
        return InSubqueryPredicate(database, operand, node.subquery, node.negate)
    if isinstance(node, FuncNode):
        if _is_aggregate_func(node):
            raise SqlSemanticError(
                f"aggregate {node.name.upper()} is not allowed here"
            )
        args = tuple(lower_expression(arg, database) for arg in node.args)
        return FunctionCall(node.name, args)
    if isinstance(node, StarNode):
        raise SqlSemanticError("'*' is only allowed as a select item or in COUNT(*)")
    raise SqlSemanticError(f"cannot lower expression node {node!r}")


def _is_aggregate_func(node: FuncNode) -> bool:
    return node.name.lower() in ("count", "sum", "avg", "min", "max", "ent_list")


# ----------------------------------------------------------------------
# SELECT pipeline
# ----------------------------------------------------------------------
def _execute_select(
    database: Database,
    statement: SelectStatement,
    outer_scope: Scope | None = None,
) -> Relation:
    joined = _join_sources(database, statement, outer_scope)
    grouped = bool(statement.group_by) or _select_has_aggregates(statement)
    if grouped:
        output, reps, groups = _execute_grouped(database, statement, joined,
                                                outer_scope)
    else:
        output, reps = _execute_flat(database, statement, joined, outer_scope)
        groups = None

    if statement.distinct:
        output, reps, groups = _apply_distinct(output, reps, groups)
    if statement.order_by:
        output, reps, groups = _apply_order(
            database, statement, joined, output, reps, groups, outer_scope
        )
    if statement.limit is not None or statement.offset is not None:
        start = statement.offset or 0
        stop = None if statement.limit is None else start + statement.limit
        output = Relation(output.columns, output.rows[start:stop])
    return output


def _join_sources(
    database: Database,
    statement: SelectStatement,
    outer_scope: Scope | None,
) -> Relation:
    refs: list[TableRef] = list(statement.from_tables) + [
        join.table for join in statement.joins
    ]
    relations: dict[str, Relation] = {}
    order: list[str] = []
    for ref in refs:
        qualifier = ref.qualifier
        if qualifier in relations:
            raise SqlSemanticError(f"duplicate table alias {qualifier!r}")
        relations[qualifier] = from_table(database.table(ref.name), qualifier)
        order.append(qualifier)

    conjuncts: list[ExprNode] = split_conjuncts(statement.where)
    for join in statement.joins:
        conjuncts.extend(split_conjuncts(join.condition))

    scope_map = ScopeMap(
        {q: set(rel.column_names) for q, rel in relations.items()}
    )

    pushed: dict[str, list[ExprNode]] = {q: [] for q in order}
    join_conjuncts: list[tuple[tuple[str, str], tuple[str, str], ExprNode]] = []
    residual: list[ExprNode] = []
    for conjunct in conjuncts:
        if contains_subquery(conjunct) or contains_aggregate(conjunct):
            if contains_aggregate(conjunct):
                raise SqlSemanticError("aggregates are not allowed in WHERE/ON")
            residual.append(conjunct)
            continue
        tables = scope_map.tables_for(conjunct)
        if tables is None:
            residual.append(conjunct)
            continue
        if len(tables) <= 1:
            target = next(iter(tables)) if tables else order[0]
            pushed[target].append(conjunct)
            continue
        pair = find_equi_pair(conjunct, scope_map)
        if pair is not None and len(tables) == 2:
            join_conjuncts.append((pair[0], pair[1], conjunct))
        else:
            residual.append(conjunct)

    for qualifier in order:
        if pushed[qualifier]:
            predicate = conjoin(
                [lower_expression(c, database) for c in pushed[qualifier]]
            )
            relations[qualifier] = _filter(
                relations[qualifier], predicate, outer_scope
            )

    current = relations[order[0]]
    available = {order[0]}
    remaining = list(order[1:])
    unused = list(join_conjuncts)
    while remaining:
        chosen: str | None = None
        chosen_pairs: list[tuple[ColumnId, ColumnId]] = []
        chosen_used: list[int] = []
        for candidate in remaining:
            pairs: list[tuple[ColumnId, ColumnId]] = []
            used: list[int] = []
            for index, (left, right, _node) in enumerate(unused):
                if left[0] in available and right[0] == candidate:
                    pairs.append(((left[0], left[1]), (right[0], right[1])))
                    used.append(index)
                elif right[0] in available and left[0] == candidate:
                    pairs.append(((right[0], right[1]), (left[0], left[1])))
                    used.append(index)
            if pairs:
                chosen, chosen_pairs, chosen_used = candidate, pairs, used
                break
        if chosen is None:
            chosen = remaining[0]
        current = equi_join(current, relations[chosen], chosen_pairs)
        available.add(chosen)
        remaining.remove(chosen)
        unused = [item for index, item in enumerate(unused)
                  if index not in set(chosen_used)]

    residual.extend(node for _left, _right, node in unused)
    if residual:
        predicate = conjoin([lower_expression(c, database) for c in residual])
        current = _filter(current, predicate, outer_scope)
    return current


def _filter(
    relation: Relation, predicate: Expression, outer_scope: Scope | None
) -> Relation:
    if outer_scope is None:
        return algebra_select(relation, predicate)
    kept = [
        row
        for row in relation.rows
        if predicate.evaluate(Scope(relation.columns, row, parent=outer_scope))
        is True
    ]
    return Relation(list(relation.columns), kept)


def _select_has_aggregates(statement: SelectStatement) -> bool:
    for item in statement.items:
        if isinstance(item.expression, StarNode):
            continue
        if contains_aggregate(item.expression):
            return True
    return bool(statement.having) and contains_aggregate(statement.having)


# ----------------------------------------------------------------------
# Flat (non-grouped) projection
# ----------------------------------------------------------------------
def _execute_flat(
    database: Database,
    statement: SelectStatement,
    joined: Relation,
    outer_scope: Scope | None,
) -> tuple[Relation, list[tuple[Any, ...]]]:
    columns = _output_columns(statement, joined)
    lowered = _lower_items(statement, joined, database)
    rows: list[tuple[Any, ...]] = []
    reps: list[tuple[Any, ...]] = []
    for source_row in joined.rows:
        scope = Scope(joined.columns, source_row, parent=outer_scope)
        values: list[Any] = []
        for kind, payload in lowered:
            if kind == "star":
                values.extend(source_row[position] for position in payload)
            else:
                values.append(payload.evaluate(scope))
        rows.append(tuple(values))
        reps.append(source_row)
    return Relation(columns, rows), reps


def _lower_items(
    statement: SelectStatement, joined: Relation, database: Database
) -> list[tuple[str, Any]]:
    """Per select item: ("star", positions) or ("expr", runtime expression)."""
    lowered: list[tuple[str, Any]] = []
    for item in statement.items:
        if isinstance(item.expression, StarNode):
            lowered.append(
                ("star", _star_positions(item.expression, joined))
            )
        else:
            lowered.append(("expr", lower_expression(item.expression, database)))
    return lowered


def _star_positions(star: StarNode, joined: Relation) -> list[int]:
    positions = [
        index
        for index, (qualifier, _name) in enumerate(joined.columns)
        if star.qualifier is None
        or (qualifier or "").lower() == star.qualifier.lower()
    ]
    if not positions:
        raise SqlSemanticError(f"unknown table {star.qualifier!r} in select '*'")
    return positions


def _output_columns(statement: SelectStatement, joined: Relation) -> list[ColumnId]:
    columns: list[ColumnId] = []
    for index, item in enumerate(statement.items):
        if isinstance(item.expression, StarNode):
            columns.extend(
                joined.columns[position]
                for position in _star_positions(item.expression, joined)
            )
            continue
        columns.append((None, _output_name(item, index)))
    return columns


def _output_name(item: SelectItem, index: int) -> str:
    if item.alias:
        return item.alias
    node = item.expression
    if isinstance(node, ColumnNode):
        return node.name
    if isinstance(node, FuncNode):
        return node.name.lower()
    return f"expr{index + 1}"


# ----------------------------------------------------------------------
# Grouped execution
# ----------------------------------------------------------------------
def _execute_grouped(
    database: Database,
    statement: SelectStatement,
    joined: Relation,
    outer_scope: Scope | None,
) -> tuple[Relation, list[tuple[Any, ...]], list[list[tuple[Any, ...]]]]:
    key_exprs = [lower_expression(node, database) for node in statement.group_by]
    groups: dict[tuple[Any, ...], list[tuple[Any, ...]]] = {}
    order: list[tuple[Any, ...]] = []
    for row in joined.rows:
        scope = Scope(joined.columns, row, parent=outer_scope)
        key = tuple(expr.evaluate(scope) for expr in key_exprs)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)
    if not statement.group_by and not order:
        # Scalar aggregation over an empty input still yields one row.
        order.append(())
        groups[()] = []

    columns = _output_columns(statement, joined)
    rows: list[tuple[Any, ...]] = []
    reps: list[tuple[Any, ...]] = []
    row_groups: list[list[tuple[Any, ...]]] = []
    empty_row = tuple([None] * len(joined.columns))
    for key in order:
        member_rows = groups[key]
        rep = member_rows[0] if member_rows else empty_row
        if statement.having is not None:
            verdict = _eval_group_expr(
                statement.having, member_rows, joined, database, outer_scope
            )
            if verdict is not True:
                continue
        values: list[Any] = []
        for item in statement.items:
            if isinstance(item.expression, StarNode):
                values.extend(
                    rep[position]
                    for position in _star_positions(item.expression, joined)
                )
            else:
                values.append(
                    _eval_group_expr(
                        item.expression, member_rows, joined, database, outer_scope
                    )
                )
        rows.append(tuple(values))
        reps.append(rep)
        row_groups.append(member_rows)
    return Relation(columns, rows), reps, row_groups


def _eval_group_expr(
    node: ExprNode,
    group_rows: list[tuple[Any, ...]],
    relation: Relation,
    database: Database,
    outer_scope: Scope | None,
) -> Any:
    """Evaluate a select/HAVING/ORDER expression in grouped context.

    Aggregate calls see the whole group; everything else sees the group's
    first row (the engine's permissive functional-dependency rule).
    """
    if isinstance(node, FuncNode) and _is_aggregate_func(node):
        return _eval_aggregate(node, group_rows, relation, database, outer_scope)
    if not contains_aggregate(node):
        rep = group_rows[0] if group_rows else tuple([None] * len(relation.columns))
        scope = Scope(relation.columns, rep, parent=outer_scope)
        return lower_expression(node, database).evaluate(scope)
    # Mixed expression, e.g. COUNT(*) + 1 or comparisons over aggregates.
    recurse: Callable[[ExprNode], Any] = lambda child: _eval_group_expr(
        child, group_rows, relation, database, outer_scope
    )
    empty = Scope([], [])
    if isinstance(node, BinaryNode):
        left, right = Literal(recurse(node.left)), Literal(recurse(node.right))
        if node.op in _COMPARISON_OPS:
            return Comparison(node.op, left, right).evaluate(empty)
        return Arithmetic(node.op, left, right).evaluate(empty)
    if isinstance(node, AndNode):
        return And(tuple(Literal(recurse(op)) for op in node.operands)).evaluate(empty)
    if isinstance(node, OrNode):
        return Or(tuple(Literal(recurse(op)) for op in node.operands)).evaluate(empty)
    if isinstance(node, NotNode):
        return Not(Literal(recurse(node.operand))).evaluate(empty)
    if isinstance(node, LikeNode):
        return Like(Literal(recurse(node.operand)), node.pattern,
                    node.negate).evaluate(empty)
    if isinstance(node, IsNullNode):
        return IsNull(Literal(recurse(node.operand)), node.negate).evaluate(empty)
    if isinstance(node, InListNode):
        return InList(Literal(recurse(node.operand)), node.values,
                      node.negate).evaluate(empty)
    if isinstance(node, BetweenNode):
        operand = Literal(recurse(node.operand))
        bounds = And((
            Comparison(">=", operand, Literal(recurse(node.low))),
            Comparison("<=", operand, Literal(recurse(node.high))),
        ))
        result = bounds.evaluate(empty)
        if node.negate:
            return None if result is None else not result
        return result
    raise SqlSemanticError(f"unsupported grouped expression {node!r}")


def _eval_aggregate(
    node: FuncNode,
    group_rows: list[tuple[Any, ...]],
    relation: Relation,
    database: Database,
    outer_scope: Scope | None,
) -> Any:
    name = node.name.lower()
    if node.star:
        if name != "count":
            raise SqlSemanticError(f"{name.upper()}(*) is not valid")
        return AGGREGATES["count_star"]([None] * len(group_rows))
    if len(node.args) != 1:
        raise SqlSemanticError(
            f"aggregate {name.upper()} takes exactly one argument"
        )
    argument = lower_expression(node.args[0], database)
    inputs: Iterable[Any] = [
        argument.evaluate(Scope(relation.columns, row, parent=outer_scope))
        for row in group_rows
    ]
    if name == "count" and node.distinct:
        return AGGREGATES["count_distinct"](inputs)
    return AGGREGATES[name](inputs)


# ----------------------------------------------------------------------
# DISTINCT / ORDER BY / UNION
# ----------------------------------------------------------------------
def _apply_distinct(
    output: Relation,
    reps: list[tuple[Any, ...]],
    groups: list[list[tuple[Any, ...]]] | None,
) -> tuple[Relation, list[tuple[Any, ...]], list[list[tuple[Any, ...]]] | None]:
    seen: set[tuple[Any, ...]] = set()
    rows: list[tuple[Any, ...]] = []
    kept_reps: list[tuple[Any, ...]] = []
    kept_groups: list[list[tuple[Any, ...]]] = []
    for index, row in enumerate(output.rows):
        if row in seen:
            continue
        seen.add(row)
        rows.append(row)
        kept_reps.append(reps[index])
        if groups is not None:
            kept_groups.append(groups[index])
    return (
        Relation(output.columns, rows),
        kept_reps,
        kept_groups if groups is not None else None,
    )


def _apply_order(
    database: Database,
    statement: SelectStatement,
    joined: Relation,
    output: Relation,
    reps: list[tuple[Any, ...]],
    groups: list[list[tuple[Any, ...]]] | None,
    outer_scope: Scope | None,
) -> tuple[Relation, list[tuple[Any, ...]], list[list[tuple[Any, ...]]] | None]:
    indexes = list(range(len(output.rows)))
    for term in reversed(statement.order_by):
        keys = [
            _order_key(database, statement, joined, output, reps, groups,
                       outer_scope, term.expression, index)
            for index in indexes
        ]
        decorated = sorted(
            zip(keys, range(len(indexes)), indexes),
            key=lambda item: _null_aware_key(item[0]),
            reverse=term.descending,
        )
        indexes = [index for _, _, index in decorated]
    rows = [output.rows[index] for index in indexes]
    new_reps = [reps[index] for index in indexes]
    new_groups = (
        [groups[index] for index in indexes] if groups is not None else None
    )
    return Relation(output.columns, rows), new_reps, new_groups


def _order_key(
    database: Database,
    statement: SelectStatement,
    joined: Relation,
    output: Relation,
    reps: list[tuple[Any, ...]],
    groups: list[list[tuple[Any, ...]]] | None,
    outer_scope: Scope | None,
    expression: ExprNode,
    index: int,
) -> Any:
    # Ordinal: ORDER BY 2.
    if isinstance(expression, LiteralNode) and isinstance(expression.value, int):
        position = expression.value - 1
        if not 0 <= position < len(output.columns):
            raise SqlSemanticError(
                f"ORDER BY ordinal {expression.value} out of range"
            )
        return output.rows[index][position]
    # Try the output row first (select aliases and projected columns).
    if not contains_aggregate(expression):
        try:
            runtime = lower_expression(expression, database)
            return runtime.evaluate(Scope(output.columns, output.rows[index]))
        except (UnknownColumn, AmbiguousColumn):
            pass
        runtime = lower_expression(expression, database)
        return runtime.evaluate(
            Scope(joined.columns, reps[index], parent=outer_scope)
        )
    if groups is None:
        raise SqlSemanticError("aggregate in ORDER BY without grouping")
    return _eval_group_expr(expression, groups[index], joined, database, outer_scope)


def _execute_union(database: Database, statement: UnionStatement) -> Relation:
    results = [_execute_select(database, select) for select in statement.selects]
    arity = len(results[0].columns)
    for result in results[1:]:
        if len(result.columns) != arity:
            raise SqlSemanticError("UNION branches must have the same arity")
    rows: list[tuple[Any, ...]] = []
    for result in results:
        rows.extend(result.rows)
    combined = Relation(list(results[0].columns), rows)
    if statement.all:
        return combined
    seen: set[tuple[Any, ...]] = set()
    unique: list[tuple[Any, ...]] = []
    for row in combined.rows:
        if row not in seen:
            seen.add(row)
            unique.append(row)
    return Relation(list(combined.columns), unique)
