"""Recursive-descent parser for the SQL dialect.

Grammar (simplified):

    statement   := select (UNION [ALL] select)* EOF
    select      := SELECT [DISTINCT] items FROM table_refs join* [WHERE expr]
                   [GROUP BY expr_list] [HAVING expr]
                   [ORDER BY order_terms] [LIMIT n [OFFSET n]]
    items       := item (',' item)*       item := expr [[AS] alias] | '*' | id.'*'
    table_refs  := table_ref (',' table_ref)*
    join        := [INNER|LEFT [OUTER]] JOIN table_ref ON expr
    expr        := or_expr  (standard precedence: OR < AND < NOT < predicate
                   < additive < multiplicative < unary < primary)
"""

from __future__ import annotations

from typing import Any

from repro.errors import SqlSyntaxError
from repro.relational.sql.ast_nodes import (
    AndNode,
    BetweenNode,
    BinaryNode,
    ColumnNode,
    ExistsNode,
    ExprNode,
    FuncNode,
    InListNode,
    InSubqueryNode,
    IsNullNode,
    JoinClause,
    LikeNode,
    LiteralNode,
    NotNode,
    OrNode,
    OrderTerm,
    SelectItem,
    SelectStatement,
    StarNode,
    Statement,
    TableRef,
    UnionStatement,
)
from repro.relational.sql.lexer import Token, TokenType, tokenize

_AGGREGATE_KEYWORDS = ("count", "sum", "avg", "min", "max", "ent_list")


def parse(sql: str) -> Statement:
    """Parse one SQL statement (optionally a UNION chain)."""
    parser = _Parser(tokenize(sql))
    statement = parser.parse_statement()
    parser.expect_eof()
    return statement


def parse_select(sql: str) -> SelectStatement:
    """Parse a plain SELECT, rejecting UNION chains."""
    statement = parse(sql)
    if not isinstance(statement, SelectStatement):
        raise SqlSyntaxError("expected a plain SELECT statement, found UNION")
    return statement


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._position = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self._tokens[self._position]

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self._position += 1
        return token

    def accept_keyword(self, *names: str) -> bool:
        if self.current.is_keyword(*names):
            self.advance()
            return True
        return False

    def expect_keyword(self, *names: str) -> Token:
        if not self.current.is_keyword(*names):
            raise SqlSyntaxError(
                f"expected {'/'.join(names).upper()}, found {self.current.value!r}",
                self.current.position,
            )
        return self.advance()

    def accept_punct(self, value: str) -> bool:
        token = self.current
        if token.type is TokenType.PUNCT and token.value == value:
            self.advance()
            return True
        return False

    def expect_punct(self, value: str) -> None:
        if not self.accept_punct(value):
            raise SqlSyntaxError(
                f"expected {value!r}, found {self.current.value!r}",
                self.current.position,
            )

    def expect_identifier(self) -> str:
        token = self.current
        if token.type is not TokenType.IDENTIFIER:
            raise SqlSyntaxError(
                f"expected identifier, found {token.value!r}", token.position
            )
        self.advance()
        return token.value

    def expect_eof(self) -> None:
        if self.current.type is not TokenType.EOF:
            raise SqlSyntaxError(
                f"unexpected trailing input {self.current.value!r}",
                self.current.position,
            )

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def parse_statement(self) -> Statement:
        first = self.parse_select()
        if not self.current.is_keyword("union"):
            return first
        selects = [first]
        union_all: bool | None = None
        while self.accept_keyword("union"):
            this_all = self.accept_keyword("all")
            if union_all is None:
                union_all = this_all
            elif union_all != this_all:
                raise SqlSyntaxError("mixed UNION and UNION ALL are not supported")
            selects.append(self.parse_select())
        return UnionStatement(selects, all=bool(union_all))

    def parse_select(self) -> SelectStatement:
        self.expect_keyword("select")
        distinct = self.accept_keyword("distinct")
        items = self._parse_select_items()
        self.expect_keyword("from")
        from_tables = [self._parse_table_ref()]
        joins: list[JoinClause] = []
        while True:
            if self.accept_punct(","):
                from_tables.append(self._parse_table_ref())
                continue
            if self.current.is_keyword("join", "inner", "left"):
                joins.append(self._parse_join())
                continue
            break
        where = self._parse_expr() if self.accept_keyword("where") else None
        group_by: list[ExprNode] = []
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            group_by.append(self._parse_expr())
            while self.accept_punct(","):
                group_by.append(self._parse_expr())
        having = self._parse_expr() if self.accept_keyword("having") else None
        order_by: list[OrderTerm] = []
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            order_by.append(self._parse_order_term())
            while self.accept_punct(","):
                order_by.append(self._parse_order_term())
        limit = offset = None
        if self.accept_keyword("limit"):
            limit = self._expect_int()
            if self.accept_keyword("offset"):
                offset = self._expect_int()
        return SelectStatement(
            items=items,
            from_tables=from_tables,
            joins=joins,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _parse_select_items(self) -> list[SelectItem]:
        items = [self._parse_select_item()]
        while self.accept_punct(","):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> SelectItem:
        if self.accept_punct("*"):
            return SelectItem(StarNode())
        # ``alias.*`` requires two tokens of lookahead.
        token = self.current
        if (
            token.type is TokenType.IDENTIFIER
            and self._peek(1).type is TokenType.PUNCT
            and self._peek(1).value == "."
            and self._peek(2).type is TokenType.PUNCT
            and self._peek(2).value == "*"
        ):
            qualifier = self.expect_identifier()
            self.expect_punct(".")
            self.expect_punct("*")
            return SelectItem(StarNode(qualifier))
        expression = self._parse_expr()
        alias: str | None = None
        if self.accept_keyword("as"):
            alias = self.expect_identifier()
        elif self.current.type is TokenType.IDENTIFIER:
            alias = self.expect_identifier()
        return SelectItem(expression, alias)

    def _peek(self, ahead: int) -> Token:
        index = min(self._position + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _parse_table_ref(self) -> TableRef:
        name = self.expect_identifier()
        alias: str | None = None
        if self.accept_keyword("as"):
            alias = self.expect_identifier()
        elif self.current.type is TokenType.IDENTIFIER:
            alias = self.expect_identifier()
        return TableRef(name, alias)

    def _parse_join(self) -> JoinClause:
        if self.accept_keyword("inner"):
            self.expect_keyword("join")
        elif self.accept_keyword("left"):
            self.accept_keyword("outer")
            raise SqlSyntaxError("LEFT JOIN is not supported by this engine")
        else:
            self.expect_keyword("join")
        table = self._parse_table_ref()
        self.expect_keyword("on")
        condition = self._parse_expr()
        return JoinClause(table, condition)

    def _parse_order_term(self) -> OrderTerm:
        expression = self._parse_expr()
        descending = False
        if self.accept_keyword("desc"):
            descending = True
        else:
            self.accept_keyword("asc")
        return OrderTerm(expression, descending)

    def _expect_int(self) -> int:
        token = self.current
        if token.type is not TokenType.NUMBER or "." in token.value:
            raise SqlSyntaxError(
                f"expected integer, found {token.value!r}", token.position
            )
        self.advance()
        return int(token.value)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    def _parse_expr(self) -> ExprNode:
        return self._parse_or()

    def _parse_or(self) -> ExprNode:
        left = self._parse_and()
        if not self.current.is_keyword("or"):
            return left
        operands = [left]
        while self.accept_keyword("or"):
            operands.append(self._parse_and())
        return OrNode(tuple(operands))

    def _parse_and(self) -> ExprNode:
        left = self._parse_not()
        if not self.current.is_keyword("and"):
            return left
        operands = [left]
        while self.accept_keyword("and"):
            operands.append(self._parse_not())
        return AndNode(tuple(operands))

    def _parse_not(self) -> ExprNode:
        if self.accept_keyword("not"):
            return NotNode(self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> ExprNode:
        if self.current.is_keyword("exists"):
            self.advance()
            self.expect_punct("(")
            subquery = self.parse_select()
            self.expect_punct(")")
            return ExistsNode(subquery)
        left = self._parse_additive()
        token = self.current
        if token.type is TokenType.OPERATOR:
            self.advance()
            right = self._parse_additive()
            return BinaryNode(token.value, left, right)
        negate = False
        if self.current.is_keyword("not"):
            # LIKE / IN / BETWEEN may be negated inline: ``x NOT LIKE 'a%'``.
            if self._peek(1).is_keyword("like", "in", "between"):
                self.advance()
                negate = True
        if self.accept_keyword("like"):
            pattern_token = self.current
            if pattern_token.type is not TokenType.STRING:
                raise SqlSyntaxError(
                    "LIKE requires a string literal pattern", pattern_token.position
                )
            self.advance()
            return LikeNode(left, pattern_token.value, negate)
        if self.accept_keyword("in"):
            return self._parse_in(left, negate)
        if self.accept_keyword("between"):
            low = self._parse_additive()
            self.expect_keyword("and")
            high = self._parse_additive()
            return BetweenNode(left, low, high, negate)
        if self.accept_keyword("is"):
            is_negated = self.accept_keyword("not")
            self.expect_keyword("null")
            return IsNullNode(left, is_negated)
        return left

    def _parse_in(self, operand: ExprNode, negate: bool) -> ExprNode:
        self.expect_punct("(")
        if self.current.is_keyword("select"):
            subquery = self.parse_select()
            self.expect_punct(")")
            return InSubqueryNode(operand, subquery, negate)
        values: list[Any] = [self._expect_literal_value()]
        while self.accept_punct(","):
            values.append(self._expect_literal_value())
        self.expect_punct(")")
        return InListNode(operand, tuple(values), negate)

    def _expect_literal_value(self) -> Any:
        token = self.current
        if token.type is TokenType.STRING:
            self.advance()
            return token.value
        if token.type is TokenType.NUMBER:
            self.advance()
            return float(token.value) if "." in token.value else int(token.value)
        if token.is_keyword("null"):
            self.advance()
            return None
        if token.is_keyword("true"):
            self.advance()
            return True
        if token.is_keyword("false"):
            self.advance()
            return False
        raise SqlSyntaxError(f"expected literal, found {token.value!r}", token.position)

    def _parse_additive(self) -> ExprNode:
        left = self._parse_multiplicative()
        while self.current.type is TokenType.PUNCT and self.current.value in "+-":
            op = self.advance().value
            right = self._parse_multiplicative()
            left = BinaryNode(op, left, right)
        return left

    def _parse_multiplicative(self) -> ExprNode:
        left = self._parse_unary()
        while self.current.type is TokenType.PUNCT and self.current.value in "*/":
            op = self.advance().value
            right = self._parse_unary()
            left = BinaryNode(op, left, right)
        return left

    def _parse_unary(self) -> ExprNode:
        if self.current.type is TokenType.PUNCT and self.current.value == "-":
            self.advance()
            operand = self._parse_unary()
            return BinaryNode("-", LiteralNode(0), operand)
        return self._parse_primary()

    def _parse_primary(self) -> ExprNode:
        token = self.current
        if token.type is TokenType.STRING:
            self.advance()
            return LiteralNode(token.value)
        if token.type is TokenType.NUMBER:
            self.advance()
            value = float(token.value) if "." in token.value else int(token.value)
            return LiteralNode(value)
        if token.is_keyword("null"):
            self.advance()
            return LiteralNode(None)
        if token.is_keyword("true"):
            self.advance()
            return LiteralNode(True)
        if token.is_keyword("false"):
            self.advance()
            return LiteralNode(False)
        if token.is_keyword(*_AGGREGATE_KEYWORDS):
            return self._parse_function(token.value)
        if token.type is TokenType.PUNCT and token.value == "(":
            self.advance()
            inner = self._parse_expr()
            self.expect_punct(")")
            return inner
        if token.type is TokenType.IDENTIFIER:
            return self._parse_identifier_expr()
        raise SqlSyntaxError(f"unexpected token {token.value!r}", token.position)

    def _parse_function(self, name: str) -> ExprNode:
        self.advance()
        self.expect_punct("(")
        if self.accept_punct("*"):
            self.expect_punct(")")
            return FuncNode(name, star=True)
        distinct = self.accept_keyword("distinct")
        args = [self._parse_expr()]
        while self.accept_punct(","):
            args.append(self._parse_expr())
        self.expect_punct(")")
        return FuncNode(name, tuple(args), distinct=distinct)

    def _parse_identifier_expr(self) -> ExprNode:
        name = self.expect_identifier()
        if self.current.type is TokenType.PUNCT and self.current.value == "(":
            # Scalar function call, e.g. LOWER(x).
            self.advance()
            args: list[ExprNode] = []
            if not self.accept_punct(")"):
                args.append(self._parse_expr())
                while self.accept_punct(","):
                    args.append(self._parse_expr())
                self.expect_punct(")")
            return FuncNode(name.lower(), tuple(args))
        if self.accept_punct("."):
            column_name = self.expect_identifier()
            return ColumnNode(column_name, name)
        return ColumnNode(name)
