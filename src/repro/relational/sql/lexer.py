"""Tokenizer for the engine's SQL dialect.

The dialect covers what the ETable translation layer emits (Section 8 of the
paper) plus what the study's simulated SQL users type: SELECT queries with
joins, WHERE, GROUP BY, HAVING, ORDER BY, LIMIT, aggregate calls, LIKE,
IN, EXISTS, and literals. Keywords are case-insensitive; identifiers keep
their case.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SqlSyntaxError

KEYWORDS = {
    "select", "distinct", "from", "where", "group", "by", "having", "order",
    "limit", "offset", "as", "and", "or", "not", "in", "like", "is", "null",
    "exists", "join", "inner", "left", "outer", "on", "asc", "desc",
    "true", "false", "between", "count", "sum", "avg", "min", "max",
    "ent_list", "union", "all",
}


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in names

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.type.value}:{self.value}"


_OPERATORS = ("<=", ">=", "!=", "<>", "=", "<", ">")
_PUNCT = "(),.*"


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``; raises :class:`SqlSyntaxError` on bad characters."""
    tokens: list[Token] = []
    position = 0
    length = len(text)
    while position < length:
        char = text[position]
        if char.isspace():
            position += 1
            continue
        if char == "-" and text.startswith("--", position):
            newline = text.find("\n", position)
            position = length if newline == -1 else newline + 1
            continue
        if char == "'":
            token, position = _read_string(text, position)
            tokens.append(token)
            continue
        if char.isdigit() or (
            char == "." and position + 1 < length and text[position + 1].isdigit()
        ):
            token, position = _read_number(text, position)
            tokens.append(token)
            continue
        if char.isalpha() or char == "_":
            token, position = _read_word(text, position)
            tokens.append(token)
            continue
        matched_operator = next(
            (op for op in _OPERATORS if text.startswith(op, position)), None
        )
        if matched_operator is not None:
            value = "!=" if matched_operator == "<>" else matched_operator
            tokens.append(Token(TokenType.OPERATOR, value, position))
            position += len(matched_operator)
            continue
        if char in _PUNCT or char in "+-/":
            tokens.append(Token(TokenType.PUNCT, char, position))
            position += 1
            continue
        raise SqlSyntaxError(f"unexpected character {char!r}", position)
    tokens.append(Token(TokenType.EOF, "", length))
    return tokens


def _read_string(text: str, start: int) -> tuple[Token, int]:
    position = start + 1
    parts: list[str] = []
    while position < len(text):
        char = text[position]
        if char == "'":
            if text.startswith("''", position):
                parts.append("'")
                position += 2
                continue
            return Token(TokenType.STRING, "".join(parts), start), position + 1
        parts.append(char)
        position += 1
    raise SqlSyntaxError("unterminated string literal", start)


def _read_number(text: str, start: int) -> tuple[Token, int]:
    position = start
    saw_dot = False
    while position < len(text):
        char = text[position]
        if char.isdigit():
            position += 1
        elif char == "." and not saw_dot:
            saw_dot = True
            position += 1
        else:
            break
    return Token(TokenType.NUMBER, text[start:position], start), position


def _read_word(text: str, start: int) -> tuple[Token, int]:
    position = start
    while position < len(text) and (text[position].isalnum() or text[position] == "_"):
        position += 1
    word = text[start:position]
    lowered = word.lower()
    if lowered in KEYWORDS:
        return Token(TokenType.KEYWORD, lowered, start), position
    return Token(TokenType.IDENTIFIER, word, start), position
