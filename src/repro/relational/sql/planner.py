"""Query-planning analysis helpers.

Pure functions over the SQL AST used by the executor to decide predicate
pushdown and join order: conjunct splitting, reference collection, and
equi-join detection. The actual lowering to runtime expressions lives in
:mod:`repro.relational.sql.executor` (it needs the database handle for
subqueries).
"""

from __future__ import annotations

from repro.relational.sql.ast_nodes import (
    AndNode,
    BetweenNode,
    BinaryNode,
    ColumnNode,
    ExistsNode,
    ExprNode,
    FuncNode,
    InListNode,
    InSubqueryNode,
    IsNullNode,
    LikeNode,
    LiteralNode,
    NotNode,
    OrNode,
    StarNode,
)

_COMPARISON_OPS = {"=", "!=", "<", "<=", ">", ">="}


def split_conjuncts(node: ExprNode | None) -> list[ExprNode]:
    """Flatten a WHERE tree into top-level AND conjuncts."""
    if node is None:
        return []
    if isinstance(node, AndNode):
        out: list[ExprNode] = []
        for operand in node.operands:
            out.extend(split_conjuncts(operand))
        return out
    return [node]


def contains_subquery(node: ExprNode) -> bool:
    """True when the expression embeds an EXISTS or IN-subquery."""
    if isinstance(node, (ExistsNode, InSubqueryNode)):
        return True
    return any(contains_subquery(child) for child in _children(node))


def contains_aggregate(node: ExprNode) -> bool:
    """True when the expression calls an aggregate function."""
    if isinstance(node, FuncNode) and _is_aggregate(node):
        return True
    return any(contains_aggregate(child) for child in _children(node))


def _is_aggregate(node: FuncNode) -> bool:
    return node.name.lower() in ("count", "sum", "avg", "min", "max", "ent_list")


def ast_references(node: ExprNode) -> set[tuple[str | None, str]]:
    """Column references of an expression; subqueries count as opaque.

    A conjunct containing a subquery is never pushed down or used for join
    ordering, so its outer references do not need to be tracked here.
    """
    if isinstance(node, ColumnNode):
        return {(node.qualifier, node.name)}
    if isinstance(node, (ExistsNode, InSubqueryNode)):
        return set()
    refs: set[tuple[str | None, str]] = set()
    for child in _children(node):
        refs |= ast_references(child)
    return refs


def _children(node: ExprNode) -> list[ExprNode]:
    if isinstance(node, BinaryNode):
        return [node.left, node.right]
    if isinstance(node, (AndNode, OrNode)):
        return list(node.operands)
    if isinstance(node, NotNode):
        return [node.operand]
    if isinstance(node, LikeNode):
        return [node.operand]
    if isinstance(node, InListNode):
        return [node.operand]
    if isinstance(node, InSubqueryNode):
        return [node.operand]
    if isinstance(node, IsNullNode):
        return [node.operand]
    if isinstance(node, BetweenNode):
        return [node.operand, node.low, node.high]
    if isinstance(node, FuncNode):
        return list(node.args)
    if isinstance(node, (LiteralNode, ColumnNode, StarNode, ExistsNode)):
        return []
    return []


class ScopeMap:
    """Maps column references to the table qualifiers that can satisfy them."""

    def __init__(self, qualifier_columns: dict[str, set[str]]) -> None:
        # qualifier -> lowercase column names
        self._columns = {
            qualifier: {name.lower() for name in names}
            for qualifier, names in qualifier_columns.items()
        }
        self._lower_to_actual = {q.lower(): q for q in qualifier_columns}

    def owners(self, qualifier: str | None, name: str) -> list[str]:
        """Which table qualifiers could supply this reference."""
        lowered = name.lower()
        if qualifier is not None:
            actual = self._lower_to_actual.get(qualifier.lower())
            if actual is not None and lowered in self._columns[actual]:
                return [actual]
            return []
        return [
            actual
            for actual, names in self._columns.items()
            if lowered in names
        ]

    def tables_for(self, node: ExprNode) -> set[str] | None:
        """The set of qualifiers an expression's references resolve to.

        Returns ``None`` when any reference is unresolvable or ambiguous in
        this scope (e.g. a correlated outer reference) — such conjuncts must
        not be pushed down or used to drive joins.
        """
        tables: set[str] = set()
        for qualifier, name in ast_references(node):
            owners = self.owners(qualifier, name)
            if len(owners) != 1:
                return None
            tables.add(owners[0])
        return tables


def find_equi_pair(
    node: ExprNode, scope: ScopeMap
) -> tuple[tuple[str, str], tuple[str, str]] | None:
    """Detect ``a.x = b.y`` conjuncts joining two distinct tables.

    Returns ``((qualifier_a, column_a), (qualifier_b, column_b))`` or None.
    """
    if not isinstance(node, BinaryNode) or node.op != "=":
        return None
    left, right = node.left, node.right
    if not isinstance(left, ColumnNode) or not isinstance(right, ColumnNode):
        return None
    left_owner = scope.owners(left.qualifier, left.name)
    right_owner = scope.owners(right.qualifier, right.name)
    if len(left_owner) != 1 or len(right_owner) != 1:
        return None
    if left_owner[0] == right_owner[0]:
        return None
    return (left_owner[0], left.name), (right_owner[0], right.name)
