"""Abstract syntax tree for the SQL dialect.

Parser output. These nodes are deliberately separate from the runtime
expression trees in :mod:`repro.relational.expressions` because SQL syntax
admits constructs (aggregate calls, ``EXISTS`` subqueries, ``*`` items) that
only make sense in specific clause positions; the planner performs that
lowering and rejects misuse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


class ExprNode:
    """Base class for expression AST nodes."""


@dataclass(frozen=True)
class LiteralNode(ExprNode):
    value: Any


@dataclass(frozen=True)
class ColumnNode(ExprNode):
    name: str
    qualifier: str | None = None

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class StarNode(ExprNode):
    """``*`` or ``alias.*`` — legal only as a select item or in COUNT(*)."""

    qualifier: str | None = None


@dataclass(frozen=True)
class BinaryNode(ExprNode):
    """Comparisons (=, !=, <, <=, >, >=) and arithmetic (+, -, *, /)."""

    op: str
    left: ExprNode
    right: ExprNode


@dataclass(frozen=True)
class AndNode(ExprNode):
    operands: tuple[ExprNode, ...]


@dataclass(frozen=True)
class OrNode(ExprNode):
    operands: tuple[ExprNode, ...]


@dataclass(frozen=True)
class NotNode(ExprNode):
    operand: ExprNode


@dataclass(frozen=True)
class LikeNode(ExprNode):
    operand: ExprNode
    pattern: str
    negate: bool = False


@dataclass(frozen=True)
class InListNode(ExprNode):
    operand: ExprNode
    values: tuple[Any, ...]
    negate: bool = False


@dataclass(frozen=True)
class InSubqueryNode(ExprNode):
    operand: ExprNode
    subquery: "SelectStatement"
    negate: bool = False


@dataclass(frozen=True)
class ExistsNode(ExprNode):
    subquery: "SelectStatement"
    negate: bool = False


@dataclass(frozen=True)
class IsNullNode(ExprNode):
    operand: ExprNode
    negate: bool = False


@dataclass(frozen=True)
class BetweenNode(ExprNode):
    operand: ExprNode
    low: ExprNode
    high: ExprNode
    negate: bool = False


@dataclass(frozen=True)
class FuncNode(ExprNode):
    """A function call: scalar (LOWER...) or aggregate (COUNT, ENT_LIST...).

    ``star`` marks ``COUNT(*)``; ``distinct`` marks ``COUNT(DISTINCT x)``.
    """

    name: str
    args: tuple[ExprNode, ...] = ()
    distinct: bool = False
    star: bool = False


@dataclass(frozen=True)
class SelectItem:
    expression: ExprNode
    alias: str | None = None


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: str | None = None

    @property
    def qualifier(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class JoinClause:
    """An explicit ``JOIN table [alias] ON condition`` clause."""

    table: TableRef
    condition: ExprNode | None


@dataclass(frozen=True)
class OrderTerm:
    expression: ExprNode
    descending: bool = False


@dataclass
class SelectStatement:
    items: list[SelectItem]
    from_tables: list[TableRef]
    joins: list[JoinClause] = field(default_factory=list)
    where: ExprNode | None = None
    group_by: list[ExprNode] = field(default_factory=list)
    having: ExprNode | None = None
    order_by: list[OrderTerm] = field(default_factory=list)
    limit: int | None = None
    offset: int | None = None
    distinct: bool = False


@dataclass
class UnionStatement:
    """``SELECT ... UNION [ALL] SELECT ...`` — an extension beyond the paper's
    core scope (Section 8 lists set operations as future work)."""

    selects: list[SelectStatement]
    all: bool = False


Statement = SelectStatement | UnionStatement
