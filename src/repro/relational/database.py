"""The database catalog: a set of named tables plus cross-table integrity.

This is the substitute for the paper's PostgreSQL backend (Section 6.2).
It owns table creation, foreign-key enforcement on insert, and convenience
bulk-loading. SQL entry points live in :mod:`repro.relational.sql`.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro.errors import ForeignKeyViolation, SchemaError, UnknownTable
from repro.relational.schema import TableSchema
from repro.relational.table import Table


class Database:
    """A named collection of :class:`Table` objects with FK enforcement."""

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self.tables: dict[str, Table] = {}

    # ------------------------------------------------------------------
    # Catalog management
    # ------------------------------------------------------------------
    def create_table(self, schema: TableSchema) -> Table:
        """Register a new table; FK targets must already exist."""
        if schema.name in self.tables:
            raise SchemaError(f"table {schema.name!r} already exists")
        for fk in schema.foreign_keys:
            # Self-references are allowed before the table exists.
            if fk.ref_table == schema.name:
                ref_schema = schema
            else:
                ref_schema = self.table(fk.ref_table).schema
            for ref_col in fk.ref_columns:
                if not ref_schema.has_column(ref_col):
                    raise SchemaError(
                        f"foreign key of {schema.name!r} references missing column "
                        f"{fk.ref_table}.{ref_col}"
                    )
        table = Table(schema)
        self.tables[schema.name] = table
        return table

    def drop_table(self, name: str) -> None:
        if name not in self.tables:
            raise UnknownTable(f"no table named {name!r}")
        del self.tables[name]

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise UnknownTable(f"no table named {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self.tables

    @property
    def table_names(self) -> list[str]:
        return list(self.tables)

    # ------------------------------------------------------------------
    # Data loading with integrity checks
    # ------------------------------------------------------------------
    def insert(
        self, table_name: str, row: Sequence[Any] | Mapping[str, Any]
    ) -> tuple[Any, ...]:
        """Insert one row after verifying all foreign keys resolve."""
        table = self.table(table_name)
        values = table._normalize(row)
        self._check_foreign_keys(table, values)
        return table.insert(values)

    def insert_many(
        self, table_name: str, rows: Iterable[Sequence[Any] | Mapping[str, Any]]
    ) -> int:
        count = 0
        for row in rows:
            self.insert(table_name, row)
            count += 1
        return count

    def load_unchecked(
        self, table_name: str, rows: Iterable[Sequence[Any] | Mapping[str, Any]]
    ) -> int:
        """Bulk-load rows skipping FK checks (used by trusted generators)."""
        return self.table(table_name).insert_many(rows)

    def validate_integrity(self) -> list[str]:
        """Scan every table and return a list of FK violations (as strings).

        An empty list means the database is consistent. Generators use this
        after :meth:`load_unchecked`; tests assert it returns ``[]``.
        """
        problems: list[str] = []
        for table in self.tables.values():
            for row in table.rows:
                for fk in table.schema.foreign_keys:
                    if not self._fk_resolves(table, fk, row):
                        key = tuple(
                            row[table.schema.column_index(col)] for col in fk.columns
                        )
                        problems.append(
                            f"{table.name}{fk.columns!r}={key!r} has no match in "
                            f"{fk.ref_table}"
                        )
        return problems

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_foreign_keys(self, table: Table, values: tuple[Any, ...]) -> None:
        for fk in table.schema.foreign_keys:
            if not self._fk_resolves(table, fk, values):
                key = tuple(
                    values[table.schema.column_index(col)] for col in fk.columns
                )
                raise ForeignKeyViolation(
                    f"{table.name}.{fk.columns} = {key!r} does not reference an "
                    f"existing row of {fk.ref_table}"
                )

    def _fk_resolves(self, table: Table, fk, row: tuple[Any, ...]) -> bool:
        key = tuple(row[table.schema.column_index(col)] for col in fk.columns)
        if any(part is None for part in key):
            return True  # SQL semantics: NULL FK components always pass
        ref_table = self.table(fk.ref_table)
        if fk.ref_columns == ref_table.schema.primary_key:
            return ref_table.has_pk(*key)
        # Rare path: FK onto a non-PK column set.
        matches = ref_table.lookup(fk.ref_columns[0], key[0])
        if len(fk.ref_columns) == 1:
            return bool(matches)
        positions = [ref_table.schema.column_index(c) for c in fk.ref_columns]
        return any(
            tuple(candidate[pos] for pos in positions) == key for candidate in matches
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        summary = ", ".join(
            f"{name}({len(table)})" for name, table in self.tables.items()
        )
        return f"Database({self.name!r}: {summary})"
