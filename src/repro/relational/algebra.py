"""Relational algebra over materialized relations.

A :class:`Relation` is an ordered list of rows plus a header of
``(qualifier, name)`` column identities. The operators here (selection,
projection, joins, grouping, ordering, distinct) are the execution primitives
the SQL planner lowers to, and they are also used directly by the TGDB
storage layer and by tests.

Joins use a hash strategy whenever an equality pair between the two sides is
available, falling back to nested loops for general theta-joins — mirroring
how the paper's PostgreSQL backend would execute FK joins with indexes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.errors import RelationalError, UnknownColumn
from repro.relational.expressions import Expression, Scope
from repro.relational.table import Table

ColumnId = tuple[str | None, str]


@dataclass
class Relation:
    """A materialized intermediate result."""

    columns: list[ColumnId]
    rows: list[tuple[Any, ...]] = field(default_factory=list)

    def __post_init__(self) -> None:
        for row in self.rows:
            if len(row) != len(self.columns):
                raise RelationalError(
                    f"row arity {len(row)} != header arity {len(self.columns)}"
                )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rows)

    @property
    def column_names(self) -> list[str]:
        return [name for _, name in self.columns]

    def column_position(self, name: str, qualifier: str | None = None) -> int:
        """Position of a column; unqualified lookups must be unambiguous."""
        matches = [
            index
            for index, (col_qual, col_name) in enumerate(self.columns)
            if col_name.lower() == name.lower()
            and (qualifier is None or (col_qual or "").lower() == qualifier.lower())
        ]
        if not matches:
            label = f"{qualifier}.{name}" if qualifier else name
            raise UnknownColumn(f"no column {label!r} in relation")
        if len(matches) > 1 and qualifier is None:
            raise RelationalError(f"column name {name!r} is ambiguous")
        return matches[0]

    def column_values(self, name: str, qualifier: str | None = None) -> list[Any]:
        position = self.column_position(name, qualifier)
        return [row[position] for row in self.rows]

    def scope(self, row: tuple[Any, ...]) -> Scope:
        return Scope(self.columns, row)

    def as_dicts(self) -> list[dict[str, Any]]:
        """Rows as name->value dicts; qualified names win on collision."""
        out: list[dict[str, Any]] = []
        for row in self.rows:
            item: dict[str, Any] = {}
            for (qualifier, name), value in zip(self.columns, row):
                item[name] = value
                if qualifier:
                    item[f"{qualifier}.{name}"] = value
            out.append(item)
        return out


def from_table(table: Table, alias: str | None = None) -> Relation:
    """Lift a stored table into a relation, optionally renaming its qualifier."""
    qualifier = alias or table.name
    columns: list[ColumnId] = [(qualifier, name) for name in table.schema.column_names]
    return Relation(columns, list(table.rows))


def select(relation: Relation, predicate: Expression) -> Relation:
    """Keep rows where ``predicate`` evaluates to exactly True (3VL)."""
    kept = [
        row
        for row in relation.rows
        if predicate.evaluate(Scope(relation.columns, row)) is True
    ]
    return Relation(list(relation.columns), kept)


def project(
    relation: Relation,
    items: Sequence[tuple[Expression, ColumnId]],
) -> Relation:
    """Compute each expression per row; ``items`` supply output identities."""
    columns = [identity for _, identity in items]
    expressions = [expression for expression, _ in items]
    rows = [
        tuple(expr.evaluate(Scope(relation.columns, row)) for expr in expressions)
        for row in relation.rows
    ]
    return Relation(columns, rows)


def project_columns(
    relation: Relation, names: Sequence[tuple[str | None, str]]
) -> Relation:
    """Positional projection by column identity (no expression evaluation)."""
    positions = [relation.column_position(name, qualifier) for qualifier, name in names]
    columns = [relation.columns[position] for position in positions]
    rows = [tuple(row[position] for position in positions) for row in relation.rows]
    return Relation(columns, rows)


def rename(relation: Relation, qualifier: str) -> Relation:
    """Re-qualify every column (SQL table alias semantics)."""
    columns: list[ColumnId] = [(qualifier, name) for _, name in relation.columns]
    return Relation(columns, list(relation.rows))


def cross_join(left: Relation, right: Relation) -> Relation:
    columns = list(left.columns) + list(right.columns)
    rows = [l_row + r_row for l_row in left.rows for r_row in right.rows]
    return Relation(columns, rows)


def equi_join(
    left: Relation,
    right: Relation,
    pairs: Sequence[tuple[ColumnId, ColumnId]],
    residual: Expression | None = None,
) -> Relation:
    """Hash join on equality ``pairs`` of (left column, right column).

    NULL join keys never match (SQL semantics). ``residual`` is an optional
    extra predicate applied to each joined row.
    """
    if not pairs:
        joined = cross_join(left, right)
        return select(joined, residual) if residual is not None else joined

    left_positions = [
        left.column_position(name, qualifier) for (qualifier, name), _ in pairs
    ]
    right_positions = [
        right.column_position(name, qualifier) for _, (qualifier, name) in pairs
    ]

    # Build hash table on the smaller side.
    build_left = len(left.rows) <= len(right.rows)
    if build_left:
        build, probe = left, right
        build_positions, probe_positions = left_positions, right_positions
    else:
        build, probe = right, left
        build_positions, probe_positions = right_positions, left_positions

    buckets: dict[tuple[Any, ...], list[tuple[Any, ...]]] = {}
    for row in build.rows:
        key = tuple(row[position] for position in build_positions)
        if any(part is None for part in key):
            continue
        buckets.setdefault(key, []).append(row)

    columns = list(left.columns) + list(right.columns)
    rows: list[tuple[Any, ...]] = []
    for probe_row in probe.rows:
        key = tuple(probe_row[position] for position in probe_positions)
        if any(part is None for part in key):
            continue
        for build_row in buckets.get(key, ()):
            combined = (
                build_row + probe_row if build_left else probe_row + build_row
            )
            rows.append(combined)
    result = Relation(columns, rows)
    return select(result, residual) if residual is not None else result


def theta_join(left: Relation, right: Relation, predicate: Expression) -> Relation:
    """Nested-loop join for arbitrary predicates."""
    columns = list(left.columns) + list(right.columns)
    rows: list[tuple[Any, ...]] = []
    for l_row in left.rows:
        for r_row in right.rows:
            combined = l_row + r_row
            if predicate.evaluate(Scope(columns, combined)) is True:
                rows.append(combined)
    return Relation(columns, rows)


def distinct(relation: Relation) -> Relation:
    """Remove duplicate rows, preserving first-appearance order."""
    seen: set[tuple[Any, ...]] = set()
    rows: list[tuple[Any, ...]] = []
    for row in relation.rows:
        if row in seen:
            continue
        seen.add(row)
        rows.append(row)
    return Relation(list(relation.columns), rows)


@dataclass(frozen=True)
class SortKey:
    """One ORDER BY term. NULLs sort last ascending, first descending."""

    expression: Expression
    descending: bool = False


def order_by(relation: Relation, keys: Sequence[SortKey]) -> Relation:
    """Stable multi-key sort (applied right-to-left for stability)."""
    rows = list(relation.rows)
    for key in reversed(keys):
        evaluated = [
            key.expression.evaluate(Scope(relation.columns, row)) for row in rows
        ]
        decorated = list(zip(evaluated, range(len(rows)), rows))
        decorated.sort(
            key=lambda item: _null_aware_key(item[0]), reverse=key.descending
        )
        rows = [row for _, _, row in decorated]
    return Relation(list(relation.columns), rows)


def _null_aware_key(value: Any) -> tuple[int, Any]:
    if value is None:
        return (1, 0)
    if isinstance(value, bool):
        return (0, int(value))
    if isinstance(value, (int, float)):
        return (0, value)
    return (0, str(value))


def limit(relation: Relation, count: int, offset: int = 0) -> Relation:
    if count < 0 or offset < 0:
        raise RelationalError("LIMIT/OFFSET must be non-negative")
    return Relation(list(relation.columns), relation.rows[offset : offset + count])


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate output: ``function`` applied to ``argument`` per group.

    ``argument`` is None for COUNT(*). ``identity`` names the output column.
    """

    function: Callable[[Iterable[Any]], Any]
    argument: Expression | None
    identity: ColumnId


def group_by(
    relation: Relation,
    keys: Sequence[Expression],
    key_identities: Sequence[ColumnId],
    aggregates: Sequence[AggregateSpec],
) -> Relation:
    """Group rows by ``keys`` and evaluate ``aggregates`` per group.

    With no keys, the whole relation forms one group (scalar aggregation),
    which yields a single row even for empty input — matching SQL.
    """
    if len(keys) != len(key_identities):
        raise RelationalError("group_by: keys and identities must align")

    groups: dict[tuple[Any, ...], list[tuple[Any, ...]]] = {}
    order: list[tuple[Any, ...]] = []
    for row in relation.rows:
        scope = Scope(relation.columns, row)
        key = tuple(expr.evaluate(scope) for expr in keys)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)

    if not keys and not order:
        order.append(())
        groups[()] = []

    columns = list(key_identities) + [spec.identity for spec in aggregates]
    rows: list[tuple[Any, ...]] = []
    for key in order:
        member_rows = groups[key]
        values = list(key)
        for spec in aggregates:
            if spec.argument is None:
                inputs: list[Any] = [None] * len(member_rows)
            else:
                inputs = [
                    spec.argument.evaluate(Scope(relation.columns, row))
                    for row in member_rows
                ]
            values.append(spec.function(inputs))
        rows.append(tuple(values))
    return Relation(columns, rows)
