"""Column data types for the relational engine.

The engine supports a deliberately small set of scalar types — the same set
needed by the paper's academic database (Figure 3) and by the four-table TGDB
storage layout (Section 6.2): integers, floats, text, and booleans. ``NULL``
is represented by Python ``None`` and is a member of every type's domain
unless the column is declared ``NOT NULL``.
"""

from __future__ import annotations

import enum
from typing import Any

from repro.errors import TypeMismatch


class DataType(enum.Enum):
    """Scalar column types understood by the engine."""

    INTEGER = "INTEGER"
    REAL = "REAL"
    TEXT = "TEXT"
    BOOLEAN = "BOOLEAN"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_TRUE_STRINGS = {"true", "t", "1", "yes"}
_FALSE_STRINGS = {"false", "f", "0", "no"}


def coerce(value: Any, dtype: DataType) -> Any:
    """Coerce ``value`` into the Python representation of ``dtype``.

    ``None`` passes through unchanged (NULL belongs to every domain).
    Raises :class:`TypeMismatch` when the value cannot be represented
    without information loss (e.g. ``coerce("abc", INTEGER)``).
    """
    if value is None:
        return None
    if dtype is DataType.INTEGER:
        return _coerce_integer(value)
    if dtype is DataType.REAL:
        return _coerce_real(value)
    if dtype is DataType.TEXT:
        return _coerce_text(value)
    if dtype is DataType.BOOLEAN:
        return _coerce_boolean(value)
    raise TypeMismatch(f"unknown data type {dtype!r}")  # pragma: no cover


def _coerce_integer(value: Any) -> int:
    if isinstance(value, bool):
        raise TypeMismatch(f"cannot store boolean {value!r} in INTEGER column")
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if value.is_integer():
            return int(value)
        raise TypeMismatch(f"cannot store non-integral float {value!r} in INTEGER column")
    if isinstance(value, str):
        try:
            return int(value.strip())
        except ValueError:
            raise TypeMismatch(f"cannot parse {value!r} as INTEGER") from None
    raise TypeMismatch(f"cannot store {type(value).__name__} in INTEGER column")


def _coerce_real(value: Any) -> float:
    if isinstance(value, bool):
        raise TypeMismatch(f"cannot store boolean {value!r} in REAL column")
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value.strip())
        except ValueError:
            raise TypeMismatch(f"cannot parse {value!r} as REAL") from None
    raise TypeMismatch(f"cannot store {type(value).__name__} in REAL column")


def _coerce_text(value: Any) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return str(value)
    raise TypeMismatch(f"cannot store {type(value).__name__} in TEXT column")


def _coerce_boolean(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, int) and value in (0, 1):
        return bool(value)
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in _TRUE_STRINGS:
            return True
        if lowered in _FALSE_STRINGS:
            return False
        raise TypeMismatch(f"cannot parse {value!r} as BOOLEAN")
    raise TypeMismatch(f"cannot store {type(value).__name__} in BOOLEAN column")


def infer_type(value: Any) -> DataType:
    """Infer the narrowest :class:`DataType` able to hold ``value``.

    Used by CSV import and by ad-hoc relation construction in tests.
    ``None`` infers as TEXT (the widest practical default).
    """
    if isinstance(value, bool):
        return DataType.BOOLEAN
    if isinstance(value, int):
        return DataType.INTEGER
    if isinstance(value, float):
        return DataType.REAL
    return DataType.TEXT


def is_comparable(left: Any, right: Any) -> bool:
    """Return True when ``left < right`` is well defined for the engine.

    Numbers compare with numbers, strings with strings, booleans with
    booleans. NULL never compares (SQL three-valued logic is handled by
    the expression evaluator, not here).
    """
    if left is None or right is None:
        return False
    if isinstance(left, bool) or isinstance(right, bool):
        return isinstance(left, bool) and isinstance(right, bool)
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return True
    return isinstance(left, str) and isinstance(right, str)
