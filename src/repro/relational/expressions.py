"""Expression trees for predicates and scalar computations.

Expressions are shared by the relational-algebra layer and the SQL executor.
They evaluate against a :class:`Scope` that resolves column references, and
they follow SQL three-valued logic: comparisons with NULL yield ``None``
(unknown), ``AND``/``OR``/``NOT`` propagate unknowns, and a WHERE clause
keeps only rows whose predicate evaluates to exactly ``True``.
"""

from __future__ import annotations

import functools
import re
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.errors import AmbiguousColumn, RelationalError, UnknownColumn
from repro.relational.datatypes import is_comparable


class Scope:
    """Resolves column references to values for one logical row.

    ``columns`` is a sequence of ``(qualifier, name)`` pairs aligned with
    ``values``. Unqualified lookups succeed only when exactly one column in
    scope has the requested name.
    """

    __slots__ = ("columns", "values", "_qualified", "_unqualified", "parent")

    def __init__(
        self,
        columns: Sequence[tuple[str | None, str]],
        values: Sequence[Any],
        parent: "Scope | None" = None,
    ) -> None:
        self.columns = columns
        self.values = values
        self.parent = parent
        self._qualified: dict[tuple[str, str], int] = {}
        self._unqualified: dict[str, list[int]] = {}
        for position, (qualifier, name) in enumerate(columns):
            if qualifier is not None:
                self._qualified[(qualifier.lower(), name.lower())] = position
            self._unqualified.setdefault(name.lower(), []).append(position)

    def resolve(self, qualifier: str | None, name: str) -> Any:
        lowered = name.lower()
        if qualifier is not None:
            position = self._qualified.get((qualifier.lower(), lowered))
            if position is not None:
                return self.values[position]
            if self.parent is not None:
                return self.parent.resolve(qualifier, name)
            raise UnknownColumn(f"no column {qualifier}.{name} in scope")
        positions = self._unqualified.get(lowered, [])
        if len(positions) == 1:
            return self.values[positions[0]]
        if len(positions) > 1:
            raise AmbiguousColumn(f"column name {name!r} is ambiguous")
        if self.parent is not None:
            return self.parent.resolve(qualifier, name)
        raise UnknownColumn(f"no column {name!r} in scope")


@functools.lru_cache(maxsize=1024)
def _compile_like(pattern: str) -> re.Pattern[str]:
    """Compile a LIKE pattern once; predicates re-evaluate per row."""
    parts: list[str] = []
    for char in pattern:
        if char == "%":
            parts.append(".*")
        elif char == "_":
            parts.append(".")
        else:
            parts.append(re.escape(char))
    return re.compile("^" + "".join(parts) + "$", re.IGNORECASE | re.DOTALL)


class Expression:
    """Base class for all expression nodes."""

    def evaluate(self, scope: Scope) -> Any:
        raise NotImplementedError

    def references(self) -> set[tuple[str | None, str]]:
        """All column references appearing in this expression subtree."""
        return set()

    def __and__(self, other: "Expression") -> "Expression":
        return conjoin([self, other])


@dataclass(frozen=True)
class Literal(Expression):
    value: Any

    def evaluate(self, scope: Scope) -> Any:
        return self.value

    def __str__(self) -> str:
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        if self.value is None:
            return "NULL"
        return str(self.value)


@dataclass(frozen=True)
class ColumnRef(Expression):
    name: str
    qualifier: str | None = None

    def evaluate(self, scope: Scope) -> Any:
        return scope.resolve(self.qualifier, self.name)

    def references(self) -> set[tuple[str | None, str]]:
        return {(self.qualifier, self.name)}

    def __str__(self) -> str:
        if self.qualifier:
            return f"{self.qualifier}.{self.name}"
        return self.name


_COMPARISONS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Comparison(Expression):
    """Binary comparison with SQL NULL semantics (NULL compares to unknown)."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _COMPARISONS:
            raise RelationalError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, scope: Scope) -> bool | None:
        left = self.left.evaluate(scope)
        right = self.right.evaluate(scope)
        if left is None or right is None:
            return None
        if self.op in ("=", "!="):
            if type(left) is bool or type(right) is bool:
                if type(left) is not type(right):
                    return None
            return _COMPARISONS[self.op](left, right)
        if not is_comparable(left, right):
            return None
        return _COMPARISONS[self.op](left, right)

    def references(self) -> set[tuple[str | None, str]]:
        return self.left.references() | self.right.references()

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class And(Expression):
    operands: tuple[Expression, ...]

    def evaluate(self, scope: Scope) -> bool | None:
        saw_unknown = False
        for operand in self.operands:
            value = operand.evaluate(scope)
            if value is False:
                return False
            if value is None:
                saw_unknown = True
        return None if saw_unknown else True

    def references(self) -> set[tuple[str | None, str]]:
        refs: set[tuple[str | None, str]] = set()
        for operand in self.operands:
            refs |= operand.references()
        return refs

    def __str__(self) -> str:
        return " AND ".join(_parenthesize(op) for op in self.operands)


@dataclass(frozen=True)
class Or(Expression):
    operands: tuple[Expression, ...]

    def evaluate(self, scope: Scope) -> bool | None:
        saw_unknown = False
        for operand in self.operands:
            value = operand.evaluate(scope)
            if value is True:
                return True
            if value is None:
                saw_unknown = True
        return None if saw_unknown else False

    def references(self) -> set[tuple[str | None, str]]:
        refs: set[tuple[str | None, str]] = set()
        for operand in self.operands:
            refs |= operand.references()
        return refs

    def __str__(self) -> str:
        return " OR ".join(_parenthesize(op) for op in self.operands)


@dataclass(frozen=True)
class Not(Expression):
    operand: Expression

    def evaluate(self, scope: Scope) -> bool | None:
        value = self.operand.evaluate(scope)
        if value is None:
            return None
        return not value

    def references(self) -> set[tuple[str | None, str]]:
        return self.operand.references()

    def __str__(self) -> str:
        return f"NOT {_parenthesize(self.operand)}"


@dataclass(frozen=True)
class Like(Expression):
    """SQL LIKE with ``%`` (any run) and ``_`` (single char); case-insensitive.

    The paper's examples (``country like '%Korea%'``) rely on substring
    matching; we follow PostgreSQL's ILIKE behaviour because the ETable UI
    performs case-insensitive contains-filters.
    """

    operand: Expression
    pattern: str
    negate: bool = False

    def _regex(self) -> re.Pattern[str]:
        return _compile_like(self.pattern)

    def evaluate(self, scope: Scope) -> bool | None:
        value = self.operand.evaluate(scope)
        if value is None:
            return None
        matched = bool(self._regex().match(str(value)))
        return not matched if self.negate else matched

    def references(self) -> set[tuple[str | None, str]]:
        return self.operand.references()

    def __str__(self) -> str:
        keyword = "NOT LIKE" if self.negate else "LIKE"
        escaped = self.pattern.replace("'", "''")
        return f"{self.operand} {keyword} '{escaped}'"


@dataclass(frozen=True)
class InList(Expression):
    operand: Expression
    values: tuple[Any, ...]
    negate: bool = False

    def evaluate(self, scope: Scope) -> bool | None:
        value = self.operand.evaluate(scope)
        if value is None:
            return None
        found = value in self.values
        return not found if self.negate else found

    def references(self) -> set[tuple[str | None, str]]:
        return self.operand.references()

    def __str__(self) -> str:
        keyword = "NOT IN" if self.negate else "IN"
        rendered = ", ".join(str(Literal(v)) for v in self.values)
        return f"{self.operand} {keyword} ({rendered})"


@dataclass(frozen=True)
class IsNull(Expression):
    operand: Expression
    negate: bool = False

    def evaluate(self, scope: Scope) -> bool:
        value = self.operand.evaluate(scope)
        return (value is not None) if self.negate else (value is None)

    def references(self) -> set[tuple[str | None, str]]:
        return self.operand.references()

    def __str__(self) -> str:
        keyword = "IS NOT NULL" if self.negate else "IS NULL"
        return f"{self.operand} {keyword}"


_ARITHMETIC: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


@dataclass(frozen=True)
class Arithmetic(Expression):
    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _ARITHMETIC:
            raise RelationalError(f"unknown arithmetic operator {self.op!r}")

    def evaluate(self, scope: Scope) -> Any:
        left = self.left.evaluate(scope)
        right = self.right.evaluate(scope)
        if left is None or right is None:
            return None
        if self.op == "/" and right == 0:
            raise RelationalError("division by zero")
        return _ARITHMETIC[self.op](left, right)

    def references(self) -> set[tuple[str | None, str]]:
        return self.left.references() | self.right.references()

    def __str__(self) -> str:
        return f"{_parenthesize(self.left)} {self.op} {_parenthesize(self.right)}"


_SCALAR_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "lower": lambda s: s.lower() if isinstance(s, str) else s,
    "upper": lambda s: s.upper() if isinstance(s, str) else s,
    "length": lambda s: len(s) if s is not None else None,
    "abs": lambda x: abs(x) if x is not None else None,
    "coalesce": lambda *args: next((a for a in args if a is not None), None),
}


@dataclass(frozen=True)
class FunctionCall(Expression):
    name: str
    args: tuple[Expression, ...]

    def __post_init__(self) -> None:
        if self.name.lower() not in _SCALAR_FUNCTIONS:
            raise RelationalError(f"unknown function {self.name!r}")

    def evaluate(self, scope: Scope) -> Any:
        values = [arg.evaluate(scope) for arg in self.args]
        func = _SCALAR_FUNCTIONS[self.name.lower()]
        if self.name.lower() != "coalesce" and any(v is None for v in values):
            return None
        return func(*values)

    def references(self) -> set[tuple[str | None, str]]:
        refs: set[tuple[str | None, str]] = set()
        for arg in self.args:
            refs |= arg.references()
        return refs

    def __str__(self) -> str:
        rendered = ", ".join(str(arg) for arg in self.args)
        return f"{self.name.upper()}({rendered})"


def _parenthesize(expr: Expression) -> str:
    if isinstance(expr, (And, Or, Arithmetic)):
        return f"({expr})"
    return str(expr)


def conjoin(predicates: Iterable[Expression]) -> Expression:
    """AND together predicates, flattening nested :class:`And` nodes.

    Returns ``Literal(True)`` for an empty input so callers can always
    filter unconditionally.
    """
    flat: list[Expression] = []
    for predicate in predicates:
        if isinstance(predicate, And):
            flat.extend(predicate.operands)
        else:
            flat.append(predicate)
    if not flat:
        return Literal(True)
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def column(name: str, qualifier: str | None = None) -> ColumnRef:
    """Shorthand used pervasively in tests: ``column("year", "Papers")``."""
    return ColumnRef(name, qualifier)


def equals(ref: str | ColumnRef, value: Any, qualifier: str | None = None) -> Comparison:
    """Shorthand for ``ref = literal`` predicates."""
    expr = ref if isinstance(ref, ColumnRef) else ColumnRef(ref, qualifier)
    return Comparison("=", expr, Literal(value))
