"""Row storage with constraint enforcement and hash indexes.

A :class:`Table` owns its rows (stored as tuples in insertion order) and
maintains a unique hash index over the primary key plus non-unique hash
indexes over any columns the caller asks for. Foreign-key checking needs the
whole catalog and therefore lives in :mod:`repro.relational.database`.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.errors import (
    NotNullViolation,
    PrimaryKeyViolation,
    SchemaError,
)
from repro.relational.datatypes import coerce
from repro.relational.schema import TableSchema


class Table:
    """A mutable relation instance conforming to a :class:`TableSchema`."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self.rows: list[tuple[Any, ...]] = []
        self._pk_index: dict[tuple[Any, ...], int] = {}
        # column name -> {value -> [row positions]}
        self._indexes: dict[str, dict[Any, list[int]]] = {}

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return iter(self.rows)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, row: Sequence[Any] | Mapping[str, Any]) -> tuple[Any, ...]:
        """Insert one row, given positionally or as a column->value mapping.

        Values are coerced to the declared column types. Primary-key and
        NOT NULL constraints are enforced here; foreign keys are enforced by
        :meth:`repro.relational.database.Database.insert`.

        Returns the stored (coerced) tuple.
        """
        values = self._normalize(row)
        self._check_not_null(values)
        pk_value = self._primary_key_value(values)
        if pk_value is not None and pk_value in self._pk_index:
            raise PrimaryKeyViolation(
                f"duplicate primary key {pk_value!r} in table {self.name!r}"
            )
        position = len(self.rows)
        self.rows.append(values)
        if pk_value is not None:
            self._pk_index[pk_value] = position
        for column, index in self._indexes.items():
            col_pos = self.schema.column_index(column)
            index.setdefault(values[col_pos], []).append(position)
        return values

    def insert_many(self, rows: Iterable[Sequence[Any] | Mapping[str, Any]]) -> int:
        """Insert many rows; returns how many were inserted."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get_by_pk(self, *pk_value: Any) -> tuple[Any, ...] | None:
        """Return the row whose primary key equals ``pk_value`` (or None)."""
        if not self.schema.primary_key:
            raise SchemaError(f"table {self.name!r} has no primary key")
        position = self._pk_index.get(tuple(pk_value))
        if position is None:
            return None
        return self.rows[position]

    def has_pk(self, *pk_value: Any) -> bool:
        return tuple(pk_value) in self._pk_index

    def create_index(self, column: str) -> None:
        """Create (or refresh) a non-unique hash index on ``column``."""
        col_pos = self.schema.column_index(column)
        index: dict[Any, list[int]] = {}
        for position, row in enumerate(self.rows):
            index.setdefault(row[col_pos], []).append(position)
        self._indexes[column] = index

    def lookup(self, column: str, value: Any) -> list[tuple[Any, ...]]:
        """All rows where ``column == value``; uses an index when available."""
        if column in self._indexes:
            return [self.rows[pos] for pos in self._indexes[column].get(value, ())]
        col_pos = self.schema.column_index(column)
        return [row for row in self.rows if row[col_pos] == value]

    def column_values(self, column: str) -> list[Any]:
        """The values of one column, in row order (duplicates preserved)."""
        col_pos = self.schema.column_index(column)
        return [row[col_pos] for row in self.rows]

    def distinct_values(self, column: str) -> list[Any]:
        """Distinct non-null values of ``column`` in first-appearance order."""
        seen: set[Any] = set()
        out: list[Any] = []
        for value in self.column_values(column):
            if value is None or value in seen:
                continue
            seen.add(value)
            out.append(value)
        return out

    def as_dicts(self) -> list[dict[str, Any]]:
        """Rows as dictionaries (convenient for tests and rendering)."""
        names = self.schema.column_names
        return [dict(zip(names, row)) for row in self.rows]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _normalize(self, row: Sequence[Any] | Mapping[str, Any]) -> tuple[Any, ...]:
        columns = self.schema.columns
        if isinstance(row, Mapping):
            unknown = set(row) - {c.name for c in columns}
            if unknown:
                raise SchemaError(
                    f"unknown column(s) {sorted(unknown)!r} for table {self.name!r}"
                )
            raw = [row.get(c.name) for c in columns]
        else:
            raw = list(row)
            if len(raw) != len(columns):
                raise SchemaError(
                    f"table {self.name!r} expects {len(columns)} values, got {len(raw)}"
                )
        return tuple(
            coerce(value, column.dtype) for value, column in zip(raw, columns)
        )

    def _check_not_null(self, values: tuple[Any, ...]) -> None:
        for value, column in zip(values, self.schema.columns):
            required = not column.nullable or column.name in self.schema.primary_key
            if required and value is None:
                raise NotNullViolation(
                    f"column {column.name!r} of table {self.name!r} is NOT NULL"
                )

    def _primary_key_value(self, values: tuple[Any, ...]) -> tuple[Any, ...] | None:
        if not self.schema.primary_key:
            return None
        return tuple(
            values[self.schema.column_index(name)] for name in self.schema.primary_key
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, {len(self.rows)} rows)"
