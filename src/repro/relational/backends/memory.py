"""The in-memory engine behind the :class:`SqlBackend` protocol.

This wraps :func:`repro.relational.sql.executor.execute_sql` — the engine
every strategy ran on before backends existed — so the default execution
path stays byte-compatible: loading is a no-op (the engine queries the
:class:`Database` catalog directly) and execution is a straight delegation.
"""

from __future__ import annotations

from repro.relational.algebra import Relation
from repro.relational.backends.base import (
    BackendCapabilities,
    SqlBackend,
    register_backend,
)
from repro.relational.database import Database


@register_backend
class MemoryBackend(SqlBackend):
    """Zero-copy backend over the hand-rolled in-memory SQL engine."""

    name = "memory"
    capabilities = BackendCapabilities(dialect="memory")

    def _do_load(self, database: Database) -> None:
        pass  # the engine reads the catalog in place; nothing to copy

    def execute(self, sql: str) -> Relation:
        from repro.relational.sql.executor import execute_sql

        return execute_sql(self._require_loaded(), sql)
