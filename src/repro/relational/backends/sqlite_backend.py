"""A real DBMS backend: the stdlib ``sqlite3`` engine.

Loading copies a :class:`~repro.relational.database.Database` into an
in-memory (or file-backed) SQLite database: one ``CREATE TABLE`` per catalog
schema with type affinities (BOOLEAN folds to INTEGER — SQLite has no
boolean storage class), ``PRIMARY KEY`` / ``NOT NULL`` constraints, and a
hash-equivalent index on every foreign-key column so FK joins execute the
way the paper's PostgreSQL backend would.

Two user functions close the dialect gap with the in-memory engine:

* ``ENT_LIST`` — the Section-8 aggregate, registered via
  ``Connection.create_aggregate``. SQLite aggregates must return a storage
  class, so the aggregate emits a tagged JSON array which
  :meth:`SqliteBackend.execute` decodes back into the tuple the in-memory
  engine would have produced; the general query pattern runs unchanged.
* ``LIKE`` — overridden with the in-memory engine's pattern compiler so
  LIKE is case-insensitive for *all* characters (SQLite's built-in LIKE
  only folds ASCII) and matches across newlines.
"""

from __future__ import annotations

import json
import sqlite3
from typing import Any

from repro.relational.algebra import Relation
from repro.relational.backends.base import (
    BackendCapabilities,
    SqlBackend,
    quote_identifier,
    register_backend,
)
from repro.relational.database import Database
from repro.relational.datatypes import DataType
from repro.relational.expressions import _compile_like
from repro.relational.schema import TableSchema

_AFFINITY = {
    DataType.INTEGER: "INTEGER",
    DataType.REAL: "REAL",
    DataType.TEXT: "TEXT",
    DataType.BOOLEAN: "INTEGER",
}

# Finalized ENT_LIST cells travel through SQLite as tagged JSON text; the
# tag uses a record-separator control character so it can never collide
# with stored table data.
_ENT_LIST_TAG = "\x1eent_list\x1e"


class _EntListAggregate:
    """Distinct non-null inputs in first-appearance order (Section 8)."""

    def __init__(self) -> None:
        self._seen: set[Any] = set()
        self._values: list[Any] = []

    def step(self, value: Any) -> None:
        if value is None or value in self._seen:
            return
        self._seen.add(value)
        self._values.append(value)

    def finalize(self) -> str:
        return _ENT_LIST_TAG + json.dumps(self._values)


def _decode_cell(value: Any) -> Any:
    if isinstance(value, str) and value.startswith(_ENT_LIST_TAG):
        return tuple(json.loads(value[len(_ENT_LIST_TAG):]))
    return value


def _like(pattern: Any, value: Any) -> int | None:
    """``value LIKE pattern`` with the in-memory engine's exact semantics."""
    if pattern is None or value is None:
        return None
    return 1 if _compile_like(str(pattern)).match(str(value)) else 0


_quote = quote_identifier


def _create_table_sql(schema: TableSchema) -> str:
    parts: list[str] = []
    for column in schema.columns:
        spec = f"{_quote(column.name)} {_AFFINITY[column.dtype]}"
        if not column.nullable and column.name not in schema.primary_key:
            spec += " NOT NULL"
        parts.append(spec)
    if schema.primary_key:
        keys = ", ".join(_quote(name) for name in schema.primary_key)
        parts.append(f"PRIMARY KEY ({keys})")
    return f"CREATE TABLE {_quote(schema.name)} ({', '.join(parts)})"


def _adapt_value(value: Any) -> Any:
    if isinstance(value, bool):
        return int(value)
    return value


@register_backend
class SqliteBackend(SqlBackend):
    """Backend over Python's bundled SQLite engine.

    ``path`` defaults to ``":memory:"``; pass a filesystem path for a
    persistent database (the load then rebuilds it from scratch).
    ``check_same_thread=False`` lets callers that serialize access
    themselves (the pushdown context runs under its own lock inside the
    service's shared executor) use one connection from many threads —
    sqlite3's default binding refuses cross-thread use outright.
    """

    name = "sqlite"
    capabilities = BackendCapabilities(
        dialect="sqlite", preserves_booleans=False
    )

    def __init__(
        self,
        database: Database | None = None,
        path: str = ":memory:",
        check_same_thread: bool = True,
    ) -> None:
        self._path = path
        self._check_same_thread = check_same_thread
        self._connection: sqlite3.Connection | None = None
        super().__init__(database)

    # ------------------------------------------------------------------
    @property
    def connection(self) -> sqlite3.Connection | None:
        return self._connection

    def _do_load(self, database: Database) -> None:
        self.close()
        connection = sqlite3.connect(
            self._path, check_same_thread=self._check_same_thread
        )
        connection.create_aggregate("ENT_LIST", 1, _EntListAggregate)
        connection.create_function("LIKE", 2, _like)
        for table in database.tables.values():
            schema = table.schema
            connection.execute(f"DROP TABLE IF EXISTS {_quote(schema.name)}")
            connection.execute(_create_table_sql(schema))
            if table.rows:
                placeholders = ", ".join("?" * len(schema.columns))
                connection.executemany(
                    f"INSERT INTO {_quote(schema.name)} VALUES ({placeholders})",
                    [tuple(_adapt_value(v) for v in row) for row in table.rows],
                )
            for fk in schema.foreign_keys:
                for column in fk.columns:
                    index_name = _quote(f"idx_{schema.name}_{column}")
                    connection.execute(
                        f"CREATE INDEX IF NOT EXISTS {index_name} "
                        f"ON {_quote(schema.name)} ({_quote(column)})"
                    )
        connection.commit()
        self._connection = connection

    def execute(self, sql: str) -> Relation:
        self._require_loaded()
        assert self._connection is not None
        cursor = self._connection.execute(sql)
        columns = [(None, description[0]) for description in cursor.description]
        rows = [
            tuple(_decode_cell(value) for value in row)
            for row in cursor.fetchall()
        ]
        return Relation(columns, rows)

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None
