"""Pluggable SQL execution backends (the ROADMAP's multi-backend item).

Every backend implements the :class:`SqlBackend` protocol: load a
:class:`~repro.relational.database.Database`, execute SQL, return a
:class:`~repro.relational.algebra.Relation`. The execution strategies in
:mod:`repro.core.sql_execution` accept any backend (or its registry name),
defaulting to the byte-compatible in-memory engine::

    from repro.relational.backends import create_backend

    backend = create_backend("sqlite", db)   # or MemoryBackend(db)
    result = execute_monolithic(db, pattern, schema, mapping, graph,
                                backend=backend)
"""

from repro.relational.backends.base import (
    BackendCapabilities,
    SqlBackend,
    backend_class,
    backend_names,
    create_backend,
    register_backend,
)
from repro.relational.backends.memory import MemoryBackend
from repro.relational.backends.pushdown import (
    PushdownContext,
    pushdown_context,
)
from repro.relational.backends.sqlite_backend import SqliteBackend

__all__ = [
    "BackendCapabilities",
    "MemoryBackend",
    "PushdownContext",
    "SqlBackend",
    "SqliteBackend",
    "backend_class",
    "backend_names",
    "create_backend",
    "pushdown_context",
    "register_backend",
]
