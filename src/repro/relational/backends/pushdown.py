"""Cost-based SQL pushdown of delta joins (ROADMAP open item 3).

The planning engine's delta join is a Python loop: probe the adjacency
index once per prefix tuple, expand every qualifying neighbor. That is the
right shape for interactive steps, but an oversized intermediate (a pivot
from a barely-filtered table, say) pays Python's per-row interpretation
cost |prefix| × fanout times. PR 1's :class:`SqliteBackend` already holds
machinery that can run the very same join at C speed: the Section 6.2
four-table storage (:func:`repro.tgm.storage.save_graph`) persists the
instance graph's ``edges`` table with indexes on ``type_name`` /
``source_id`` / ``target_id``, which is exactly the access path one delta
join needs.

:class:`PushdownContext` owns one lazily-loaded SQLite image of the graph
(rebuilt whenever the graph's mutation version moves) and translates a
single delta-join step into SQL:

* the prefix relation's probe column ships into a temp table as
  ``(row index, node id)`` pairs;
* the traversal becomes a two-arm ``UNION ALL`` over the ``edges`` table —
  a forward arm (``source_id = probe``) and, when the traversal's reverse
  twin exists, a reverse arm (``target_id = probe``, emitting
  ``source_id``) — because an adjacency list interleaves edges stored
  under either twin's name;
* the candidate set (computed in Python exactly as the kernel does, index
  probes and memo included) becomes an ``IN`` filter over a second temp
  table;
* ``ORDER BY (prefix row index, edge id)`` reproduces the kernel's output
  order *exactly*: adjacency lists append in global ``add_edge`` order,
  which is the ``edges`` table's ``id`` order — so the pushed join is
  bit-identical to :func:`repro.core.planner._delta_join` and the
  differential fuzzer can hold ``engine="pushdown"`` in lockstep with the
  naive oracle.

The **cost rule** is a per-join decision driven by
:class:`~repro.tgm.instance_graph.GraphStatistics`: push when the
estimated intermediate, ``|prefix| × avg_degree(traversal)``, reaches
``min_rows`` (default :data:`DEFAULT_MIN_PUSHDOWN_ROWS`, overridable via
``REPRO_PUSHDOWN_MIN_ROWS``). Small joins stay in the Python kernel, whose
constant factors win below the threshold; the fuzzer forces ``min_rows=0``
so every join exercises the SQL path.
"""

from __future__ import annotations

import os
import threading
from typing import Iterable
from weakref import WeakKeyDictionary

from repro.analysis.runtime import assert_locked
from repro.relational.backends.sqlite_backend import SqliteBackend
from repro.tgm.graph_relation import GraphAttribute, GraphRelation
from repro.tgm.instance_graph import InstanceGraph

# NOT imported at module level: ``repro.tgm.storage`` imports
# ``repro.relational.database``, whose package init imports this backends
# package — a cycle when ``repro.tgm`` loads first.

# Below this many *estimated intermediate rows* a delta join stays in the
# Python kernel: shipping the prefix into SQLite and fetching the result
# back costs two O(rows) copies, which only pays off once the join's own
# probe-and-expand work dominates them.
DEFAULT_MIN_PUSHDOWN_ROWS = 8192


def resolve_min_pushdown_rows(min_rows: int | None) -> int:
    """``None`` means auto: ``REPRO_PUSHDOWN_MIN_ROWS`` or the default."""
    if min_rows is None:
        env = os.environ.get("REPRO_PUSHDOWN_MIN_ROWS")
        min_rows = int(env) if env else DEFAULT_MIN_PUSHDOWN_ROWS
    return max(0, int(min_rows))


class PushdownContext:
    """A per-graph SQL engine for oversized delta joins.

    One context owns one lazily-built :class:`SqliteBackend` holding the
    four-table storage image of ``graph``, the cost rule deciding which
    joins it answers, and the observability counters the service's
    ``stats_payload`` exposes. The image is version-bound: a graph
    mutation invalidates it, and the next pushed join reloads from the
    mutated graph — stale edges can never be served.

    Thread-safe: the load and every pushed join run under one lock (the
    SQLite connection is shared across the service's request threads), and
    the relation materialization happens outside it.
    """

    def __init__(
        self, graph: InstanceGraph, min_rows: int | None = None
    ) -> None:
        self.graph = graph
        self.min_rows = resolve_min_pushdown_rows(min_rows)
        self._lock = threading.Lock()
        self._backend: SqliteBackend | None = None  # guarded-by: self._lock
        self._loaded_version: int | None = None  # guarded-by: self._lock
        self.loads = 0  # guarded-by: self._lock
        self.pushed_joins = 0  # guarded-by: self._lock
        self.rows_in = 0  # guarded-by: self._lock
        self.rows_out = 0  # guarded-by: self._lock

    # ------------------------------------------------------------------
    # Cost rule
    # ------------------------------------------------------------------
    def should_push(self, rows: int, traversal: str) -> bool:
        """Route this join to SQL? ``rows`` is the prefix height.

        The estimated intermediate is ``rows × avg_degree(traversal)``
        from the graph's degree statistics — the same estimate the planner
        itself joins on — compared against ``min_rows``.
        """
        if rows < 1:
            return False
        stats = self.graph.statistics()
        fanout = max(1.0, stats.edge_type_stats(traversal).avg_degree)
        return rows * fanout >= self.min_rows

    # ------------------------------------------------------------------
    # Backend lifecycle
    # ------------------------------------------------------------------
    def _ensure_backend(self) -> SqliteBackend:  # requires-lock
        """(Re)load the SQLite image when the graph version moved."""
        assert_locked(self._lock, "PushdownContext._lock")
        from repro.tgm.storage import save_graph

        version = self.graph.version
        if self._backend is None or self._loaded_version != version:
            if self._backend is not None:
                self._backend.close()
            backend = SqliteBackend(check_same_thread=False)
            backend.load(save_graph(self.graph.schema, self.graph))
            connection = backend.connection
            assert connection is not None
            # The storage schema indexes each FK column alone; a delta
            # join's access path is the *pair* (edge type, probe side).
            connection.execute(
                'CREATE INDEX IF NOT EXISTS "idx_edges_type_source" '
                'ON "edges" ("type_name", "source_id")'
            )
            connection.execute(
                'CREATE INDEX IF NOT EXISTS "idx_edges_type_target" '
                'ON "edges" ("type_name", "target_id")'
            )
            self._backend = backend
            self._loaded_version = version
            self.loads += 1
        return self._backend

    def close(self) -> None:
        """Release the SQLite connection (the context may push again)."""
        with self._lock:
            if self._backend is not None:
                self._backend.close()
                self._backend = None
                self._loaded_version = None

    # ------------------------------------------------------------------
    # The pushed join
    # ------------------------------------------------------------------
    def delta_join(
        self,
        relation: GraphRelation,
        left_key: str,
        traversal_edge: str,
        new_key: str,
        new_type: str,
        candidate_set: Iterable[int] | None,
    ) -> GraphRelation:
        """One delta join on the SQL backend; bit-identical to the kernel.

        Same signature and semantics as
        :func:`repro.core.planner._delta_join`: ``candidate_set=None``
        means the new node is unconditioned (adjacency lists — and the
        per-type ``edges`` rows — are type-homogeneous, so every neighbor
        qualifies).
        """
        position = relation.position(left_key)
        columns = relation.columns_view()
        source_column = columns[position]
        edge_type = self.graph.schema.edge_type(traversal_edge)
        with self._lock:
            connection = self._ensure_backend().connection
            assert connection is not None
            cursor = connection.cursor()
            cursor.execute(
                "CREATE TEMP TABLE IF NOT EXISTS pushdown_prefix "
                "(idx INTEGER NOT NULL, node INTEGER NOT NULL)"
            )
            # Without this index SQLite's planner may nest the *unindexed*
            # prefix table inside the edges scan — O(|edges| × |prefix|).
            cursor.execute(
                "CREATE INDEX IF NOT EXISTS temp.pushdown_prefix_node "
                "ON pushdown_prefix (node, idx)"
            )
            cursor.execute("DELETE FROM pushdown_prefix")
            cursor.executemany(
                "INSERT INTO pushdown_prefix VALUES (?, ?)",
                enumerate(source_column),
            )
            filter_sql = ""
            if candidate_set is not None:
                cursor.execute(
                    "CREATE TEMP TABLE IF NOT EXISTS pushdown_candidates "
                    "(node INTEGER PRIMARY KEY)"
                )
                cursor.execute("DELETE FROM pushdown_candidates")
                cursor.executemany(
                    "INSERT OR IGNORE INTO pushdown_candidates VALUES (?)",
                    ((node_id,) for node_id in candidate_set),
                )
                filter_sql = (
                    " WHERE dst IN (SELECT node FROM pushdown_candidates)"
                )
            # An adjacency list under ``traversal_edge`` interleaves edges
            # stored under that name (probe = source) with edges stored
            # under its reverse twin (probe = target), in global insertion
            # order — hence the two indexed arms and the edge-id rank.
            arms = [
                'SELECT p.idx AS idx, e."target_id" AS dst, e."id" AS rank '
                'FROM pushdown_prefix p JOIN "edges" e '
                'ON e."source_id" = p.node AND e."type_name" = ?'
            ]
            arm_params = [traversal_edge]
            if edge_type.reverse_name is not None:
                arms.append(
                    'SELECT p.idx AS idx, e."source_id" AS dst, e."id" AS rank '
                    'FROM pushdown_prefix p JOIN "edges" e '
                    'ON e."target_id" = p.node AND e."type_name" = ?'
                )
                arm_params.append(edge_type.reverse_name)
            sql = (
                "SELECT idx, dst FROM ("
                + " UNION ALL ".join(arms)
                + ")"
                + filter_sql
                + " ORDER BY idx, rank"
            )
            pairs = cursor.execute(sql, arm_params).fetchall()
            self.pushed_joins += 1
            self.rows_in += len(source_column)
            self.rows_out += len(pairs)
        selected = [pair[0] for pair in pairs]
        new_column = [pair[1] for pair in pairs]
        out = [[column[index] for index in selected] for column in columns]
        out.append(new_column)
        attributes = list(relation.attributes) + [
            GraphAttribute(new_key, new_type)
        ]
        return GraphRelation.from_columns(attributes, out)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stats_payload(self) -> dict:
        """Counters for the service's ``/v1/stats`` (JSON-able)."""
        with self._lock:
            return {
                "min_rows": self.min_rows,
                "loads": self.loads,
                "pushed_joins": self.pushed_joins,
                "rows_in": self.rows_in,
                "rows_out": self.rows_out,
            }


# ----------------------------------------------------------------------
# Process-wide shared contexts (mirrors planner.parallel_context)
# ----------------------------------------------------------------------
_CONTEXTS: "WeakKeyDictionary[InstanceGraph, dict[int, PushdownContext]]" = (
    WeakKeyDictionary()
)
_CONTEXTS_LOCK = threading.Lock()


def pushdown_context(
    graph: InstanceGraph, min_rows: int | None = None
) -> PushdownContext:
    """The process-wide shared context for ``(graph, threshold)``.

    Sharing matters: the SQLite image of a graph is the expensive part,
    and every session/executor pushing joins over the same graph should
    reuse one. Keyed weakly by graph, so the image dies with it.
    """
    resolved = resolve_min_pushdown_rows(min_rows)
    with _CONTEXTS_LOCK:
        per_graph = _CONTEXTS.get(graph)
        if per_graph is None:
            per_graph = {}
            _CONTEXTS[graph] = per_graph
        context = per_graph.get(resolved)
        if context is None:
            context = PushdownContext(graph, min_rows=resolved)
            per_graph[resolved] = context
        return context
