"""The pluggable SQL-backend protocol (Section 6.2's server tier).

The paper's prototype runs its translated queries on PostgreSQL; this
reproduction historically ran them only on the hand-rolled in-memory engine
in :mod:`repro.relational.sql`. A :class:`SqlBackend` abstracts "something
that can hold a :class:`~repro.relational.database.Database` and execute the
SQL our translation layer emits", so the execution strategies in
:mod:`repro.core.sql_execution` are engine-agnostic: any DBMS that can
implement this protocol (SQLite today; Postgres or DuckDB tomorrow) slots in
without touching the translation or merging code.

Backends advertise :class:`BackendCapabilities` so callers can adapt emitted
SQL to the engine's dialect (see :func:`repro.core.sql_translation.adapt_sql`)
and refuse strategies the engine cannot run (the monolithic Section-8 pattern
needs the ``ENT_LIST`` aggregate).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import ClassVar

from repro.errors import EtableError, UnknownBackend
from repro.relational.algebra import Relation
from repro.relational.database import Database


@dataclass(frozen=True)
class BackendCapabilities:
    """What an engine can do, and which SQL dialect it speaks.

    ``dialect`` names the flavour understood by ``adapt_sql``; ``"memory"``
    is the canonical dialect every translator emits. ``ent_list`` means the
    backend provides the Section-8 ``ENT_LIST`` aggregate (required by the
    monolithic strategy; the partitioned strategy works without it).
    ``preserves_booleans`` is False for engines whose type affinity folds
    booleans into integers on load (SQLite).
    """

    dialect: str
    ent_list: bool = True
    preserves_booleans: bool = True
    persistent: bool = False


class SqlBackend(abc.ABC):
    """One SQL engine holding one loaded :class:`Database`.

    Lifecycle: construct (optionally with a database), :meth:`load`, then any
    number of :meth:`execute` calls, then :meth:`close`. ``execute`` expects
    SQL already in the backend's dialect — run canonical (memory-dialect)
    text through :func:`repro.core.sql_translation.adapt_sql` first; the
    execution strategies in :mod:`repro.core.sql_execution` do this for you.
    """

    name: ClassVar[str]
    capabilities: ClassVar[BackendCapabilities]

    def __init__(self, database: Database | None = None) -> None:
        self._database: Database | None = None
        if database is not None:
            self.load(database)

    # ------------------------------------------------------------------
    @property
    def database(self) -> Database | None:
        return self._database

    @property
    def is_loaded(self) -> bool:
        return self._database is not None

    def load(self, database: Database) -> None:
        """(Re)load the backend with the catalog and rows of ``database``."""
        self._do_load(database)
        self._database = database

    @abc.abstractmethod
    def _do_load(self, database: Database) -> None:
        """Engine-specific loading; runs before ``self._database`` is set."""

    @abc.abstractmethod
    def execute(self, sql: str) -> Relation:
        """Execute one dialect-adapted SELECT and return its result."""

    def close(self) -> None:
        """Release engine resources; the backend may be reloaded afterwards."""

    # ------------------------------------------------------------------
    def _require_loaded(self) -> Database:
        if self._database is None:
            raise EtableError(
                f"backend {self.name!r} has no database loaded; call load()"
            )
        return self._database

    def __enter__(self) -> "SqlBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        loaded = self._database.name if self._database else "<empty>"
        return f"{type(self).__name__}({loaded})"


def quote_identifier(name: str, dialect: str = "sqlite") -> str:
    """Quote ``name`` so reserved words survive as identifiers.

    Both supported dialects accept standard double-quoting; the parameter
    exists so future backends with other conventions keep one entry point.
    ``adapt_sql`` leaves double-quoted spans untouched, so quoted
    identifiers are safe from its keyword rewriting.
    """
    del dialect  # every current dialect uses SQL-standard double quotes
    return '"' + name.replace('"', '""') + '"'


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, type[SqlBackend]] = {}


def register_backend(cls: type[SqlBackend]) -> type[SqlBackend]:
    """Class decorator adding a backend to the by-name registry."""
    _REGISTRY[cls.name] = cls
    return cls


def backend_names() -> list[str]:
    """Registered backend names, in registration order."""
    return list(_REGISTRY)


def backend_class(name: str) -> type[SqlBackend]:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownBackend(
            f"unknown SQL backend {name!r}; available: {backend_names()}"
        ) from None


def create_backend(name: str, database: Database | None = None) -> SqlBackend:
    """Instantiate a registered backend, optionally loading ``database``."""
    return backend_class(name)(database)
