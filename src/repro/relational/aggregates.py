"""Aggregate functions for GROUP BY evaluation.

Besides the standard SQL five (COUNT, SUM, AVG, MIN, MAX) we implement
``ENT_LIST``, the engine's analogue of PostgreSQL's ``json_agg`` that the
paper uses to gather entity references into one cell (Section 8's general
query pattern: ``SELECT τa.*, ent-list(t1), ...``). ``ENT_LIST`` collects the
distinct non-null input values in first-appearance order and returns them as
a tuple, which the ETable layer then turns into entity-reference cells.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.errors import SqlSemanticError
from repro.relational.datatypes import is_comparable


def _non_null(values: Iterable[Any]) -> list[Any]:
    return [value for value in values if value is not None]


def agg_count(values: Iterable[Any]) -> int:
    """COUNT(expr): number of non-null values."""
    return len(_non_null(values))


def agg_count_star(values: Iterable[Any]) -> int:
    """COUNT(*): number of rows, nulls included."""
    return sum(1 for _ in values)


def agg_count_distinct(values: Iterable[Any]) -> int:
    """COUNT(DISTINCT expr)."""
    return len(set(_non_null(values)))


def agg_sum(values: Iterable[Any]) -> Any:
    present = _non_null(values)
    if not present:
        return None
    _require_numeric(present, "SUM")
    return sum(present)


def agg_avg(values: Iterable[Any]) -> Any:
    present = _non_null(values)
    if not present:
        return None
    _require_numeric(present, "AVG")
    return sum(present) / len(present)


def agg_min(values: Iterable[Any]) -> Any:
    present = _non_null(values)
    if not present:
        return None
    _require_uniform(present, "MIN")
    return min(present)


def agg_max(values: Iterable[Any]) -> Any:
    present = _non_null(values)
    if not present:
        return None
    _require_uniform(present, "MAX")
    return max(present)


def agg_ent_list(values: Iterable[Any]) -> tuple[Any, ...]:
    """Collect distinct non-null values, preserving first-appearance order."""
    seen: set[Any] = set()
    out: list[Any] = []
    for value in values:
        if value is None or value in seen:
            continue
        seen.add(value)
        out.append(value)
    return tuple(out)


def _require_numeric(values: list[Any], name: str) -> None:
    for value in values:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SqlSemanticError(f"{name} requires numeric input, got {value!r}")


def _require_uniform(values: list[Any], name: str) -> None:
    first = values[0]
    for value in values[1:]:
        if not is_comparable(first, value):
            raise SqlSemanticError(
                f"{name} over incomparable values {first!r} and {value!r}"
            )


AGGREGATES: dict[str, Callable[[Iterable[Any]], Any]] = {
    "count": agg_count,
    "count_star": agg_count_star,
    "count_distinct": agg_count_distinct,
    "sum": agg_sum,
    "avg": agg_avg,
    "min": agg_min,
    "max": agg_max,
    "ent_list": agg_ent_list,
}


def is_aggregate_name(name: str) -> bool:
    return name.lower() in ("count", "sum", "avg", "min", "max", "ent_list")
