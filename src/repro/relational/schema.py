"""Table and database schema declarations.

A :class:`TableSchema` mirrors a ``CREATE TABLE`` statement: named, typed
columns, an optional (possibly composite) primary key, and foreign keys.
Schemas are immutable once constructed; the instance data lives in
:mod:`repro.relational.table`.

The reverse-engineering translator (Appendix A of the paper) reads these
declarations — primary keys, foreign keys, and column types — to classify
every relation into entity / relationship / multivalued-attribute categories
(Table 1 of the paper), so the declarations here carry exactly the metadata
that procedure needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import SchemaError
from repro.relational.datatypes import DataType


@dataclass(frozen=True)
class Column:
    """A single typed column.

    ``nullable`` defaults to True, matching SQL. Primary-key columns are
    implicitly NOT NULL regardless of this flag.
    """

    name: str
    dtype: DataType
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid column name {self.name!r}")


@dataclass(frozen=True)
class ForeignKey:
    """A foreign key from ``columns`` to ``ref_table`` (``ref_columns``).

    Composite foreign keys are supported (``len(columns) > 1``) although the
    paper's schemas only use single-column keys.
    """

    columns: tuple[str, ...]
    ref_table: str
    ref_columns: tuple[str, ...]

    def __init__(
        self,
        columns: Sequence[str] | str,
        ref_table: str,
        ref_columns: Sequence[str] | str = ("id",),
    ) -> None:
        if isinstance(columns, str):
            columns = (columns,)
        if isinstance(ref_columns, str):
            ref_columns = (ref_columns,)
        if len(columns) != len(ref_columns):
            raise SchemaError(
                f"foreign key arity mismatch: {columns!r} -> {ref_columns!r}"
            )
        if not columns:
            raise SchemaError("foreign key needs at least one column")
        object.__setattr__(self, "columns", tuple(columns))
        object.__setattr__(self, "ref_table", ref_table)
        object.__setattr__(self, "ref_columns", tuple(ref_columns))

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(self.columns)
        refs = ", ".join(self.ref_columns)
        return f"FOREIGN KEY ({cols}) REFERENCES {self.ref_table}({refs})"


class TableSchema:
    """Schema of one relation: columns, primary key, and foreign keys."""

    def __init__(
        self,
        name: str,
        columns: Iterable[Column],
        primary_key: Sequence[str] | str | None = None,
        foreign_keys: Iterable[ForeignKey] = (),
    ) -> None:
        if not name or not name.isidentifier():
            raise SchemaError(f"invalid table name {name!r}")
        self.name = name
        self.columns: tuple[Column, ...] = tuple(columns)
        if not self.columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        seen: set[str] = set()
        for column in self.columns:
            lowered = column.name.lower()
            if lowered in seen:
                raise SchemaError(f"duplicate column {column.name!r} in table {name!r}")
            seen.add(lowered)
        self._by_name = {column.name: column for column in self.columns}

        if primary_key is None:
            pk: tuple[str, ...] = ()
        elif isinstance(primary_key, str):
            pk = (primary_key,)
        else:
            pk = tuple(primary_key)
        for key_col in pk:
            if key_col not in self._by_name:
                raise SchemaError(
                    f"primary key column {key_col!r} not in table {name!r}"
                )
        self.primary_key: tuple[str, ...] = pk

        self.foreign_keys: tuple[ForeignKey, ...] = tuple(foreign_keys)
        for fk in self.foreign_keys:
            for col in fk.columns:
                if col not in self._by_name:
                    raise SchemaError(
                        f"foreign key column {col!r} not in table {name!r}"
                    )

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"no column {name!r} in table {self.name!r}") from None

    def column_index(self, name: str) -> int:
        for index, column in enumerate(self.columns):
            if column.name == name:
                return index
        raise SchemaError(f"no column {name!r} in table {self.name!r}")

    def is_primary_key_column(self, name: str) -> bool:
        return name in self.primary_key

    def foreign_key_for(self, column: str) -> ForeignKey | None:
        """Return the (single-column) foreign key declared on ``column``."""
        for fk in self.foreign_keys:
            if fk.columns == (column,):
                return fk
        return None

    def foreign_key_columns(self) -> set[str]:
        """All column names that participate in some foreign key."""
        names: set[str] = set()
        for fk in self.foreign_keys:
            names.update(fk.columns)
        return names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(f"{c.name} {c.dtype}" for c in self.columns)
        return f"TableSchema({self.name}: {cols})"


def table_schema(
    name: str,
    columns: Sequence[tuple[str, DataType] | tuple[str, DataType, bool]],
    primary_key: Sequence[str] | str | None = None,
    foreign_keys: Iterable[ForeignKey] = (),
) -> TableSchema:
    """Concise :class:`TableSchema` factory used throughout tests and datasets.

    Each column spec is ``(name, dtype)`` or ``(name, dtype, nullable)``.
    """
    built: list[Column] = []
    for spec in columns:
        if len(spec) == 2:
            col_name, dtype = spec  # type: ignore[misc]
            built.append(Column(col_name, dtype))
        else:
            col_name, dtype, nullable = spec  # type: ignore[misc]
            built.append(Column(col_name, dtype, nullable=nullable))
    return TableSchema(name, built, primary_key=primary_key, foreign_keys=foreign_keys)
