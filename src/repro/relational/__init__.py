"""A small in-memory relational engine.

This package is the reproduction's substitute for the PostgreSQL backend the
paper's prototype used (Section 6.2): typed tables with primary/foreign-key
enforcement, a relational-algebra execution layer, and a SQL dialect rich
enough to run the queries that ETable's translation layer emits (Section 8),
including ``ENT_LIST`` — our analogue of PostgreSQL's ``json_agg``.

Public entry points::

    from repro.relational import (
        Column, DataType, Database, ForeignKey, TableSchema, table_schema,
        execute_sql,
    )

    db = Database("demo")
    db.create_table(table_schema("conferences", [("id", DataType.INTEGER),
                                                 ("acronym", DataType.TEXT)],
                                 primary_key="id"))
    db.insert("conferences", {"id": 1, "acronym": "SIGMOD"})
    result = execute_sql(db, "SELECT acronym FROM conferences WHERE id = 1")
"""

from repro.relational.backends import (
    BackendCapabilities,
    MemoryBackend,
    SqlBackend,
    SqliteBackend,
    backend_names,
    create_backend,
)
from repro.relational.algebra import (
    AggregateSpec,
    Relation,
    SortKey,
    cross_join,
    distinct,
    equi_join,
    from_table,
    group_by,
    limit,
    order_by,
    project,
    project_columns,
    rename,
    select,
    theta_join,
)
from repro.relational.database import Database
from repro.relational.datatypes import DataType, coerce, infer_type
from repro.relational.expressions import (
    And,
    Arithmetic,
    ColumnRef,
    Comparison,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
    Scope,
    column,
    conjoin,
    equals,
)
from repro.relational.schema import Column, ForeignKey, TableSchema, table_schema
from repro.relational.sql.executor import execute_sql, execute_statement
from repro.relational.sql.parser import parse, parse_select
from repro.relational.table import Table

__all__ = [
    "AggregateSpec",
    "And",
    "Arithmetic",
    "BackendCapabilities",
    "Column",
    "ColumnRef",
    "Comparison",
    "DataType",
    "Database",
    "Expression",
    "ForeignKey",
    "FunctionCall",
    "InList",
    "IsNull",
    "Like",
    "Literal",
    "MemoryBackend",
    "Not",
    "Or",
    "Relation",
    "Scope",
    "SortKey",
    "SqlBackend",
    "SqliteBackend",
    "Table",
    "TableSchema",
    "backend_names",
    "coerce",
    "column",
    "conjoin",
    "create_backend",
    "cross_join",
    "distinct",
    "equals",
    "equi_join",
    "execute_sql",
    "execute_statement",
    "from_table",
    "group_by",
    "infer_type",
    "limit",
    "order_by",
    "parse",
    "parse_select",
    "project",
    "project_columns",
    "rename",
    "select",
    "table_schema",
    "theta_join",
]
