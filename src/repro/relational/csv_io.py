"""CSV import/export for tables and databases.

The dataset generators can persist their output so benches and examples can
reload a fixed corpus instead of regenerating it. The format is plain CSV
with a header row; NULL is encoded as the empty string.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any

from repro.errors import SchemaError
from repro.relational.database import Database
from repro.relational.datatypes import DataType
from repro.relational.table import Table


def write_table_csv(table: Table, path: str | Path) -> int:
    """Write ``table`` to ``path``; returns the number of data rows written."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.schema.column_names)
        for row in table.rows:
            writer.writerow(["" if value is None else value for value in row])
    return len(table.rows)


def read_table_csv(table: Table, path: str | Path) -> int:
    """Load rows from ``path`` into ``table``; returns rows loaded.

    The CSV header must list exactly the table's columns (order-sensitive).
    Values are coerced by the table's declared types; empty strings load as
    NULL except in TEXT columns, where they load as empty strings only when
    the column is part of no key.
    """
    path = Path(path)
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"{path} is empty: missing CSV header") from None
        expected = list(table.schema.column_names)
        if header != expected:
            raise SchemaError(
                f"CSV header {header!r} does not match table columns {expected!r}"
            )
        count = 0
        for raw in reader:
            if len(raw) != len(expected):
                raise SchemaError(
                    f"{path}: row {count + 2} has {len(raw)} fields, "
                    f"expected {len(expected)}"
                )
            row = [_decode(value, column.dtype) for value, column in
                   zip(raw, table.schema.columns)]
            table.insert(row)
            count += 1
    return count


def _decode(text: str, dtype: DataType) -> Any:
    if text == "":
        return None
    return text


def dump_database(database: Database, directory: str | Path) -> dict[str, int]:
    """Write every table as ``<directory>/<table>.csv``; returns row counts."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    counts: dict[str, int] = {}
    for name, table in database.tables.items():
        counts[name] = write_table_csv(table, directory / f"{name}.csv")
    return counts


def load_database(database: Database, directory: str | Path) -> dict[str, int]:
    """Load ``<directory>/<table>.csv`` into each catalog table that has one.

    Tables are loaded without per-row FK checks (the dump is trusted), then
    the whole database is validated once; any violation raises.
    """
    directory = Path(directory)
    counts: dict[str, int] = {}
    for name, table in database.tables.items():
        path = directory / f"{name}.csv"
        if path.exists():
            counts[name] = read_table_csv(table, path)
    problems = database.validate_integrity()
    if problems:
        raise SchemaError(
            f"CSV load left {len(problems)} integrity violations; "
            f"first: {problems[0]}"
        )
    return counts
