"""Synthetic DBLP/ACM-style academic publication database (Figure 3).

The paper evaluated ETable on ~38,000 papers from 19 conferences in
databases, data mining, and HCI (since 2000), with the 7-relation schema of
Figure 3. That crawl is not redistributable, so this generator produces a
seeded synthetic corpus with the same schema, the same scale knobs, skewed
authorship/citation distributions (preferential attachment), and *anchor
rows* that guarantee every user-study task of Table 2 has a well-defined
answer (e.g. the paper titled 'Making database systems usable' exists, is a
2007 SIGMOD paper, and carries 'user interfaces' among its keywords).
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field
from typing import Any

from repro.relational.database import Database
from repro.relational.datatypes import DataType
from repro.relational.schema import ForeignKey, table_schema
from repro.datasets import names


@dataclass
class AcademicConfig:
    """Knobs for the generator. Defaults are test-sized; use
    :func:`paper_scale_config` for the paper's 38k-paper corpus."""

    papers: int = 1200
    authors: int | None = None          # default: ~papers // 2
    start_year: int = 2000
    end_year: int = 2015
    seed: int = 7
    max_authors_per_paper: int = 8
    min_keywords: int = 3
    max_keywords: int = 8
    max_references: int = 15

    def resolved_authors(self) -> int:
        if self.authors is not None:
            return self.authors
        return max(60, self.papers // 2)


def paper_scale_config(seed: int = 7) -> AcademicConfig:
    """The evaluation-scale corpus: ~38,000 papers, 19 conferences."""
    return AcademicConfig(papers=38_000, seed=seed)


def academic_schema() -> list:
    """The 7 relations / 7 foreign keys of Figure 3."""
    return [
        table_schema(
            "Conferences",
            [("id", DataType.INTEGER), ("acronym", DataType.TEXT),
             ("title", DataType.TEXT)],
            primary_key="id",
        ),
        table_schema(
            "Institutions",
            [("id", DataType.INTEGER), ("name", DataType.TEXT),
             ("country", DataType.TEXT)],
            primary_key="id",
        ),
        table_schema(
            "Authors",
            [("id", DataType.INTEGER), ("name", DataType.TEXT),
             ("institution_id", DataType.INTEGER)],
            primary_key="id",
            foreign_keys=[ForeignKey("institution_id", "Institutions", "id")],
        ),
        table_schema(
            "Papers",
            [("id", DataType.INTEGER), ("conference_id", DataType.INTEGER),
             ("title", DataType.TEXT), ("year", DataType.INTEGER),
             ("page_start", DataType.INTEGER), ("page_end", DataType.INTEGER)],
            primary_key="id",
            foreign_keys=[ForeignKey("conference_id", "Conferences", "id")],
        ),
        table_schema(
            "Paper_Authors",
            [("paper_id", DataType.INTEGER), ("author_id", DataType.INTEGER),
             ("author_position", DataType.INTEGER)],
            primary_key=["paper_id", "author_id"],
            foreign_keys=[
                ForeignKey("paper_id", "Papers", "id"),
                ForeignKey("author_id", "Authors", "id"),
            ],
        ),
        table_schema(
            "Paper_Keywords",
            [("paper_id", DataType.INTEGER), ("keyword", DataType.TEXT)],
            primary_key=["paper_id", "keyword"],
            foreign_keys=[ForeignKey("paper_id", "Papers", "id")],
        ),
        table_schema(
            "Paper_References",
            [("paper_id", DataType.INTEGER), ("ref_paper_id", DataType.INTEGER)],
            primary_key=["paper_id", "ref_paper_id"],
            foreign_keys=[
                ForeignKey("paper_id", "Papers", "id"),
                ForeignKey("ref_paper_id", "Papers", "id"),
            ],
        ),
    ]


def default_categorical_attributes() -> dict[str, list[str]]:
    """The categorical attributes shown in Figure 4: Papers.year and
    Institutions.country."""
    return {"Papers": ["year"], "Institutions": ["country"]}


def default_label_overrides() -> dict[str, str]:
    """Figure 1 labels conferences by acronym, not by full title."""
    return {"Conferences": "acronym", "Papers": "title",
            "Authors": "name", "Institutions": "name"}


# ----------------------------------------------------------------------
# Anchor entities used by the study tasks (Table 2, both matched sets)
# ----------------------------------------------------------------------
ANCHOR_AUTHORS: list[tuple[str, str]] = [
    # (author name, institution name)
    ("H. V. Jagadish", "University of Michigan"),
    ("Samuel Madden", "Massachusetts Institute of Technology"),
    ("Jeffrey Heer", "University of Washington"),
    ("Arnab Nandi", "University of Michigan"),
    ("Divesh Srivastava", "AT&T Labs"),
    ("Christos Faloutsos", "Carnegie Mellon University"),
    ("Jure Leskovec", "Stanford University"),
    ("Tom Mitchell", "Carnegie Mellon University"),
    ("Yehuda Koren", "Yahoo Research"),
    ("Minsuk Kahng", "Georgia Institute of Technology"),
    ("Scott Hudson", "Carnegie Mellon University"),
    ("Michael Bernstein", "Stanford University"),
]

_ANCHOR_PAPERS: list[dict[str, Any]] = [
    {
        "title": "Making database systems usable",
        "conference": "SIGMOD",
        "year": 2007,
        "page_start": 13,
        "page_end": 24,
        "authors": ["H. V. Jagadish", "Arnab Nandi"],
        "extra_authors": 5,
        "keywords": ["user interfaces", "human factors", "design", "usability"],
    },
    {
        "title": "Collaborative filtering with temporal dynamics",
        "conference": "KDD",
        "year": 2009,
        "page_start": 447,
        "page_end": 456,
        "authors": ["Yehuda Koren"],
        "extra_authors": 0,
        "keywords": ["collaborative filtering", "recommendation",
                     "temporal databases", "ranking", "machine learning"],
    },
    {
        "title": "Spreadsheet as a relational database engine",
        "conference": "SIGMOD",
        "year": 2010,
        "page_start": 195,
        "page_end": 206,
        "authors": [],
        "extra_authors": 1,
        "keywords": ["spreadsheets", "relational databases", "query languages",
                     "tabular data"],
    },
    {
        "title": "Interactive data mining with evolving queries",
        "conference": "KDD",
        "year": 2013,
        "page_start": 1009,
        "page_end": 1012,
        "authors": ["Christos Faloutsos"],
        "extra_authors": 3,
        "keywords": ["data mining", "user interfaces", "exploratory analysis",
                     "visual analytics", "high-dimensional data"],
    },
    # Samuel Madden's recent papers (Task 3, set A: "2013 or after").
    {
        "title": "Speedy transactions for multicore databases",
        "conference": "SIGMOD",
        "year": 2013,
        "page_start": 18,
        "page_end": 32,
        "authors": ["Samuel Madden"],
        "extra_authors": 3,
        "keywords": ["transactions", "main memory databases", "performance"],
    },
    {
        "title": "The analytical bottleneck in interactive exploration",
        "conference": "VLDB",
        "year": 2014,
        "page_start": 1142,
        "page_end": 1153,
        "authors": ["Samuel Madden"],
        "extra_authors": 2,
        "keywords": ["data exploration", "interactive visualization",
                     "performance"],
    },
    {
        "title": "Scalable sensing pipelines for urban data",
        "conference": "SIGMOD",
        "year": 2010,
        "page_start": 807,
        "page_end": 818,
        "authors": ["Samuel Madden"],
        "extra_authors": 2,
        "keywords": ["sensor networks", "stream processing", "sampling"],
    },
    # Jeffrey Heer's recent papers (Task 3, set B: "2012 or after").
    {
        "title": "Declarative interaction grammars for data graphics",
        "conference": "UIST",
        "year": 2014,
        "page_start": 669,
        "page_end": 678,
        "authors": ["Jeffrey Heer"],
        "extra_authors": 1,
        "keywords": ["data visualization", "user interfaces",
                     "interactive visualization", "design"],
    },
    {
        "title": "Perceptual kernels for visualization design",
        "conference": "INFOVIS",
        "year": 2014,
        "page_start": 1933,
        "page_end": 1942,
        "authors": ["Jeffrey Heer"],
        "extra_authors": 1,
        "keywords": ["visualization", "design", "experimentation"],
    },
    {
        "title": "Profiling habits in exploratory visual sessions",
        "conference": "CHI",
        "year": 2009,
        "page_start": 1217,
        "page_end": 1226,
        "authors": ["Jeffrey Heer"],
        "extra_authors": 2,
        "keywords": ["user studies", "exploratory analysis", "visualization"],
    },
    # Carnegie Mellon + KDD anchors (Task 4, set A).
    {
        "title": "Fast pattern mining for evolving graphs",
        "conference": "KDD",
        "year": 2011,
        "page_start": 433,
        "page_end": 441,
        "authors": ["Christos Faloutsos"],
        "extra_authors": 2,
        "keywords": ["graph mining", "frequent patterns", "scalability"],
    },
    {
        "title": "Never-ending learners for web-scale extraction",
        "conference": "KDD",
        "year": 2012,
        "page_start": 528,
        "page_end": 536,
        "authors": ["Tom Mitchell"],
        "extra_authors": 3,
        "keywords": ["machine learning", "text mining", "active learning"],
    },
    # Stanford + CHI anchors (Task 4, set B).
    {
        "title": "Crowd-powered interfaces for complex work",
        "conference": "CHI",
        "year": 2012,
        "page_start": 1011,
        "page_end": 1020,
        "authors": ["Michael Bernstein"],
        "extra_authors": 2,
        "keywords": ["crowdsourcing", "user interfaces", "design"],
    },
]


@dataclass
class GenerationReport:
    """Row counts and anchor ids recorded while generating."""

    counts: dict[str, int] = field(default_factory=dict)
    anchor_paper_ids: dict[str, int] = field(default_factory=dict)
    anchor_author_ids: dict[str, int] = field(default_factory=dict)


def generate_academic(
    config: AcademicConfig | None = None,
) -> tuple[Database, GenerationReport]:
    """Generate the corpus; deterministic for a fixed config."""
    config = config or AcademicConfig()
    rng = random.Random(config.seed)
    db = Database("academic")
    for schema in academic_schema():
        db.create_table(schema)
    report = GenerationReport()

    conference_ids = _load_conferences(db)
    institution_ids = _load_institutions(db)
    author_rows, author_ids_by_name = _make_authors(
        config, rng, institution_ids, report
    )
    _fix_country_majorities(rng, author_rows, institution_ids)
    db.load_unchecked("Authors", author_rows)
    report.counts["Authors"] = len(author_rows)

    paper_rows, paper_authors, paper_keywords, paper_references = _make_papers(
        config, rng, conference_ids, author_rows, author_ids_by_name, report
    )
    db.load_unchecked("Papers", paper_rows)
    db.load_unchecked("Paper_Authors", paper_authors)
    db.load_unchecked("Paper_Keywords", paper_keywords)
    db.load_unchecked("Paper_References", paper_references)
    report.counts["Papers"] = len(paper_rows)
    report.counts["Paper_Authors"] = len(paper_authors)
    report.counts["Paper_Keywords"] = len(paper_keywords)
    report.counts["Paper_References"] = len(paper_references)
    report.counts["Conferences"] = len(conference_ids)
    report.counts["Institutions"] = len(institution_ids)

    problems = db.validate_integrity()
    if problems:  # pragma: no cover - generator invariant
        raise AssertionError(f"generator produced inconsistent data: {problems[:3]}")
    return db, report


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _load_conferences(db: Database) -> dict[str, int]:
    ids: dict[str, int] = {}
    for index, (acronym, title) in enumerate(names.CONFERENCES, start=1):
        db.insert("Conferences", {"id": index, "acronym": acronym, "title": title})
        ids[acronym] = index
    return ids


def _load_institutions(db: Database) -> dict[str, int]:
    ids: dict[str, int] = {}
    for index, (name, country) in enumerate(names.INSTITUTIONS, start=1):
        db.insert(
            "Institutions", {"id": index, "name": name, "country": country}
        )
        ids[name] = index
    return ids


def _make_authors(
    config: AcademicConfig,
    rng: random.Random,
    institution_ids: dict[str, int],
    report: GenerationReport,
) -> tuple[list[dict[str, Any]], dict[str, int]]:
    rows: list[dict[str, Any]] = []
    by_name: dict[str, int] = {}
    next_id = 1
    for name, institution in ANCHOR_AUTHORS:
        rows.append(
            {"id": next_id, "name": name,
             "institution_id": institution_ids[institution]}
        )
        by_name[name] = next_id
        report.anchor_author_ids[name] = next_id
        next_id += 1

    institutions = list(institution_ids.values())
    # Skewed institution sizes: a few large groups, a long tail.
    weights = [1.0 / (rank + 1) ** 0.6 for rank in range(len(institutions))]
    cumulative = _cumulative(weights)
    total = config.resolved_authors()
    used_names = set(by_name)
    while next_id <= total:
        name = _fresh_person_name(rng, used_names)
        used_names.add(name)
        institution = institutions[_sample(cumulative, rng)]
        rows.append({"id": next_id, "name": name, "institution_id": institution})
        by_name[name] = next_id
        next_id += 1
    return rows, by_name


def _fix_country_majorities(
    rng: random.Random,
    author_rows: list[dict[str, Any]],
    institution_ids: dict[str, int],
) -> None:
    """Make Task 5's answers unique: KAIST must strictly lead South Korea and
    Technical University of Munich must strictly lead Germany, by reassigning
    a few tail authors if needed."""
    for country_leader in ("KAIST", "Technical University of Munich"):
        leader_id = institution_ids[country_leader]
        country = {
            "KAIST": "South Korea",
            "Technical University of Munich": "Germany",
        }[country_leader]
        peer_ids = {
            institution_ids[name]
            for name, ctry in names.INSTITUTIONS
            if ctry == country
        }
        counts = {institution: 0 for institution in peer_ids}
        for row in author_rows:
            if row["institution_id"] in counts:
                counts[row["institution_id"]] += 1
        rival_max = max(
            (count for institution, count in counts.items()
             if institution != leader_id),
            default=0,
        )
        deficit = rival_max + 1 - counts[leader_id]
        if deficit <= 0:
            continue
        # Reassign authors from outside the country into the leader.
        candidates = [
            row for row in author_rows[len(ANCHOR_AUTHORS):]
            if row["institution_id"] not in peer_ids
        ]
        for row in rng.sample(candidates, deficit):
            row["institution_id"] = leader_id


def _make_papers(
    config: AcademicConfig,
    rng: random.Random,
    conference_ids: dict[str, int],
    author_rows: list[dict[str, Any]],
    author_ids_by_name: dict[str, int],
    report: GenerationReport,
) -> tuple[list[dict], list[dict], list[dict], list[dict]]:
    total = max(config.papers, len(_ANCHOR_PAPERS))
    years = list(range(config.start_year, config.end_year + 1))
    conference_list = list(conference_ids.values())
    conference_weights = _cumulative(
        [1.0 / (rank + 1) ** 0.3 for rank in range(len(conference_list))]
    )
    # Zipf popularity over a seed-dependent permutation of the pool, so no
    # semantic block of the keyword list (e.g. the 'user ...' keywords) is
    # systematically the most frequent.
    keyword_order = list(range(len(names.KEYWORDS)))
    rng.shuffle(keyword_order)
    keyword_weights = _cumulative(
        [1.0 / (rank + 1) ** 0.8 for rank in range(len(names.KEYWORDS))]
    )

    # Draft all papers (title, conference, year) before id assignment so ids
    # can be handed out in year order (citations then point backwards).
    drafts: list[dict[str, Any]] = []
    used_titles: set[str] = set()
    for anchor in _ANCHOR_PAPERS:
        drafts.append(
            {
                "title": anchor["title"],
                "conference_id": conference_ids[anchor["conference"]],
                "year": anchor["year"],
                "page_start": anchor["page_start"],
                "page_end": anchor["page_end"],
                "anchor": anchor,
            }
        )
        used_titles.add(anchor["title"].lower())
    while len(drafts) < total:
        title = _fresh_title(rng, used_titles)
        used_titles.add(title.lower())
        year = years[_year_index(rng, len(years))]
        page_start = rng.randint(1, 1800)
        drafts.append(
            {
                "title": title,
                "conference_id": conference_list[
                    _sample(conference_weights, rng)
                ],
                "year": year,
                "page_start": page_start,
                "page_end": page_start + rng.randint(3, 14),
                "anchor": None,
            }
        )
    drafts.sort(key=lambda d: (d["year"], d["title"]))

    paper_rows: list[dict[str, Any]] = []
    paper_authors: list[dict[str, Any]] = []
    paper_keywords: list[dict[str, Any]] = []
    paper_references: list[dict[str, Any]] = []

    # Preferential-attachment pools: each assignment feeds back into the
    # pool, yielding the long-tailed productivity / citation distributions
    # real bibliographies show.
    author_pool: list[int] = [row["id"] for row in author_rows]
    citation_pool: list[int] = []
    generic_authors = [
        row["id"] for row in author_rows[len(ANCHOR_AUTHORS):]
    ] or [row["id"] for row in author_rows]

    for paper_id, draft in enumerate(drafts, start=1):
        paper_rows.append(
            {
                "id": paper_id,
                "conference_id": draft["conference_id"],
                "title": draft["title"],
                "year": draft["year"],
                "page_start": draft["page_start"],
                "page_end": draft["page_end"],
            }
        )
        anchor = draft["anchor"]
        if anchor is not None:
            report.anchor_paper_ids[anchor["title"]] = paper_id
            team = [author_ids_by_name[name] for name in anchor["authors"]]
            while len(team) < len(anchor["authors"]) + anchor["extra_authors"]:
                candidate = rng.choice(generic_authors)
                if candidate not in team:
                    team.append(candidate)
            keywords = list(anchor["keywords"])
        else:
            team_size = min(
                1 + _geometric(rng, 0.45), config.max_authors_per_paper
            )
            team = []
            while len(team) < team_size:
                candidate = rng.choice(author_pool)
                if candidate not in team:
                    team.append(candidate)
            keyword_count = rng.randint(config.min_keywords, config.max_keywords)
            keywords = []
            while len(keywords) < keyword_count:
                keyword = names.KEYWORDS[
                    keyword_order[_sample(keyword_weights, rng)]
                ]
                if keyword not in keywords:
                    keywords.append(keyword)
        for position, author_id in enumerate(team, start=1):
            paper_authors.append(
                {
                    "paper_id": paper_id,
                    "author_id": author_id,
                    "author_position": position,
                }
            )
            author_pool.append(author_id)
        for keyword in keywords:
            paper_keywords.append({"paper_id": paper_id, "keyword": keyword})

        if citation_pool:
            reference_count = min(
                _geometric(rng, 0.18), config.max_references, paper_id - 1
            )
            cited: set[int] = set()
            attempts = 0
            while len(cited) < reference_count and attempts < reference_count * 8:
                attempts += 1
                candidate = rng.choice(citation_pool)
                if candidate != paper_id:
                    cited.add(candidate)
            for ref in sorted(cited):
                paper_references.append(
                    {"paper_id": paper_id, "ref_paper_id": ref}
                )
                citation_pool.append(ref)
        citation_pool.append(paper_id)

    return paper_rows, paper_authors, paper_keywords, paper_references


def _fresh_person_name(rng: random.Random, used: set[str]) -> str:
    for _ in range(200):
        name = f"{rng.choice(names.FIRST_NAMES)} {rng.choice(names.LAST_NAMES)}"
        if name not in used:
            return name
    # Pool exhausted: disambiguate with a middle initial.
    while True:
        name = (
            f"{rng.choice(names.FIRST_NAMES)} "
            f"{chr(rng.randint(65, 90))}. {rng.choice(names.LAST_NAMES)}"
        )
        if name not in used:
            return name


def _fresh_title(rng: random.Random, used: set[str]) -> str:
    while True:
        pattern = rng.choice(names.TITLE_PATTERNS)
        title = pattern.format(
            A=rng.choice(names.TITLE_TOPICS),
            B=rng.choice(names.TITLE_CONTEXTS),
            C=rng.choice(names.TITLE_FLAVORS),
        )
        title = title[0].upper() + title[1:]
        if title.lower() not in used:
            return title


def _year_index(rng: random.Random, count: int) -> int:
    """Later years are denser (publication growth), mildly."""
    draw = rng.random() ** 0.7
    return min(int(draw * count), count - 1)


def _geometric(rng: random.Random, p: float) -> int:
    """Number of failures before first success; cheap skewed counts."""
    count = 0
    while rng.random() > p and count < 60:
        count += 1
    return count


def _cumulative(weights: list[float]) -> list[float]:
    out: list[float] = []
    total = 0.0
    for weight in weights:
        total += weight
        out.append(total)
    return out


def _sample(cumulative: list[float], rng: random.Random) -> int:
    draw = rng.random() * cumulative[-1]
    return bisect.bisect_left(cumulative, draw)
