"""Dataset generators for the reproduction.

* :mod:`repro.datasets.academic` — the paper's DBLP/ACM-style corpus
  (Figure 3 schema), seeded and scalable to the evaluation's 38k papers;
* :mod:`repro.datasets.toy` — the exact instances of Figure 8's walkthrough;
* :mod:`repro.datasets.movies` — a second domain proving schema independence.
"""

from repro.datasets.academic import (
    AcademicConfig,
    GenerationReport,
    academic_schema,
    default_categorical_attributes,
    default_label_overrides,
    generate_academic,
    paper_scale_config,
)
from repro.datasets.movies import (
    MoviesConfig,
    generate_movies,
    movies_categorical_attributes,
    movies_label_overrides,
    movies_schema,
)
from repro.datasets.toy import FIGURE8_EXPECTED, generate_toy

__all__ = [
    "AcademicConfig",
    "FIGURE8_EXPECTED",
    "GenerationReport",
    "MoviesConfig",
    "academic_schema",
    "default_categorical_attributes",
    "default_label_overrides",
    "generate_academic",
    "generate_movies",
    "generate_toy",
    "movies_categorical_attributes",
    "movies_label_overrides",
    "movies_schema",
    "paper_scale_config",
]
