"""A tiny deterministic database replicating Figure 8's walkthrough.

Figure 8 traces the execution of the Korea/SIGMOD query over a handful of
instances: conference 1 is SIGMOD; papers 1, 4, 5, 8 are recent SIGMOD
papers; Bob (author 1), Mark (4) and Chad (11) work at Korean institutions
(3 and 8); the final ETable lists Bob with papers {1, 4, 5, 8}, Mark with
{4, 8} and Chad with {4}. The ids below match the figure so the bench can
print the same intermediate graph relation and final table.
"""

from __future__ import annotations

from repro.relational.database import Database
from repro.datasets.academic import academic_schema

# (id, acronym, title)
_CONFERENCES = [
    (1, "SIGMOD", "ACM SIGMOD Conference"),
    (2, "KDD", "ACM SIGKDD Conference"),
]

# (id, name, country) — institutions 3 and 8 are the Korean ones.
_INSTITUTIONS = [
    (1, "University of Michigan", "USA"),
    (2, "University of Washington", "USA"),
    (3, "KAIST", "South Korea"),
    (4, "Stanford University", "USA"),
    (7, "ETH Zurich", "Switzerland"),
    (8, "Seoul National University", "South Korea"),
    (9, "Tsinghua University", "China"),
    (14, "University of Tokyo", "Japan"),
    (20, "INRIA", "France"),
    (21, "TU Delft", "Netherlands"),
]

# (id, name, institution_id) — ids follow the figure's Autho/Insti table.
_AUTHORS = [
    (1, "Bob", 3),
    (2, "Ann", 1),
    (3, "Joe", 3),
    (4, "Mark", 3),
    (5, "Eve", 7),
    (6, "Sam", 7),
    (7, "Ada", 2),
    (11, "Chad", 8),
]

# (id, conference_id, title, year, page_start, page_end)
# Papers 1, 4, 5, 8 are the SIGMOD > 2005 set of the figure.
_PAPERS = [
    (1, 1, "Query steering for data exploration", 2006, 100, 111),
    (3, 1, "Early visions of usable databases", 2003, 13, 24),
    (4, 1, "Enriched tables for entity browsing", 2009, 200, 212),
    (5, 1, "Direct manipulation of join results", 2012, 300, 311),
    (7, 2, "Mining co-authorship cliques", 2011, 40, 52),
    (8, 1, "Schema-aware result presentation", 2014, 400, 413),
    (11, 2, "Graph views of relational data", 2013, 77, 90),
]

# (paper_id, author_id, author_position) — matches the figure's pairs.
_PAPER_AUTHORS = [
    (1, 1, 1),
    (1, 2, 2),
    (3, 2, 1),
    (4, 1, 1),
    (4, 4, 2),
    (4, 11, 3),
    (5, 1, 1),
    (7, 5, 1),
    (7, 6, 2),
    (8, 1, 1),
    (8, 4, 2),
    (11, 7, 1),
]

_PAPER_KEYWORDS = [
    (1, "data exploration"),
    (1, "user interfaces"),
    (3, "usability"),
    (4, "browsing"),
    (4, "user interfaces"),
    (5, "direct manipulation"),
    (7, "graph mining"),
    (8, "design"),
    (11, "graph databases"),
]

_PAPER_REFERENCES = [
    (4, 1),
    (4, 3),
    (5, 1),
    (5, 4),
    (8, 4),
    (8, 5),
    (11, 7),
]


def generate_toy() -> Database:
    """Build the Figure 8 database (deterministic, no randomness)."""
    db = Database("toy")
    for schema in academic_schema():
        db.create_table(schema)
    for row in _CONFERENCES:
        db.insert("Conferences", row)
    for row in _INSTITUTIONS:
        db.insert("Institutions", row)
    for row in _AUTHORS:
        db.insert("Authors", row)
    for row in _PAPERS:
        db.insert("Papers", row)
    for row in _PAPER_AUTHORS:
        db.insert("Paper_Authors", row)
    for row in _PAPER_KEYWORDS:
        db.insert("Paper_Keywords", row)
    for row in _PAPER_REFERENCES:
        db.insert("Paper_References", row)
    return db


# The expected final ETable of Figure 8: author name -> set of paper ids.
FIGURE8_EXPECTED = {
    "Bob": {1, 4, 5, 8},
    "Mark": {4, 8},
    "Chad": {4},
}
