"""A second domain: a movie database.

ETable's translation procedure is schema-agnostic; this dataset exercises it
on a different mini-world (movies, people, studios, genres) with the same
structural ingredients as Figure 3 — FK one-to-many links (studio,
director), a many-to-many relationship with an edge attribute (cast with
billing position), a multivalued attribute (genres), and categorical
attributes (decade, country) — so the examples and tests can show the
pipeline working beyond the paper's academic corpus.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.relational.database import Database
from repro.relational.datatypes import DataType
from repro.relational.schema import ForeignKey, table_schema

_STUDIOS = [
    ("Pinnacle Pictures", "USA"),
    ("Aurora Films", "USA"),
    ("Riverlight Studio", "UK"),
    ("Meridian Cinema", "France"),
    ("Hanok Entertainment", "South Korea"),
    ("Sakura Screenworks", "Japan"),
    ("NordFilm", "Sweden"),
    ("Cine del Sol", "Spain"),
]

_GENRES = [
    "drama", "comedy", "thriller", "science fiction", "documentary",
    "animation", "romance", "horror", "adventure", "mystery", "western",
    "musical",
]

_FIRST = ["Avery", "Blake", "Casey", "Dana", "Ellis", "Frankie", "Gray",
          "Harper", "Indie", "Jules", "Kendall", "Logan", "Marlowe", "Noor",
          "Oakley", "Parker", "Quinn", "Reese", "Sage", "Tatum"]
_LAST = ["Ashford", "Bellamy", "Calloway", "Drummond", "Ellington",
         "Fairbanks", "Grantham", "Holloway", "Irving", "Jennings",
         "Kingsley", "Lockwood", "Merriweather", "Northcott", "Osborne",
         "Pemberton", "Quimby", "Ravenscroft", "Sinclair", "Thornbury"]

_TITLE_A = ["Midnight", "Silent", "Golden", "Broken", "Electric", "Paper",
            "Winter", "Crimson", "Hollow", "Violet", "Last", "First"]
_TITLE_B = ["Harbor", "Orchard", "Signal", "Parade", "Lantern", "Meridian",
            "Compass", "Garden", "Station", "Mirror", "Archive", "Voyage"]
_TITLE_C = ["of Glass", "in Winter", "at Dawn", "of Echoes", "in Exile",
            "of the North", "under Neon", "beyond the River", "", "", "", ""]


@dataclass
class MoviesConfig:
    movies: int = 160
    people: int = 120
    start_year: int = 1972
    end_year: int = 2015
    seed: int = 11


def movies_schema() -> list:
    return [
        table_schema(
            "Studios",
            [("id", DataType.INTEGER), ("name", DataType.TEXT),
             ("country", DataType.TEXT)],
            primary_key="id",
        ),
        table_schema(
            "People",
            [("id", DataType.INTEGER), ("name", DataType.TEXT)],
            primary_key="id",
        ),
        table_schema(
            "Movies",
            [("id", DataType.INTEGER), ("title", DataType.TEXT),
             ("year", DataType.INTEGER), ("decade", DataType.TEXT),
             ("studio_id", DataType.INTEGER),
             ("director_id", DataType.INTEGER)],
            primary_key="id",
            foreign_keys=[
                ForeignKey("studio_id", "Studios", "id"),
                ForeignKey("director_id", "People", "id"),
            ],
        ),
        table_schema(
            "Movie_Cast",
            [("movie_id", DataType.INTEGER), ("person_id", DataType.INTEGER),
             ("billing", DataType.INTEGER)],
            primary_key=["movie_id", "person_id"],
            foreign_keys=[
                ForeignKey("movie_id", "Movies", "id"),
                ForeignKey("person_id", "People", "id"),
            ],
        ),
        table_schema(
            "Movie_Genres",
            [("movie_id", DataType.INTEGER), ("genre", DataType.TEXT)],
            primary_key=["movie_id", "genre"],
            foreign_keys=[ForeignKey("movie_id", "Movies", "id")],
        ),
    ]


def movies_categorical_attributes() -> dict[str, list[str]]:
    return {"Movies": ["decade"], "Studios": ["country"]}


def movies_label_overrides() -> dict[str, str]:
    return {"Movies": "title", "People": "name", "Studios": "name"}


def generate_movies(config: MoviesConfig | None = None) -> Database:
    """Generate the movie database; deterministic for a fixed config."""
    config = config or MoviesConfig()
    rng = random.Random(config.seed)
    db = Database("movies")
    for schema in movies_schema():
        db.create_table(schema)

    for index, (name, country) in enumerate(_STUDIOS, start=1):
        db.insert("Studios", {"id": index, "name": name, "country": country})

    used_people: set[str] = set()
    for person_id in range(1, config.people + 1):
        while True:
            name = f"{rng.choice(_FIRST)} {rng.choice(_LAST)}"
            if name not in used_people:
                used_people.add(name)
                break
        db.insert("People", {"id": person_id, "name": name})

    used_titles: set[str] = set()
    for movie_id in range(1, config.movies + 1):
        while True:
            title = (
                f"{rng.choice(_TITLE_A)} {rng.choice(_TITLE_B)} "
                f"{rng.choice(_TITLE_C)}"
            ).strip()
            if title not in used_titles:
                used_titles.add(title)
                break
        year = rng.randint(config.start_year, config.end_year)
        decade = f"{(year // 10) * 10}s"
        db.insert(
            "Movies",
            {
                "id": movie_id,
                "title": title,
                "year": year,
                "decade": decade,
                "studio_id": rng.randint(1, len(_STUDIOS)),
                "director_id": rng.randint(1, config.people),
            },
        )
        cast_size = rng.randint(2, 6)
        cast = rng.sample(range(1, config.people + 1), cast_size)
        for billing, person_id in enumerate(cast, start=1):
            db.insert(
                "Movie_Cast",
                {"movie_id": movie_id, "person_id": person_id,
                 "billing": billing},
            )
        for genre in rng.sample(_GENRES, rng.randint(1, 3)):
            db.insert("Movie_Genres", {"movie_id": movie_id, "genre": genre})
    return db
