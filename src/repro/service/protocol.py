"""The navigation service's versioned JSON wire protocol.

The paper's ETable prototype is a client–server web application (Sections 6
and 9): the browser sends user actions, the server re-executes the query
pattern and returns the enriched table. This module is that contract, made
explicit and transport-independent:

* :class:`Request` / :class:`Response` — versioned envelope dataclasses;
* serializers for every domain object that crosses the wire — conditions,
  query patterns, entity references, history entries, and paginated
  ETables — each with an exact inverse (``*_from_json``), so the journal,
  the HTTP frontend, and the REPL's ``export`` command share one
  serialization path;
* :func:`apply_action` — the single dispatch point mapping wire-level
  action names onto :class:`~repro.core.session.EtableSession` methods.

Action names mirror the paper's Figure 9 interface components:

====================  ==================================================
action                Figure 9 / Section 6.1 counterpart
====================  ==================================================
``tables``            component 1, the default table list
``open``              U1 — click a node type
``seeall``            U2 — click a cell's reference-count badge
``filter``            U3 — the column-header filter popup
``nfilter``           U3 on a neighbor column ("translated to subqueries")
``pivot``             U4 — the pivot button of a reference column
``single``            click one entity reference (Figure 2a)
``sort``/``hide``/    the additional presentation actions of Section 6.1
``show``
``rank``              column ranking (Section 9, future work #3)
``revert``            component 4, the history panel's revert
``history``           component 4, the history panel itself
``plan``              the execution plan (engine introspection; under
                      ``engine="parallel"`` it includes worker counts and
                      recent per-partition join timings, and under
                      ``engine="incremental"`` the chosen action-delta
                      kind — select / extend / reorder / replay — plus the
                      session's delta-hit rate)
``etable``/``export`` component 3, the enriched table (paginated)
====================  ==================================================

All payloads are plain JSON types, so any HTTP client — or a file on disk,
which is exactly what the action journal is — can speak the protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import InvalidAction, ProtocolError
from repro.tgm.conditions import (
    AndCondition,
    AttributeCompare,
    AttributeIn,
    AttributeLike,
    Condition,
    LabelLike,
    NeighborSatisfies,
    NodeIn,
    NodeIs,
    NotCondition,
    OrCondition,
)
from repro.tgm.instance_graph import InstanceGraph
from repro.core.etable import ColumnKind, ColumnSpec, ETable, ETableRow, EntityRef
from repro.core.query_pattern import PatternEdge, PatternNode, QueryPattern
from repro.core.session import EtableSession, HistoryEntry

PROTOCOL_VERSION = 1


# ----------------------------------------------------------------------
# Envelopes
# ----------------------------------------------------------------------
def _envelope_version(payload: dict[str, Any], what: str) -> int:
    """Validate an envelope's ``version`` field strictly.

    ``True == 1`` in Python, so a boolean would slip through a plain
    ``!=`` comparison; the isinstance pair rejects it along with strings,
    floats, and anything else JSON can smuggle into the field.
    """
    version = payload.get("version", PROTOCOL_VERSION)
    if not isinstance(version, int) or isinstance(version, bool):
        raise ProtocolError(
            f"'version' must be an integer, got {version!r}"
        )
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported {what} version {version!r} "
            f"(this server speaks {PROTOCOL_VERSION})"
        )
    return version


def _optional_str(payload: dict[str, Any], name: str) -> str | None:
    value = payload.get(name)
    if value is not None and not isinstance(value, str):
        raise ProtocolError(f"{name!r} must be a string when present")
    return value


_REQUEST_FIELDS = frozenset({
    "version", "action", "params", "session_id", "request_id", "auth_token",
})


@dataclass(frozen=True)
class Request:
    """One wire request: an action name plus JSON params.

    ``auth_token`` carries the per-session bearer token the manager mints
    at ``create_session`` time when it runs with ``require_auth``; the HTTP
    frontends lift it out of the ``Authorization`` header into this field,
    so the manager's check is transport-independent.
    """

    action: str
    params: dict[str, Any] = field(default_factory=dict)
    session_id: str | None = None
    request_id: str | None = None
    auth_token: str | None = None
    version: int = PROTOCOL_VERSION

    def to_json(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "version": self.version,
            "action": self.action,
            "params": dict(self.params),
        }
        if self.session_id is not None:
            payload["session_id"] = self.session_id
        if self.request_id is not None:
            payload["request_id"] = self.request_id
        if self.auth_token is not None:
            payload["auth_token"] = self.auth_token
        return payload

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "Request":
        if not isinstance(payload, dict):
            raise ProtocolError("request must be a JSON object")
        unknown = set(payload) - _REQUEST_FIELDS
        if unknown:
            raise ProtocolError(
                f"unknown request field(s): {', '.join(sorted(unknown))}"
            )
        version = _envelope_version(payload, "protocol")
        action = payload.get("action")
        if not isinstance(action, str) or not action:
            raise ProtocolError("request needs a non-empty 'action' string")
        params = payload.get("params", {})
        if not isinstance(params, dict):
            raise ProtocolError("'params' must be a JSON object")
        return cls(
            action=action,
            params=params,
            session_id=_optional_str(payload, "session_id"),
            request_id=_optional_str(payload, "request_id"),
            auth_token=_optional_str(payload, "auth_token"),
            version=version,
        )


@dataclass(frozen=True)
class Response:
    """One wire response: success with a result, or failure with an error.

    ``error_type`` classifies failures machine-readably (snake-cased from
    the raising :class:`~repro.errors.ReproError` subclass, e.g.
    ``unknown_session``, ``invalid_action``) so transports can map them —
    the HTTP frontend turns ``unknown_session`` into a 404.
    """

    ok: bool
    result: Any = None
    error: str | None = None
    error_type: str | None = None
    session_id: str | None = None
    request_id: str | None = None
    version: int = PROTOCOL_VERSION

    def to_json(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"version": self.version, "ok": self.ok}
        if self.ok:
            payload["result"] = self.result
        else:
            payload["error"] = self.error
            if self.error_type is not None:
                payload["error_type"] = self.error_type
        if self.session_id is not None:
            payload["session_id"] = self.session_id
        if self.request_id is not None:
            payload["request_id"] = self.request_id
        return payload

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "Response":
        if not isinstance(payload, dict):
            raise ProtocolError("response must be a JSON object")
        version = _envelope_version(payload, "protocol")
        ok = payload.get("ok")
        if not isinstance(ok, bool):
            raise ProtocolError("response needs a boolean 'ok' field")
        if not ok and not isinstance(payload.get("error"), str):
            raise ProtocolError(
                "a failure response needs an 'error' string"
            )
        return cls(
            ok=ok,
            result=payload.get("result"),
            error=_optional_str(payload, "error"),
            error_type=_optional_str(payload, "error_type"),
            session_id=_optional_str(payload, "session_id"),
            request_id=_optional_str(payload, "request_id"),
            version=version,
        )

    @classmethod
    def success(cls, result: Any, request: Request | None = None,
                session_id: str | None = None) -> "Response":
        return cls(
            ok=True,
            result=result,
            session_id=session_id
            or (request.session_id if request else None),
            request_id=request.request_id if request else None,
        )

    @classmethod
    def failure(cls, error: str | Exception,
                request: Request | None = None,
                session_id: str | None = None) -> "Response":
        error_type = None
        if isinstance(error, Exception):
            error_type = _snake_case(type(error).__name__)
        return cls(
            ok=False,
            error=str(error),
            error_type=error_type,
            session_id=session_id
            or (request.session_id if request else None),
            request_id=request.request_id if request else None,
        )


def _snake_case(name: str) -> str:
    out = []
    for index, char in enumerate(name):
        if char.isupper() and index and not name[index - 1].isupper():
            out.append("_")
        out.append(char.lower())
    return "".join(out)


def _error_classes() -> dict[str, type]:
    from repro import errors as errors_module

    return {
        _snake_case(name): obj
        for name, obj in vars(errors_module).items()
        if isinstance(obj, type)
        and issubclass(obj, errors_module.ReproError)
    }


def exception_from_response(response: Response) -> Exception:
    """Rehydrate a failure response into its typed exception.

    The fleet router forwards requests to worker processes over the wire;
    when a worker replies with a failure envelope, the router must raise
    the *same* exception type the worker raised so frontends keep mapping
    it to the right HTTP status (``unknown_session`` -> 404, and so on).
    Unknown ``error_type`` values degrade to :class:`ServiceError`.
    """
    from repro.errors import ServiceError

    if response.ok:
        raise ValueError("exception_from_response needs a failure response")
    error_class = _error_classes().get(response.error_type or "")
    if error_class is None:
        error_class = ServiceError
    return error_class(response.error or "unspecified worker failure")


# ----------------------------------------------------------------------
# Fleet worker-control envelopes
# ----------------------------------------------------------------------
# The fleet router and its worker processes share the session wire
# protocol for user traffic; control-plane traffic (drain, rebalance,
# resume, shutdown) rides this second envelope on the same socket. The
# discriminator is the "control" key: a line with it is a WorkerControl,
# any other line is a Request. Replies are ordinary Response envelopes.

CONTROL_OPS = (
    "ping",       # liveness + identity
    "stats",      # the worker manager's stats payload
    "token",      # a session's bearer token (resuming it if needed)
    "resume",     # eagerly resurrect the listed sessions from journals
    "release",    # close the listed sessions (journals kept: handoff)
    "rebalance",  # close every session that no longer hashes here
    "drain",      # close all sessions, flush journals (pre-restart)
    "shutdown",   # drain, then exit the worker process
)

_CONTROL_FIELDS = frozenset({"version", "control", "args", "request_id"})


@dataclass(frozen=True)
class WorkerControl:
    """One router->worker control request.

    ``op`` names the operation (one of :data:`CONTROL_OPS`); ``args``
    carries its JSON parameters (session id lists, ring membership).
    These envelopes never leave the loopback sockets between the router
    and its workers — they are not part of the public HTTP surface.
    """

    op: str
    args: dict[str, Any] = field(default_factory=dict)
    request_id: str | None = None
    version: int = PROTOCOL_VERSION

    def to_json(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "version": self.version,
            "control": self.op,
            "args": dict(self.args),
        }
        if self.request_id is not None:
            payload["request_id"] = self.request_id
        return payload

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "WorkerControl":
        if not isinstance(payload, dict):
            raise ProtocolError("control envelope must be a JSON object")
        unknown = set(payload) - _CONTROL_FIELDS
        if unknown:
            raise ProtocolError(
                f"unknown control field(s): {', '.join(sorted(unknown))}"
            )
        version = _envelope_version(payload, "worker-control")
        op = payload.get("control")
        if op not in CONTROL_OPS:
            raise ProtocolError(
                f"unknown control op {op!r}; known: {', '.join(CONTROL_OPS)}"
            )
        args = payload.get("args", {})
        if not isinstance(args, dict):
            raise ProtocolError("control 'args' must be a JSON object")
        return cls(
            op=op,
            args=args,
            request_id=_optional_str(payload, "request_id"),
            version=version,
        )


# ----------------------------------------------------------------------
# Condition serialization
# ----------------------------------------------------------------------
def condition_to_json(condition: Condition) -> dict[str, Any]:
    """Serialize any built-in condition; raises for unknown types."""
    if isinstance(condition, AttributeCompare):
        return {"kind": "compare", "attribute": condition.attribute,
                "op": condition.op, "value": condition.value}
    if isinstance(condition, AttributeLike):
        return {"kind": "like", "attribute": condition.attribute,
                "pattern": condition.pattern, "negate": condition.negate}
    if isinstance(condition, AttributeIn):
        return {"kind": "in", "attribute": condition.attribute,
                "values": list(condition.values)}
    if isinstance(condition, NodeIs):
        return {"kind": "node_is", "node_id": condition.node_id,
                "label": condition.label}
    if isinstance(condition, NodeIn):
        return {"kind": "node_in", "node_ids": sorted(condition.node_ids)}
    if isinstance(condition, LabelLike):
        return {"kind": "label_like", "pattern": condition.pattern}
    if isinstance(condition, NeighborSatisfies):
        return {"kind": "neighbor", "edge_type": condition.edge_type,
                "inner": condition_to_json(condition.inner)}
    if isinstance(condition, AndCondition):
        return {"kind": "and",
                "operands": [condition_to_json(c) for c in condition.operands]}
    if isinstance(condition, OrCondition):
        return {"kind": "or",
                "operands": [condition_to_json(c) for c in condition.operands]}
    if isinstance(condition, NotCondition):
        return {"kind": "not", "operand": condition_to_json(condition.operand)}
    raise ProtocolError(
        f"condition type {type(condition).__name__!r} is not serializable"
    )


def condition_from_json(payload: dict[str, Any]) -> Condition:
    if not isinstance(payload, dict) or "kind" not in payload:
        raise ProtocolError("a condition payload needs a 'kind' field")
    kind = payload["kind"]
    try:
        if kind == "compare":
            return AttributeCompare(payload["attribute"], payload["op"],
                                    payload["value"])
        if kind == "like":
            return AttributeLike(payload["attribute"], payload["pattern"],
                                 negate=bool(payload.get("negate", False)))
        if kind == "in":
            return AttributeIn(payload["attribute"], tuple(payload["values"]))
        if kind == "node_is":
            return NodeIs(int(payload["node_id"]),
                          label=payload.get("label", ""))
        if kind == "node_in":
            return NodeIn(int(i) for i in payload["node_ids"])
        if kind == "label_like":
            return LabelLike(payload["pattern"])
        if kind == "neighbor":
            return NeighborSatisfies(payload["edge_type"],
                                     condition_from_json(payload["inner"]))
        if kind == "and":
            return AndCondition(tuple(
                condition_from_json(c) for c in payload["operands"]))
        if kind == "or":
            return OrCondition(tuple(
                condition_from_json(c) for c in payload["operands"]))
        if kind == "not":
            return NotCondition(condition_from_json(payload["operand"]))
    except KeyError as error:
        raise ProtocolError(
            f"condition of kind {kind!r} is missing field {error}"
        ) from None
    raise ProtocolError(f"unknown condition kind {kind!r}")


# ----------------------------------------------------------------------
# Pattern / history / entity-ref serialization
# ----------------------------------------------------------------------
def pattern_to_json(pattern: QueryPattern) -> dict[str, Any]:
    return {
        "primary": pattern.primary_key,
        "nodes": [
            {
                "key": node.key,
                "type": node.type_name,
                "conditions": [condition_to_json(c) for c in node.conditions],
            }
            for node in pattern.nodes
        ],
        "edges": [
            {"edge_type": edge.edge_type, "source": edge.source_key,
             "target": edge.target_key}
            for edge in pattern.edges
        ],
    }


def pattern_from_json(payload: dict[str, Any]) -> QueryPattern:
    try:
        nodes = tuple(
            PatternNode(
                key=node["key"],
                type_name=node["type"],
                conditions=tuple(
                    condition_from_json(c) for c in node.get("conditions", ())
                ),
            )
            for node in payload["nodes"]
        )
        edges = tuple(
            PatternEdge(edge_type=edge["edge_type"], source_key=edge["source"],
                        target_key=edge["target"])
            for edge in payload.get("edges", ())
        )
        return QueryPattern(primary_key=payload["primary"], nodes=nodes,
                            edges=edges)
    except (KeyError, TypeError) as error:
        raise ProtocolError(f"malformed pattern payload: {error}") from None


def entity_ref_to_json(ref: EntityRef) -> dict[str, Any]:
    return {"node_id": ref.node_id, "type": ref.type_name, "label": ref.label}


def entity_ref_from_json(payload: dict[str, Any]) -> EntityRef:
    return EntityRef(node_id=payload["node_id"], type_name=payload["type"],
                     label=payload["label"])


def history_entry_to_json(entry: HistoryEntry) -> dict[str, Any]:
    return {
        "description": entry.description,
        "operators": list(entry.operators),
        "pattern": pattern_to_json(entry.pattern),
        "sort": list(entry.sort) if entry.sort is not None else None,
        "hidden": sorted(entry.hidden),
    }


def history_entry_from_json(payload: dict[str, Any]) -> HistoryEntry:
    sort = payload.get("sort")
    return HistoryEntry(
        description=payload["description"],
        operators=tuple(payload.get("operators", ())),
        pattern=pattern_from_json(payload["pattern"]),
        sort=(sort[0], bool(sort[1])) if sort is not None else None,
        hidden=frozenset(payload.get("hidden", ())),
    )


def history_to_json(entries: list[HistoryEntry]) -> list[dict[str, Any]]:
    return [history_entry_to_json(entry) for entry in entries]


def history_from_json(payload: list[dict[str, Any]]) -> list[HistoryEntry]:
    return [history_entry_from_json(entry) for entry in payload]


# ----------------------------------------------------------------------
# ETable serialization (paginated)
# ----------------------------------------------------------------------
def etable_to_json(
    etable: ETable,
    offset: int = 0,
    limit: int | None = None,
    max_refs: int | None = None,
) -> dict[str, Any]:
    """Serialize an enriched table, paginated over rows.

    ``offset``/``limit`` slice the presented rows (the paper's interface
    paginates; matching is always complete). ``max_refs`` truncates each
    reference cell's *list* while keeping its exact ``count`` — the
    reference-count badge of Figure 1 stays truthful even when a cell is
    abbreviated on the wire.
    """
    try:
        rows = etable.page_rows(offset, limit)
    except InvalidAction as error:
        raise ProtocolError(str(error)) from None
    out_rows = []
    for row in rows:
        cells: dict[str, Any] = {}
        for column in etable.columns:
            if column.kind is ColumnKind.BASE:
                continue
            refs = row.refs(column.key)
            shown = refs if max_refs is None else refs[:max_refs]
            cells[column.key] = {
                "count": len(refs),
                "refs": [entity_ref_to_json(ref) for ref in shown],
            }
        out_rows.append({
            "node_id": row.node_id,
            "attributes": dict(row.attributes),
            "cells": cells,
        })
    return {
        "version": PROTOCOL_VERSION,
        "primary_type": etable.primary_type,
        "pattern": pattern_to_json(etable.pattern),
        "columns": [
            {
                "kind": column.kind.name.lower(),
                "key": column.key,
                "display": column.display,
                "type": column.type_name,
                "hidden": column.key in etable.hidden_columns,
            }
            for column in etable.columns
        ],
        "total_rows": len(etable),
        "offset": offset,
        "returned": len(out_rows),
        "rows": out_rows,
    }


_COLUMN_KINDS = {kind.name.lower(): kind for kind in ColumnKind}


def etable_from_json(payload: dict[str, Any], graph: InstanceGraph) -> ETable:
    """Rebuild an :class:`ETable` from a full (unpaginated, untruncated)
    serialization — the inverse of :func:`etable_to_json`.

    Only the serialized rows are restored; a paginated payload yields a
    partial table (``total_rows`` tells the client what it is missing).
    """
    pattern = pattern_from_json(payload["pattern"])
    columns = [
        ColumnSpec(
            kind=_COLUMN_KINDS[column["kind"]],
            key=column["key"],
            display=column["display"],
            type_name=column.get("type"),
        )
        for column in payload["columns"]
    ]
    rows = [
        ETableRow(
            node_id=row["node_id"],
            attributes=dict(row["attributes"]),
            cells={
                key: [entity_ref_from_json(ref) for ref in cell["refs"]]
                for key, cell in row["cells"].items()
            },
        )
        for row in payload["rows"]
    ]
    etable = ETable(pattern, columns, rows, graph)
    etable.hidden_columns = {
        column["key"] for column in payload["columns"] if column["hidden"]
    }
    return etable


# ----------------------------------------------------------------------
# Delta-frame streaming messages
# ----------------------------------------------------------------------
# The SSE stream (`GET /v1/sessions/<id>/stream`) pushes one frame per
# mutating action instead of having clients re-fetch the full page. A
# frame is versioned independently of the request envelope so the stream
# wire format can evolve without breaking request/response clients.

STREAM_VERSION = 1

FRAME_KINDS = ("snapshot", "delta", "closed")


@dataclass(frozen=True)
class DeltaFrame:
    """One ETable stream frame.

    ``kind="snapshot"`` carries the complete unpaginated
    :func:`etable_to_json` payload in ``etable`` (``None`` when the session
    has no open table) and is sent on subscribe, on structural changes
    (new primary type or column set — open / pivot / see-all), and as the
    backpressure fallback when a coalesced delta would outweigh it.

    ``kind="delta"`` carries only what changed: ``removed`` lists dropped
    row node ids, ``rows`` the full serialization of added *and* changed
    rows, ``order`` the complete new display order (node ids — tiny, and it
    makes reordering actions like sort free to encode), ``pattern`` the new
    query pattern, and ``columns`` the column specs when a hidden-flag
    toggled. ``pattern``/``columns``/``order`` use ``None`` to mean
    *unchanged from the client's current state* (for ``order``, note
    ``None`` is distinct from ``()`` — an explicitly empty table); fields
    carrying no information (``None`` markers, empty ``removed``/``rows``)
    are omitted from the wire form entirely.

    ``coalesced`` counts the mutating actions folded into this frame: 1 for
    a live frame, >1 when backpressure merged a backlog, 0 for the
    subscribe-time snapshot (no action produced it) — clients can sum it to
    know how many actions their folded state reflects.

    ``kind="closed"`` is the terminal frame: the session was closed or
    evicted server-side and no further frames will arrive. ``action``
    carries the lifecycle event (``"closed"`` or ``"evicted"``);
    ``coalesced`` is 0 (no user action produced it). Folding it is a
    no-op — the client keeps its last state and tears the stream down.
    """

    seq: int
    kind: str
    action: str | None = None
    coalesced: int = 1
    etable: dict[str, Any] | None = None
    pattern: dict[str, Any] | None = None
    columns: tuple[dict[str, Any], ...] | None = None
    removed: tuple[int, ...] = ()
    rows: tuple[dict[str, Any], ...] = ()
    order: tuple[int, ...] | None = ()
    total_rows: int = 0
    version: int = STREAM_VERSION


def frame_to_json(frame: DeltaFrame) -> dict[str, Any]:
    """Serialize a stream frame; exact inverse of :func:`frame_from_json`."""
    payload: dict[str, Any] = {
        "version": frame.version,
        "seq": frame.seq,
        "kind": frame.kind,
        "action": frame.action,
        "coalesced": frame.coalesced,
    }
    if frame.kind == "snapshot":
        payload["etable"] = frame.etable
    elif frame.kind == "delta":
        if frame.pattern is not None:
            payload["pattern"] = frame.pattern
        if frame.columns is not None:
            payload["columns"] = list(frame.columns)
        if frame.removed:
            payload["removed"] = list(frame.removed)
        if frame.rows:
            payload["rows"] = list(frame.rows)
        if frame.order is not None:
            payload["order"] = list(frame.order)
        payload["total_rows"] = frame.total_rows
    return payload


def _frame_int(payload: dict[str, Any], name: str, minimum: int = 0) -> int:
    value = payload.get(name)
    if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
        raise ProtocolError(
            f"frame field {name!r} must be an integer >= {minimum}, "
            f"got {value!r}"
        )
    return value


def _frame_ids(payload: dict[str, Any], name: str) -> tuple[int, ...]:
    value = payload.get(name, [])
    if not isinstance(value, list) or any(
        not isinstance(i, int) or isinstance(i, bool) for i in value
    ):
        raise ProtocolError(
            f"frame field {name!r} must be a list of node ids"
        )
    return tuple(value)


def frame_from_json(payload: dict[str, Any]) -> DeltaFrame:
    """Parse and validate a stream frame, rejecting unknown versions and
    malformed envelopes with a typed :class:`ProtocolError`."""
    if not isinstance(payload, dict):
        raise ProtocolError("frame must be a JSON object")
    version = payload.get("version")
    if not isinstance(version, int) or isinstance(version, bool):
        raise ProtocolError(f"frame 'version' must be an integer, got {version!r}")
    if version != STREAM_VERSION:
        raise ProtocolError(
            f"unsupported stream version {version!r} "
            f"(this client speaks {STREAM_VERSION})"
        )
    kind = payload.get("kind")
    if kind not in FRAME_KINDS:
        raise ProtocolError(
            f"unknown frame kind {kind!r}; known: {', '.join(FRAME_KINDS)}"
        )
    action = _optional_str(payload, "action")
    seq = _frame_int(payload, "seq")
    coalesced = _frame_int(payload, "coalesced")
    etable = None
    pattern = None
    columns: tuple[dict[str, Any], ...] | None = None
    removed: tuple[int, ...] = ()
    rows: tuple[dict[str, Any], ...] = ()
    order: tuple[int, ...] = ()
    total_rows = 0
    if kind == "snapshot":
        etable = payload.get("etable")
        if etable is not None and not isinstance(etable, dict):
            raise ProtocolError("snapshot frame 'etable' must be an object")
    elif kind == "delta":
        pattern = payload.get("pattern")
        if pattern is not None and not isinstance(pattern, dict):
            raise ProtocolError("delta frame 'pattern' must be an object")
        raw_columns = payload.get("columns")
        if raw_columns is not None and (
            not isinstance(raw_columns, list)
            or any(not isinstance(c, dict) for c in raw_columns)
        ):
            raise ProtocolError(
                "delta frame 'columns' must be a list of objects"
            )
        raw_rows = payload.get("rows", [])
        if not isinstance(raw_rows, list) or any(
            not isinstance(r, dict) for r in raw_rows
        ):
            raise ProtocolError("delta frame 'rows' must be a list of objects")
        columns = tuple(raw_columns) if raw_columns is not None else None
        removed = _frame_ids(payload, "removed")
        rows = tuple(raw_rows)
        # Absent means "order unchanged"; an explicit empty list means an
        # empty table — the two fold differently, so the absence survives.
        order = _frame_ids(payload, "order") if "order" in payload else None
        total_rows = _frame_int(payload, "total_rows")
    return DeltaFrame(
        seq=seq,
        kind=kind,
        action=action,
        coalesced=coalesced,
        etable=etable,
        pattern=pattern,
        columns=columns,
        removed=removed,
        rows=rows,
        order=order,
        total_rows=total_rows,
        version=version,
    )


# ----------------------------------------------------------------------
# Action dispatch
# ----------------------------------------------------------------------
def _table_summary(session: EtableSession) -> dict[str, Any]:
    etable = session.current
    assert etable is not None
    return {
        "primary_type": etable.primary_type,
        "total_rows": len(etable),
        "columns": len(etable.columns),
        "history_length": len(session.history),
    }


def _build_condition(params: dict[str, Any]) -> Condition:
    condition = params.get("condition")
    if condition is None:
        raise ProtocolError("this action needs a 'condition' param")
    return condition_from_json(condition)


def _int_param(params: dict[str, Any], name: str, default: int | None = None,
               minimum: int | None = None) -> int:
    value = params.get(name, default)
    if value is None or isinstance(value, bool):
        raise ProtocolError(f"this action needs an integer {name!r} param")
    try:
        value = int(value)
    except (TypeError, ValueError):
        raise ProtocolError(
            f"param {name!r} must be an integer, got {params[name]!r}"
        ) from None
    if minimum is not None and value < minimum:
        raise ProtocolError(f"param {name!r} must be >= {minimum}, got {value}")
    return value


def _act_tables(session: EtableSession, params: dict) -> dict:
    return {"tables": session.default_table_list()}


def _act_open(session: EtableSession, params: dict) -> dict:
    type_name = params.get("type")
    if not isinstance(type_name, str):
        raise ProtocolError("open needs a 'type' string param")
    session.open(type_name)
    return _table_summary(session)


def _act_filter(session: EtableSession, params: dict) -> dict:
    session.filter(_build_condition(params))
    return _table_summary(session)


def _act_nfilter(session: EtableSession, params: dict) -> dict:
    column = params.get("column")
    if not isinstance(column, str):
        raise ProtocolError("nfilter needs a 'column' string param")
    session.filter_by_neighbor(column, _build_condition(params))
    return _table_summary(session)


def _act_pivot(session: EtableSession, params: dict) -> dict:
    column = params.get("column")
    if not isinstance(column, str):
        raise ProtocolError("pivot needs a 'column' string param")
    session.pivot(column)
    return _table_summary(session)


def _resolve_row(session: EtableSession, params: dict) -> ETableRow:
    etable = session.current
    if etable is None:
        raise InvalidAction("no ETable is open; call open() first")
    if "row_node_id" in params:
        return etable.row_for_node(_int_param(params, "row_node_id"))
    if "row" in params:
        return etable.row(_int_param(params, "row"))
    raise ProtocolError("this action needs a 'row' index or 'row_node_id'")


def _act_single(session: EtableSession, params: dict) -> dict:
    if "node_id" in params:
        session.single(_int_param(params, "node_id"))
        return _table_summary(session)
    row = _resolve_row(session, params)
    column = params.get("column")
    if not isinstance(column, str):
        raise ProtocolError("single needs a 'node_id', or a row + 'column'")
    spec = session.resolve_column(column)
    refs = row.refs(spec.key)
    if not refs:
        raise InvalidAction(f"cell {spec.display!r} is empty")
    index = _int_param(params, "ref", default=0)
    if not 0 <= index < len(refs):
        raise InvalidAction(
            f"reference index {index} out of range (0..{len(refs) - 1})"
        )
    session.single(refs[index])
    return _table_summary(session)


def _act_seeall(session: EtableSession, params: dict) -> dict:
    row = _resolve_row(session, params)
    column = params.get("column")
    if not isinstance(column, str):
        raise ProtocolError("seeall needs a 'column' string param")
    session.see_all(row, column)
    return _table_summary(session)


def _act_sort(session: EtableSession, params: dict) -> dict:
    column = params.get("column")
    if not isinstance(column, str):
        raise ProtocolError("sort needs a 'column' string param")
    session.sort(column, descending=bool(params.get("descending", False)))
    return _table_summary(session)


def _act_hide(session: EtableSession, params: dict) -> dict:
    column = params.get("column")
    if not isinstance(column, str):
        raise ProtocolError("hide needs a 'column' string param")
    session.hide_column(column)
    return _table_summary(session)


def _act_show(session: EtableSession, params: dict) -> dict:
    column = params.get("column")
    if not isinstance(column, str):
        raise ProtocolError("show needs a 'column' string param")
    session.show_column(column)
    return _table_summary(session)


def _act_rank(session: EtableSession, params: dict) -> dict:
    from repro.core.column_ranking import select_columns

    etable = session.current
    if etable is None:
        raise InvalidAction("no ETable is open; call open() first")
    keep = _int_param(params, "keep", default=8, minimum=1)
    ranking = select_columns(etable, keep=keep)
    return {
        "ranking": [
            {
                "key": item.column.key,
                "display": item.column.display,
                "score": item.score,
                "explain": item.explain(),
            }
            for item in ranking
        ],
        "kept": keep,
    }


def _act_revert(session: EtableSession, params: dict) -> dict:
    if "index" not in params:
        raise ProtocolError("revert needs an 'index' param (0-based)")
    session.revert(_int_param(params, "index"))
    return _table_summary(session)


def _act_plan(session: EtableSession, params: dict) -> dict:
    return {"text": session.explain_plan()}


def _act_history(session: EtableSession, params: dict) -> dict:
    return {
        "lines": session.history_lines(),
        "entries": history_to_json(session.history),
    }


def _act_etable(session: EtableSession, params: dict) -> dict:
    etable = session.current
    if etable is None:
        raise InvalidAction("no ETable is open; call open() first")
    limit = params.get("limit")
    payload: dict[str, Any] = {
        "etable": etable_to_json(
            etable,
            offset=_int_param(params, "offset", default=0, minimum=0),
            limit=(_int_param(params, "limit", minimum=0)
                   if limit is not None else None),
            max_refs=(_int_param(params, "max_refs", minimum=0)
                      if params.get("max_refs") is not None else None),
        )
    }
    if params.get("include_history"):
        payload["history"] = history_to_json(session.history)
    return payload


# Action name -> handler. "export" is an alias of "etable": the REPL's
# export command and the HTTP GET both serialize through this one path.
ACTIONS: dict[str, Callable[[EtableSession, dict], dict]] = {
    "tables": _act_tables,
    "open": _act_open,
    "filter": _act_filter,
    "nfilter": _act_nfilter,
    "pivot": _act_pivot,
    "single": _act_single,
    "seeall": _act_seeall,
    "sort": _act_sort,
    "hide": _act_hide,
    "show": _act_show,
    "rank": _act_rank,
    "revert": _act_revert,
    "plan": _act_plan,
    "history": _act_history,
    "etable": _act_etable,
    "export": _act_etable,
}

# Actions that change session state and therefore must be journaled for
# replay. "rank" is included: select_columns hides the losing columns in
# place, and hidden-column state carries forward into later actions.
MUTATING_ACTIONS = frozenset({
    "open", "filter", "nfilter", "pivot", "single", "seeall",
    "sort", "hide", "show", "rank", "revert",
})


def apply_action(session: EtableSession, action: str,
                 params: dict[str, Any] | None = None) -> dict[str, Any]:
    """Apply one wire-level action to a session; returns the result payload.

    Raises :class:`ProtocolError` for malformed requests and lets the
    session's own :class:`~repro.errors.ReproError` subclasses propagate
    for domain failures — callers turn both into failure responses.
    """
    handler = ACTIONS.get(action)
    if handler is None:
        raise ProtocolError(
            f"unknown action {action!r}; known: {', '.join(sorted(ACTIONS))}"
        )
    return handler(session, params or {})
