"""Durable per-session action journal with cheap replay.

Browsing sessions are state machines driven by small, deterministic
actions; persisting the *actions* (not the results) makes session state
durable at almost no cost. Each accepted mutating action is appended to an
append-only JSON-lines file; on restart the manager replays the file
through the same :func:`repro.service.protocol.apply_action` dispatch that
served it live, and every re-executed pattern rides the shared prefix-reuse
cache — recovery is a sequence of cache hits plus delta joins, not a cold
re-computation.

Record shapes (one JSON object per line)::

    {"type": "meta", "version": 1, "session_id": "...", "crc": 3735928559}
    {"type": "action", "seq": 3, "action": "filter", "params": {...}, ...}
    {"type": "checkpoint", "seq": 7, "history": [<history entries>], ...}
    {"type": "quota", "used": 9, "window_expires_at": 1754550000.0, ...}

**Every record carries a CRC32.** The trailing ``"crc"`` key checksums
the record's own serialized bytes, so a flipped byte that still parses as
JSON (bit rot, a fault-injected corruption) is caught instead of silently
replayed into a diverged session. Old journals without checksums still
replay — the field is verified only when present. On open, a journal
whose middle is damaged recovers to the longest valid prefix; the
damaged suffix is quarantined to ``<session>.journal.corrupt`` for
forensics rather than deleted.

**Revert truncates.** A revert makes every action after the reverted step
dead weight: replaying them only to revert away from them again would make
the journal — and recovery time — grow forever under the paper's
revert-heavy browsing behavior (Figure 1's history panel). Instead of
appending the revert, the journal is atomically rewritten to a single
*checkpoint* record carrying the full serialized history (which still
contains the revert entries — the user's trail is part of the state).
Replaying a checkpoint restores that exact history list and re-executes
only the final pattern, so a replayed session is bit-identical to the one
that crashed.

**Long sessions compact too.** A session that never reverts would still
grow its journal (and replay cost) without bound, so the manager
checkpoints append-only journals every N mutating actions
(``SessionManager(compact_every=64)``); :attr:`ActionJournal.
actions_since_checkpoint` tracks the trigger across restarts. Compaction
reuses the same atomic write-tmp-then-replace path as reverts: a crash
mid-checkpoint leaves either the complete old journal (plus a stale
``.tmp`` that the next open removes) or the complete new one — never a
half-written state — so recovery is bit-identical either way.

Torn tails are expected: a crash can cut the last line mid-write. Readers
keep every record up to the first undecodable line and ignore the tail, so
a killed session restarts from its last durable action.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.errors import JournalCorrupt
from repro.core.session import EtableSession
from repro.service import faults, protocol

JOURNAL_SUFFIX = ".journal"
JOURNAL_VERSION = 1

# Transient write failures (including injected ones) are retried this
# many times before the error escapes to the manager, which then flips
# the session read-only ("degraded") instead of crashing the worker.
_WRITE_ATTEMPTS = 5


class ActionJournal:
    """Append-only journal of one session's accepted mutating actions."""

    def __init__(self, path: Path | str, session_id: str,
                 fsync: bool = False,
                 auth_token: str | None = None) -> None:
        self.path = Path(path)
        self.session_id = session_id
        self.fsync = fsync
        # The session's bearer token rides in the meta record so a resumed
        # session keeps the token its client already holds. Opening an
        # existing journal recovers the persisted token (overriding the
        # argument); a pre-auth journal keeps the freshly minted one.
        self.auth_token = auth_token
        self.seq = 0
        self._handle = None
        # Mutating actions appended since the last checkpoint (or journal
        # creation): the manager's compaction trigger. Restored on resume by
        # counting action records after the last checkpoint, so the policy
        # holds across restarts.
        self.actions_since_checkpoint = 0
        # A crash between writing the checkpoint tmp file and the atomic
        # replace leaves a stale sibling; the journal itself is still the
        # complete pre-checkpoint state, so drop the leftover.
        stale_tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        if stale_tmp.exists():
            stale_tmp.unlink()
        # Records recovered from an existing file, for the resume path to
        # replay without re-reading the file. If the file was damaged
        # mid-way, ``quarantined`` names the sibling holding the bytes
        # that did not survive recovery.
        self.recovered_records: list[dict[str, Any]] = []
        self.quarantined: Path | None = None
        if self.path.exists():
            records, durable_length, max_seq, corruption = _scan(self.path)
            self.recovered_records = records
            self.seq = max_seq
            for record in records:
                if record.get("type") == "action":
                    self.actions_since_checkpoint += 1
                elif record.get("type") == "checkpoint":
                    self.actions_since_checkpoint = 0
                elif record.get("type") == "meta" and record.get("auth_token"):
                    self.auth_token = str(record["auth_token"])
            if corruption is not None:
                # Mid-file damage (not a torn tail): resume from the
                # longest valid prefix, but keep the damaged suffix on
                # disk for forensics instead of silently deleting it.
                raw = self.path.read_bytes()
                self.quarantined = Path(str(self.path) + ".corrupt")
                self.quarantined.write_bytes(raw[durable_length:])
            # A crash can leave a torn (or garbled) tail after the last
            # durable record. Appending onto it would weld the next record
            # to the partial line and silently lose it on the following
            # restart — truncate to the durable boundary first.
            if durable_length < self.path.stat().st_size:
                with self.path.open("r+b") as handle:
                    handle.truncate(durable_length)
            self._handle = self.path.open("a", encoding="utf-8")
            if not records:
                # Nothing durable survived (even the meta record was
                # damaged): restart the journal with a well-formed head.
                self._write(self._meta_record())
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
            self._write(self._meta_record())

    # ------------------------------------------------------------------
    def record_action(self, action: str, params: dict[str, Any]) -> None:
        """Append one accepted action (call only after it succeeded)."""
        self.seq += 1
        self.actions_since_checkpoint += 1
        self._write({"type": "action", "seq": self.seq, "action": action,
                     "params": params})

    def record_quota(self, used: int, window_expires_at: float) -> None:
        """Persist quota bookkeeping for a session leaving memory.

        Written when a throttled session is closed, evicted, or drained so
        that resurrection (same process or another fleet worker) does not
        grant a fresh quota window. Wall-clock expiry, not ``monotonic()``:
        the record must mean the same thing in a different process.
        """
        self._write({"type": "quota", "used": int(used),
                     "window_expires_at": float(window_expires_at)})

    def checkpoint(self, history_payload: list[dict[str, Any]]) -> None:
        """Atomically replace the journal with one checkpoint record.

        Called after a successful revert — and periodically by the
        manager's compaction policy: the serialized history (which includes
        any revert entries) *is* the session state, so the journal shrinks
        to meta + checkpoint instead of growing forever.
        """
        self.seq += 1
        tmp_path = self.path.with_suffix(self.path.suffix + ".tmp")
        meta_line = _encode(self._meta_record()) + "\n"
        ckpt_line = _encode({"type": "checkpoint", "seq": self.seq,
                             "history": history_payload}) + "\n"
        last_error: OSError | None = None
        for _ in range(_WRITE_ATTEMPTS):
            try:
                with tmp_path.open("w", encoding="utf-8") as handle:
                    handle.write(meta_line)
                    handle.write(ckpt_line)
                    faults.fire("journal.write")
                    handle.flush()
                    faults.fire("journal.fsync")
                    os.fsync(handle.fileno())
                last_error = None
                break
            except OSError as error:
                # "w" mode rewrites the tmp file whole on the next try,
                # so a failed attempt leaves nothing to clean up yet.
                last_error = error
        if last_error is not None:
            try:
                tmp_path.unlink()
            except OSError:
                pass
            raise last_error
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        try:
            os.replace(tmp_path, self.path)
            # Only a *durable* checkpoint resets the compaction trigger; a
            # failed replace leaves the old records on disk, so they must
            # still count toward the next attempt.
            self.actions_since_checkpoint = 0
        finally:
            # Reopen even when the replace failed: the journal file is then
            # still the old one, and later appends must keep working.
            self._handle = self.path.open("a", encoding="utf-8")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __del__(self) -> None:
        # Safety net only — the manager closes journals on eviction/close
        # and shutdown(); this keeps an abandoned journal from leaking its
        # handle (and raising ResourceWarning under `python -X dev`).
        try:
            self.close()
        except Exception:  # pragma: no cover - interpreter shutdown
            pass

    # ------------------------------------------------------------------
    def _meta_record(self) -> dict[str, Any]:
        record: dict[str, Any] = {"type": "meta", "version": JOURNAL_VERSION,
                                  "session_id": self.session_id}
        if self.auth_token is not None:
            record["auth_token"] = self.auth_token
        return record

    def _write(self, record: dict[str, Any]) -> None:
        assert self._handle is not None
        line = _encode(record) + "\n"
        last_error: OSError | None = None
        for _ in range(_WRITE_ATTEMPTS):
            durable = os.fstat(self._handle.fileno()).st_size
            try:
                # mangle() is the silent-corruption injection point: the
                # damaged bytes are written *successfully* on purpose, so
                # the CRC path has something realistic to catch later.
                self._handle.write(faults.mangle("journal.write", line))
                faults.fire("journal.write")
                self._handle.flush()
                faults.fire("journal.fsync")
                if self.fsync:
                    os.fsync(self._handle.fileno())
                return
            except OSError as error:
                last_error = error
                self._rewind(durable)
        assert last_error is not None
        raise last_error

    def _rewind(self, durable: int) -> None:
        """Drop whatever a failed append left past the durable boundary.

        Closing the text handle first flushes any buffered partial line
        to the OS, so the byte-level truncate below removes *all* of the
        failed record — retrying then appends onto a clean boundary
        instead of welding onto a half-written line.
        """
        handle, self._handle = self._handle, None
        try:
            if handle is not None:
                handle.close()
        except OSError:
            pass  # the truncate below removes what the flush wrote
        with self.path.open("r+b") as raw:
            raw.truncate(durable)
        self._handle = self.path.open("a", encoding="utf-8")


def _dump(record: dict[str, Any]) -> str:
    return json.dumps(record, separators=(",", ":"), default=str)


def _encode(record: dict[str, Any]) -> str:
    """Serialize ``record`` with a trailing CRC32 over its own bytes.

    The checksum covers the serialization *without* the ``crc`` key; the
    key is spliced in as the last member, so verification is: pop
    ``crc``, re-dump the (insertion-ordered) rest, compare. ``_dump``
    emits ASCII with stable float reprs, which makes that round trip
    byte-exact.
    """
    body = _dump(record)
    crc = zlib.crc32(body.encode("utf-8"))
    if body == "{}":  # no leading comma to splice after
        return f'{{"crc":{crc}}}'
    return f'{body[:-1]},"crc":{crc}}}'


def _crc_ok(record: dict[str, Any]) -> bool:
    """Verify (and strip) a record's checksum; un-checksummed is valid."""
    stored = record.pop("crc", None)
    if stored is None:
        return True  # a pre-checksum journal record: still replayable
    if isinstance(stored, bool) or not isinstance(stored, int):
        return False
    return zlib.crc32(_dump(record).encode("utf-8")) == stored


def _scan(
    path: Path | str,
) -> tuple[list[dict[str, Any]], int, int, tuple[int, str] | None]:
    """One pass over a journal file, tolerant of a torn tail.

    Returns ``(records, durable_byte_length, max_seq, corruption)``:
    every valid record (checksums verified and stripped), the byte
    offset where durable content ends, the highest ``seq`` seen, and —
    when an invalid line is *followed by* decodable content (real
    mid-file damage, not a crash artifact) — a ``(line_number, reason)``
    pair describing it. The lenient recovery path (``ActionJournal``)
    quarantines and continues; the strict readers raise.
    """
    faults.fire("journal.read")
    raw = Path(path).read_bytes()
    lines = raw.split(b"\n")
    # Every element except the last was newline-terminated; the last is
    # either b"" (file ends with a newline) or an unterminated partial
    # line — never durable either way.
    terminated = lines[:-1]
    records: list[dict[str, Any]] = []
    durable_length = 0
    max_seq = 0
    corruption: tuple[int, str] | None = None
    for index, line in enumerate(terminated):
        if not line.strip():
            durable_length += len(line) + 1
            continue
        record: Any = None
        try:
            record = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            record = None
        reason = None
        if not isinstance(record, dict) or "type" not in record:
            reason = f"undecodable record at line {index + 1}"
        elif not _crc_ok(record):  # also strips the crc key
            reason = f"checksum mismatch at line {index + 1}"
        if reason is not None:
            if any(rest.strip() for rest in terminated[index + 1:]):
                corruption = (index + 1, reason)
            # else: garbled final terminated line — an ordinary torn tail
            break
        records.append(record)
        durable_length += len(line) + 1
        try:
            max_seq = max(max_seq, int(record.get("seq", 0)))
        except (TypeError, ValueError):
            pass
    # ``tail`` (an unterminated partial line, if any) is never durable.
    return records, durable_length, max_seq, corruption


def scan_journal(path: Path | str) -> tuple[list[dict[str, Any]], int, int]:
    """Strict scan: mid-file damage raises :class:`JournalCorrupt`.

    Returns ``(records, durable_byte_length, max_seq)`` exactly like the
    pre-checksum format did; a torn/garbled *tail* is still tolerated
    (that is the expected crash signature, not corruption).
    """
    records, durable_length, max_seq, corruption = _scan(path)
    if corruption is not None:
        raise JournalCorrupt(f"{path}: {corruption[1]}")
    return records, durable_length, max_seq


def read_records(path: Path | str, strict: bool = False) -> list[dict[str, Any]]:
    """All decodable records, stopping at a torn tail.

    A truncated or garbled trailing line is the expected signature of a
    crash mid-write and is silently dropped (``strict=True`` raises for it
    instead); garbage *before* later records means real corruption and
    always raises :class:`JournalCorrupt`.
    """
    records, durable_length, _ = scan_journal(path)
    if strict and durable_length < Path(path).stat().st_size:
        raise JournalCorrupt(f"{path}: torn tail after byte {durable_length}")
    return records


def replay_records(session: EtableSession,
                   records: Iterable[dict[str, Any]]) -> int:
    """Re-apply journal records to a fresh session; returns actions applied.

    Checkpoints restore the serialized history wholesale (and re-execute
    only its final pattern); action records go through the exact protocol
    dispatch that produced them. Deterministic by construction: every
    protocol action is a pure function of session state and params.
    """
    applied = 0
    for record in records:
        kind = record.get("type")
        if kind in ("meta", "quota"):
            # Quota records are manager bookkeeping, not session state; the
            # manager's resume path reads them from recovered_records.
            continue
        if kind == "checkpoint":
            session.restore_history(
                protocol.history_from_json(record["history"])
            )
            applied += 1
        elif kind == "action":
            protocol.apply_action(session, record["action"],
                                  record.get("params", {}))
            applied += 1
        else:
            raise JournalCorrupt(f"unknown journal record type {kind!r}")
    return applied


def replay_journal(path: Path | str,
                   make_session: Callable[[], EtableSession]) -> EtableSession:
    """Rebuild a session from its journal file."""
    session = make_session()
    replay_records(session, read_records(path))
    return session
