"""Durable per-session action journal with cheap replay.

Browsing sessions are state machines driven by small, deterministic
actions; persisting the *actions* (not the results) makes session state
durable at almost no cost. Each accepted mutating action is appended to an
append-only JSON-lines file; on restart the manager replays the file
through the same :func:`repro.service.protocol.apply_action` dispatch that
served it live, and every re-executed pattern rides the shared prefix-reuse
cache — recovery is a sequence of cache hits plus delta joins, not a cold
re-computation.

Record shapes (one JSON object per line)::

    {"type": "meta", "version": 1, "session_id": "..."}
    {"type": "action", "seq": 3, "action": "filter", "params": {...}}
    {"type": "checkpoint", "seq": 7, "history": [<history entries>]}
    {"type": "quota", "used": 9, "window_expires_at": 1754550000.0}

**Revert truncates.** A revert makes every action after the reverted step
dead weight: replaying them only to revert away from them again would make
the journal — and recovery time — grow forever under the paper's
revert-heavy browsing behavior (Figure 1's history panel). Instead of
appending the revert, the journal is atomically rewritten to a single
*checkpoint* record carrying the full serialized history (which still
contains the revert entries — the user's trail is part of the state).
Replaying a checkpoint restores that exact history list and re-executes
only the final pattern, so a replayed session is bit-identical to the one
that crashed.

**Long sessions compact too.** A session that never reverts would still
grow its journal (and replay cost) without bound, so the manager
checkpoints append-only journals every N mutating actions
(``SessionManager(compact_every=64)``); :attr:`ActionJournal.
actions_since_checkpoint` tracks the trigger across restarts. Compaction
reuses the same atomic write-tmp-then-replace path as reverts: a crash
mid-checkpoint leaves either the complete old journal (plus a stale
``.tmp`` that the next open removes) or the complete new one — never a
half-written state — so recovery is bit-identical either way.

Torn tails are expected: a crash can cut the last line mid-write. Readers
keep every record up to the first undecodable line and ignore the tail, so
a killed session restarts from its last durable action.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.errors import JournalCorrupt
from repro.core.session import EtableSession
from repro.service import protocol

JOURNAL_SUFFIX = ".journal"
JOURNAL_VERSION = 1


class ActionJournal:
    """Append-only journal of one session's accepted mutating actions."""

    def __init__(self, path: Path | str, session_id: str,
                 fsync: bool = False,
                 auth_token: str | None = None) -> None:
        self.path = Path(path)
        self.session_id = session_id
        self.fsync = fsync
        # The session's bearer token rides in the meta record so a resumed
        # session keeps the token its client already holds. Opening an
        # existing journal recovers the persisted token (overriding the
        # argument); a pre-auth journal keeps the freshly minted one.
        self.auth_token = auth_token
        self.seq = 0
        self._handle = None
        # Mutating actions appended since the last checkpoint (or journal
        # creation): the manager's compaction trigger. Restored on resume by
        # counting action records after the last checkpoint, so the policy
        # holds across restarts.
        self.actions_since_checkpoint = 0
        # A crash between writing the checkpoint tmp file and the atomic
        # replace leaves a stale sibling; the journal itself is still the
        # complete pre-checkpoint state, so drop the leftover.
        stale_tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        if stale_tmp.exists():
            stale_tmp.unlink()
        # Records recovered from an existing file, for the resume path to
        # replay without re-reading the file.
        self.recovered_records: list[dict[str, Any]] = []
        if self.path.exists():
            records, durable_length, max_seq = scan_journal(self.path)
            self.recovered_records = records
            self.seq = max_seq
            for record in records:
                if record.get("type") == "action":
                    self.actions_since_checkpoint += 1
                elif record.get("type") == "checkpoint":
                    self.actions_since_checkpoint = 0
                elif record.get("type") == "meta" and record.get("auth_token"):
                    self.auth_token = str(record["auth_token"])
            # A crash can leave a torn (or garbled) tail after the last
            # durable record. Appending onto it would weld the next record
            # to the partial line and silently lose it on the following
            # restart — truncate to the durable boundary first.
            if durable_length < self.path.stat().st_size:
                with self.path.open("r+b") as handle:
                    handle.truncate(durable_length)
            self._handle = self.path.open("a", encoding="utf-8")
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
            self._write(self._meta_record())

    # ------------------------------------------------------------------
    def record_action(self, action: str, params: dict[str, Any]) -> None:
        """Append one accepted action (call only after it succeeded)."""
        self.seq += 1
        self.actions_since_checkpoint += 1
        self._write({"type": "action", "seq": self.seq, "action": action,
                     "params": params})

    def record_quota(self, used: int, window_expires_at: float) -> None:
        """Persist quota bookkeeping for a session leaving memory.

        Written when a throttled session is closed, evicted, or drained so
        that resurrection (same process or another fleet worker) does not
        grant a fresh quota window. Wall-clock expiry, not ``monotonic()``:
        the record must mean the same thing in a different process.
        """
        self._write({"type": "quota", "used": int(used),
                     "window_expires_at": float(window_expires_at)})

    def checkpoint(self, history_payload: list[dict[str, Any]]) -> None:
        """Atomically replace the journal with one checkpoint record.

        Called after a successful revert — and periodically by the
        manager's compaction policy: the serialized history (which includes
        any revert entries) *is* the session state, so the journal shrinks
        to meta + checkpoint instead of growing forever.
        """
        self.seq += 1
        tmp_path = self.path.with_suffix(self.path.suffix + ".tmp")
        with tmp_path.open("w", encoding="utf-8") as handle:
            handle.write(_dump(self._meta_record()) + "\n")
            handle.write(_dump({"type": "checkpoint", "seq": self.seq,
                                "history": history_payload}) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        try:
            os.replace(tmp_path, self.path)
            # Only a *durable* checkpoint resets the compaction trigger; a
            # failed replace leaves the old records on disk, so they must
            # still count toward the next attempt.
            self.actions_since_checkpoint = 0
        finally:
            # Reopen even when the replace failed: the journal file is then
            # still the old one, and later appends must keep working.
            self._handle = self.path.open("a", encoding="utf-8")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __del__(self) -> None:
        # Safety net only — the manager closes journals on eviction/close
        # and shutdown(); this keeps an abandoned journal from leaking its
        # handle (and raising ResourceWarning under `python -X dev`).
        try:
            self.close()
        except Exception:  # pragma: no cover - interpreter shutdown
            pass

    # ------------------------------------------------------------------
    def _meta_record(self) -> dict[str, Any]:
        record: dict[str, Any] = {"type": "meta", "version": JOURNAL_VERSION,
                                  "session_id": self.session_id}
        if self.auth_token is not None:
            record["auth_token"] = self.auth_token
        return record

    def _write(self, record: dict[str, Any]) -> None:
        assert self._handle is not None
        self._handle.write(_dump(record) + "\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())


def _dump(record: dict[str, Any]) -> str:
    return json.dumps(record, separators=(",", ":"), default=str)


def scan_journal(path: Path | str) -> tuple[list[dict[str, Any]], int, int]:
    """One pass over a journal file, tolerant of a torn tail.

    Returns ``(records, durable_byte_length, max_seq)``: every decodable
    record, the byte offset where durable content ends (everything after
    it is a torn/garbled tail from a crash mid-write), and the highest
    ``seq`` seen. An undecodable line *followed by* decodable records means
    real corruption — not a crash artifact — and raises
    :class:`JournalCorrupt`.
    """
    raw = Path(path).read_bytes()
    lines = raw.split(b"\n")
    # Every element except the last was newline-terminated; the last is
    # either b"" (file ends with a newline) or an unterminated partial
    # line — never durable either way.
    terminated = lines[:-1]
    records: list[dict[str, Any]] = []
    durable_length = 0
    max_seq = 0
    for index, line in enumerate(terminated):
        if not line.strip():
            durable_length += len(line) + 1
            continue
        record: Any = None
        try:
            record = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            record = None
        if not isinstance(record, dict) or "type" not in record:
            if any(rest.strip() for rest in terminated[index + 1:]):
                raise JournalCorrupt(
                    f"{path}: undecodable record at line {index + 1}"
                )
            break  # garbled final terminated line: treat as torn tail
        records.append(record)
        durable_length += len(line) + 1
        try:
            max_seq = max(max_seq, int(record.get("seq", 0)))
        except (TypeError, ValueError):
            pass
    # ``tail`` (an unterminated partial line, if any) is never durable.
    return records, durable_length, max_seq


def read_records(path: Path | str, strict: bool = False) -> list[dict[str, Any]]:
    """All decodable records, stopping at a torn tail.

    A truncated or garbled trailing line is the expected signature of a
    crash mid-write and is silently dropped (``strict=True`` raises for it
    instead); garbage *before* later records means real corruption and
    always raises :class:`JournalCorrupt`.
    """
    records, durable_length, _ = scan_journal(path)
    if strict and durable_length < Path(path).stat().st_size:
        raise JournalCorrupt(f"{path}: torn tail after byte {durable_length}")
    return records


def replay_records(session: EtableSession,
                   records: Iterable[dict[str, Any]]) -> int:
    """Re-apply journal records to a fresh session; returns actions applied.

    Checkpoints restore the serialized history wholesale (and re-execute
    only its final pattern); action records go through the exact protocol
    dispatch that produced them. Deterministic by construction: every
    protocol action is a pure function of session state and params.
    """
    applied = 0
    for record in records:
        kind = record.get("type")
        if kind in ("meta", "quota"):
            # Quota records are manager bookkeeping, not session state; the
            # manager's resume path reads them from recovered_records.
            continue
        if kind == "checkpoint":
            session.restore_history(
                protocol.history_from_json(record["history"])
            )
            applied += 1
        elif kind == "action":
            protocol.apply_action(session, record["action"],
                                  record.get("params", {}))
            applied += 1
        else:
            raise JournalCorrupt(f"unknown journal record type {kind!r}")
    return applied


def replay_journal(path: Path | str,
                   make_session: Callable[[], EtableSession]) -> EtableSession:
    """Rebuild a session from its journal file."""
    session = make_session()
    replay_records(session, read_records(path))
    return session
