"""Per-worker circuit breaker: closed -> open -> half-open -> closed."""

from __future__ import annotations

import threading
import time

__all__ = ["CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Trip after ``failure_threshold`` consecutive failures.

    While open, :meth:`allow` refuses calls until ``reset_timeout``
    seconds have passed, then admits exactly one half-open trial; a
    success closes the breaker, a failure re-opens it (and restarts the
    timeout clock). ``record_failure`` returns ``True`` on each
    transition *into* the open state so the owner can count trips.

    The clock is injectable (``time.monotonic`` by default) so the
    open->half-open transition is unit-testable without sleeping.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 5.0,
        clock=time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED  # guarded-by: self._lock
        self._failures = 0  # guarded-by: self._lock
        self._opened_at = 0.0  # guarded-by: self._lock
        self.opens = 0  # guarded-by: self._lock

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May a call proceed right now?"""
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self._clock() - self._opened_at >= self.reset_timeout:
                    self._state = HALF_OPEN
                    return True  # the one half-open trial
                return False
            return False  # HALF_OPEN: a trial is already in flight

    def record_success(self) -> None:
        with self._lock:
            self._state = CLOSED
            self._failures = 0

    def record_failure(self) -> bool:
        """Count one failure; True if this call opened the breaker."""
        with self._lock:
            self._failures += 1
            should_open = (
                self._state == HALF_OPEN
                or self._failures >= self.failure_threshold
            )
            if should_open and self._state != OPEN:
                self._state = OPEN
                self._opened_at = self._clock()
                self.opens += 1
                return True
            if self._state == OPEN:
                self._opened_at = self._clock()  # stay open, restart clock
            return False

    def stats(self) -> dict:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._failures,
                "opens": self.opens,
            }
