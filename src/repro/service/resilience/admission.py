"""Admission control: shed load instead of queueing it unboundedly."""

from __future__ import annotations

import threading

__all__ = ["AdmissionControl"]


class AdmissionControl:
    """A bounded in-flight counter for an HTTP frontend.

    ``try_acquire`` admits a request unless ``max_inflight`` are already
    being served; the frontend turns a refusal into 503 + ``Retry-After:
    <retry_after>`` with a typed ``overloaded`` error. ``max_inflight=None``
    (the default) admits everything, so wiring the control in is free
    until an operator opts into a cap.
    """

    def __init__(self, max_inflight: int | None = None, retry_after: float = 1.0):
        if max_inflight is not None and max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.max_inflight = max_inflight
        self.retry_after = retry_after
        self._lock = threading.Lock()
        self._inflight = 0  # guarded-by: self._lock
        self.shed = 0  # guarded-by: self._lock
        self.peak_inflight = 0  # guarded-by: self._lock

    def try_acquire(self) -> bool:
        """Admit one request; False means shed it (and count the shed)."""
        with self._lock:
            if (
                self.max_inflight is not None
                and self._inflight >= self.max_inflight
            ):
                self.shed += 1
                return False
            self._inflight += 1
            if self._inflight > self.peak_inflight:
                self.peak_inflight = self._inflight
            return True

    def release(self) -> None:
        with self._lock:
            if self._inflight > 0:
                self._inflight -= 1

    def stats(self) -> dict:
        with self._lock:
            return {
                "max_inflight": self.max_inflight,
                "inflight": self._inflight,
                "peak_inflight": self.peak_inflight,
                "shed": self.shed,
                "retry_after": self.retry_after,
            }
