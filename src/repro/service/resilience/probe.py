"""Active health probing: notice dead workers before a request does."""

from __future__ import annotations

import threading

__all__ = ["HealthProbe"]


class HealthProbe:
    """Run ``probe()`` every ``interval`` seconds on a daemon thread.

    The callable owns the actual sweep (ping every worker, update
    breakers, evict the dead); this class owns only the lifecycle and the
    counters, so it stays unit-testable with a plain lambda. Exceptions
    from the probe are counted, never propagated — a failing sweep must
    not kill the loop that would notice the failure healing.
    """

    def __init__(self, probe, interval: float = 5.0, name: str = "repro-health-probe"):
        self._probe = probe
        self._interval = interval
        self._name = name
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self.sweeps = 0  # guarded-by: self._lock
        self.errors = 0  # guarded-by: self._lock

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name=self._name, daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                self._probe()
            except Exception:  # noqa: BLE001 - counted, loop must survive
                with self._lock:
                    self.errors += 1
            with self._lock:
                self.sweeps += 1

    def stats(self) -> dict:
        with self._lock:
            return {
                "interval": self._interval,
                "sweeps": self.sweeps,
                "errors": self.errors,
            }
