"""Reusable resilience policies for the navigation service.

The fleet's failure handling is policy, not scattered ad-hoc recovery:

* :class:`RetryPolicy` — bounded retries with exponential backoff and
  full jitter, under a per-call deadline budget;
* :class:`CircuitBreaker` — per-worker closed/open/half-open gate on
  consecutive transport failures;
* :class:`HealthProbe` — a background sweep that pings workers so death
  is noticed before a user request trips over it;
* :class:`AdmissionControl` — a bounded in-flight cap for the HTTP
  frontends (shed with 503 + ``Retry-After`` instead of queueing).

All four are transport-agnostic and deterministic enough to unit-test
without a fleet (seeded RNG, injectable clock, plain callables).
"""

from repro.service.resilience.admission import AdmissionControl
from repro.service.resilience.breaker import CircuitBreaker
from repro.service.resilience.probe import HealthProbe
from repro.service.resilience.retry import RetryPolicy

__all__ = [
    "AdmissionControl",
    "CircuitBreaker",
    "HealthProbe",
    "RetryPolicy",
]
