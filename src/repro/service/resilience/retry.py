"""Bounded retry with exponential backoff and full jitter."""

from __future__ import annotations

import random
import threading

__all__ = ["RetryPolicy"]


class RetryPolicy:
    """How many times to retry a failed call, and how long to wait.

    ``delay(attempt)`` implements *full jitter*: a uniform draw over
    ``[0, min(max_delay, base_delay * 2**(attempt-1))]``. Jitter
    decorrelates the retry storms of concurrent callers; the exponential
    ceiling keeps a persistently-failing worker from being hammered.
    ``attempt`` is 1-based (the number of failures observed so far).

    The policy itself is stateless between calls — one instance is safely
    shared by every router thread — except for the RNG, which sits behind
    a lock so seeded runs stay deterministic under contention.
    """

    def __init__(
        self,
        max_attempts: int = 4,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        seed: int | None = None,
        rng: random.Random | None = None,
    ):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self._lock = threading.Lock()
        self._rng = rng if rng is not None else random.Random(seed)  # guarded-by: self._lock

    def delay(self, attempt: int) -> float:
        """Seconds to sleep before retry number ``attempt`` (1-based)."""
        ceiling = min(self.max_delay, self.base_delay * (2 ** max(0, attempt - 1)))
        with self._lock:
            return self._rng.uniform(0.0, ceiling)

    def stats(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "base_delay": self.base_delay,
            "max_delay": self.max_delay,
        }
