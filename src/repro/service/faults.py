"""Deterministic fault injection for chaos-testing the service stack.

The service's failure handling is only trustworthy if failures are a
*testable input*: injected at named points, at controlled probabilities,
from a fixed seed, so a chaos run that passes today reproduces
bit-identically tomorrow. This module is that input. Production code
threads zero-cost hooks through its failure-prone seams::

    faults.fire("journal.write")          # may raise / delay
    data = faults.mangle("journal.write", data)   # may truncate / corrupt

and both are strict no-ops unless an injector is armed — via the
``REPRO_FAULTS`` environment variable or programmatically with
:func:`arm`.

Spec grammar (comma-separated rules)::

    REPRO_FAULTS="journal.write:raise:0.05,router.recv:delay:0.1@2.0"
                  ^point        ^mode ^probability         ^optional arg

* ``raise``    — raise :class:`InjectedFault` (an ``OSError``) at the point;
* ``delay``    — sleep ``arg`` seconds (default 0.05) at the point;
* ``truncate`` — drop a random-length suffix of the data being written;
* ``corrupt``  — flip one character of the data being written.

``raise``/``delay`` apply at :func:`fire` hooks, ``truncate``/``corrupt``
at :func:`mangle` hooks. The seed comes from ``REPRO_FAULTS_SEED``
(default 0) or the ``seed=`` argument. Known points are listed in
:data:`FAULT_POINTS`; unknown names are rejected so a typo cannot
silently arm nothing.
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass

from repro.errors import ServiceError

__all__ = [
    "FAULT_POINTS",
    "FaultInjector",
    "FaultRule",
    "InjectedFault",
    "active",
    "arm",
    "disarm",
    "fire",
    "mangle",
]

FAULT_POINTS = (
    "router.send",
    "router.recv",
    "worker.boot",
    "journal.write",
    "journal.fsync",
    "journal.read",
)

_FIRE_MODES = ("raise", "delay")
_MANGLE_MODES = ("truncate", "corrupt")
_DEFAULT_DELAY = 0.05


class InjectedFault(OSError):
    """An error raised on purpose by an armed fault rule.

    Subclasses ``OSError`` so every ``except OSError`` recovery path in
    the stack treats an injected failure exactly like a real one — the
    whole point of injecting it.
    """


@dataclass(frozen=True)
class FaultRule:
    """One armed rule: ``point:mode:probability[@arg]``."""

    point: str
    mode: str
    probability: float
    arg: float | None = None

    def spec(self) -> str:
        base = f"{self.point}:{self.mode}:{self.probability:g}"
        if self.arg is not None:
            base = f"{base}@{self.arg:g}"
        return base


def _parse_rule(token: str) -> FaultRule:
    parts = token.split(":")
    if len(parts) != 3:
        raise ServiceError(
            f"bad fault rule {token!r}: want point:mode:probability[@arg]"
        )
    point, mode, tail = parts
    if point not in FAULT_POINTS:
        raise ServiceError(
            f"unknown fault point {point!r}: want one of {FAULT_POINTS}"
        )
    if mode not in _FIRE_MODES + _MANGLE_MODES:
        raise ServiceError(
            f"unknown fault mode {mode!r}: want one of "
            f"{_FIRE_MODES + _MANGLE_MODES}"
        )
    arg: float | None = None
    if "@" in tail:
        tail, arg_text = tail.split("@", 1)
        try:
            arg = float(arg_text)
        except ValueError:
            raise ServiceError(
                f"bad fault arg in {token!r}: {arg_text!r} is not a number"
            ) from None
    try:
        probability = float(tail)
    except ValueError:
        raise ServiceError(
            f"bad fault probability in {token!r}: {tail!r} is not a number"
        ) from None
    if not 0.0 <= probability <= 1.0:
        raise ServiceError(
            f"bad fault probability in {token!r}: {probability} not in [0, 1]"
        )
    return FaultRule(point=point, mode=mode, probability=probability, arg=arg)


class FaultInjector:
    """A seeded registry of armed fault rules.

    Thread-safe: the RNG and the fired-counters are shared across router
    threads, frontends, and the worker serve loop, so both live behind
    one lock. Determinism holds per-injector: the same rule spec, seed,
    and call sequence produce the same firings.
    """

    def __init__(self, rules, seed: int = 0):
        self.rules = tuple(rules)
        self.seed = seed
        self._by_point: dict[str, tuple[FaultRule, ...]] = {}
        for rule in self.rules:
            self._by_point[rule.point] = (
                self._by_point.get(rule.point, ()) + (rule,)
            )
        self._lock = threading.Lock()
        self._rng = random.Random(seed)  # guarded-by: self._lock
        self._fired: dict[str, int] = {}  # guarded-by: self._lock

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultInjector":
        rules = [
            _parse_rule(token.strip())
            for token in spec.split(",")
            if token.strip()
        ]
        if not rules:
            raise ServiceError(f"empty fault spec: {spec!r}")
        return cls(rules, seed=seed)

    @classmethod
    def from_env(cls, environ=None) -> "FaultInjector | None":
        environ = os.environ if environ is None else environ
        spec = environ.get("REPRO_FAULTS", "").strip()
        if not spec:
            return None
        return cls.parse(spec, seed=int(environ.get("REPRO_FAULTS_SEED", "0")))

    @property
    def spec(self) -> str:
        """The rule list re-serialized — what a worker spec dict carries."""
        return ",".join(rule.spec() for rule in self.rules)

    def fire(self, point: str) -> None:
        """Maybe raise or delay at ``point``; a no-op for unarmed points."""
        delay = 0.0
        with self._lock:
            for rule in self._by_point.get(point, ()):
                if rule.mode not in _FIRE_MODES:
                    continue
                if self._rng.random() >= rule.probability:
                    continue
                self._count_locked(rule)
                if rule.mode == "raise":
                    raise InjectedFault(f"injected fault at {point}")
                delay += rule.arg if rule.arg is not None else _DEFAULT_DELAY
        if delay:
            time.sleep(delay)

    def mangle(self, point: str, data):
        """Maybe truncate or corrupt ``data`` (str or bytes) at ``point``."""
        with self._lock:
            for rule in self._by_point.get(point, ()):
                if rule.mode not in _MANGLE_MODES:
                    continue
                if not data or self._rng.random() >= rule.probability:
                    continue
                self._count_locked(rule)
                if rule.mode == "truncate":
                    data = data[: self._rng.randrange(len(data))]
                else:
                    index = self._rng.randrange(len(data))
                    if isinstance(data, bytes):
                        flipped = bytes([data[index] ^ 0x20])
                    else:
                        flipped = chr(ord(data[index]) ^ 0x20)
                    data = data[:index] + flipped + data[index + 1 :]
        return data

    # requires-lock
    def _count_locked(self, rule: FaultRule) -> None:
        key = f"{rule.point}:{rule.mode}"
        self._fired[key] = self._fired.get(key, 0) + 1

    def stats(self) -> dict[str, int]:
        """``{"point:mode": fired_count}`` for every rule that ever fired."""
        with self._lock:
            return dict(self._fired)


# ----------------------------------------------------------------------
# Process-wide armed injector. ``fire``/``mangle`` below are the hooks
# production code calls; they are strict no-ops until something arms an
# injector (REPRO_FAULTS in the environment, or arm()).
# ----------------------------------------------------------------------
_ACTIVE: FaultInjector | None = None
_ENV_CHECKED = False
_ARM_LOCK = threading.Lock()


def active() -> FaultInjector | None:
    """The armed injector, lazily loading ``REPRO_FAULTS`` exactly once."""
    global _ACTIVE, _ENV_CHECKED
    with _ARM_LOCK:
        if _ACTIVE is None and not _ENV_CHECKED:
            _ENV_CHECKED = True
            _ACTIVE = FaultInjector.from_env()
        return _ACTIVE


def arm(injector: FaultInjector) -> FaultInjector:
    """Programmatically arm ``injector`` process-wide (wins over env)."""
    global _ACTIVE, _ENV_CHECKED
    with _ARM_LOCK:
        _ENV_CHECKED = True
        _ACTIVE = injector
    return injector


def disarm() -> None:
    """Drop the armed injector; subsequent hooks are no-ops again."""
    global _ACTIVE, _ENV_CHECKED
    with _ARM_LOCK:
        _ENV_CHECKED = True
        _ACTIVE = None


def fire(point: str) -> None:
    if _ACTIVE is None and _ENV_CHECKED:  # fast path: nothing armed
        return
    injector = active()
    if injector is not None:
        injector.fire(point)


def mangle(point: str, data):
    if _ACTIVE is None and _ENV_CHECKED:  # fast path: nothing armed
        return data
    injector = active()
    if injector is None:
        return data
    return injector.mangle(point, data)
