"""The stream hub: bridges manager action threads to SSE subscribers.

Threading model — exactly two sides:

* **Action side** (manager worker threads): :meth:`StreamHub.on_action` is
  registered as a :meth:`SessionManager.add_action_observer` hook and runs
  *under the session lock*, immediately after each accepted mutating
  action. It serializes the session's ETable payload and hands it to the
  event loop with ``call_soon_threadsafe`` — still under the lock, so the
  loop receives payloads in exact action order.
* **Loop side** (the asyncio thread): everything else — frame building,
  subscriber queues, coalescing — runs on the event loop, so none of it
  needs locks. The only shared state is the watcher registry (which
  sessions have subscribers at all), guarded by a plain mutex so the
  action side can skip payload serialization for unwatched sessions.

Backpressure is per subscriber and strictly bounded: each subscriber owns
a deque of at most ``max_queue`` frames. When a slow consumer overflows
it, the whole backlog is coalesced into *one* frame diffing what the
client has against the latest state — and if even that delta would
outweigh a snapshot, the snapshot is sent instead. Memory per subscriber
is therefore O(max_queue + one table), never O(actions missed).
"""

from __future__ import annotations

import asyncio
import threading
from collections import deque
from typing import Any

from repro.core.planner import RowIdentities
from repro.core.session import EtableSession
from repro.service.manager import SessionManager
from repro.service.protocol import DeltaFrame, etable_to_json
from repro.service.stream.frames import (
    FrameSource,
    StreamStats,
    coalesce_frame,
)


class StreamSubscriber:
    """One SSE consumer's bounded frame queue. Loop-thread only."""

    def __init__(self, session_id: str, max_queue: int) -> None:
        self.session_id = session_id
        self.max_queue = max_queue
        # (frame, payload_after) pairs: payload_after is the full state the
        # client will have folded once it receives the frame — the
        # coalescing baseline.
        self.queue: deque[tuple[DeltaFrame, dict[str, Any] | None]] = deque()
        self.event = asyncio.Event()
        self.base_payload: dict[str, Any] | None = None
        self.closed = False

    def push(self, frame: DeltaFrame, payload_after: dict[str, Any] | None,
             stats: StreamStats) -> None:
        if self.closed:
            return
        if len(self.queue) >= self.max_queue:
            # Slow consumer: replace the whole backlog with one frame that
            # takes the client from what it has straight to the latest
            # state. coalesce_frame downgrades to a snapshot when the
            # merged delta would not be smaller.
            actions = frame.coalesced + sum(
                queued.coalesced for queued, _ in self.queue
            )
            merged = coalesce_frame(
                self.base_payload, payload_after, seq=frame.seq,
                action=frame.action, coalesced=actions, stats=stats,
            )
            self.queue.clear()
            self.queue.append((merged, payload_after))
        else:
            self.queue.append((frame, payload_after))
        self.event.set()

    def push_closed(self, frame: DeltaFrame) -> None:
        """Enqueue the terminal frame, bypassing backlog coalescing.

        A closed frame must never be merged away by the slow-consumer
        path — it is the only thing telling the client the session ended —
        and the deque may exceed ``max_queue`` by this one frame.
        """
        if self.closed:
            return
        self.queue.append((frame, self.base_payload))
        self.event.set()

    def pop(self) -> tuple[DeltaFrame, dict[str, Any] | None] | None:
        """Next frame to write; advances the coalescing baseline."""
        if not self.queue:
            self.event.clear()
            return None
        frame, payload_after = self.queue.popleft()
        self.base_payload = payload_after
        return frame, payload_after


class _SessionStream:
    """Loop-side per-session state: one frame source, many subscribers."""

    def __init__(self, stats: StreamStats) -> None:
        self.source = FrameSource(stats)
        self.subscribers: list[StreamSubscriber] = []


class StreamHub:
    """Per-process fan-out of session deltas to SSE subscribers."""

    def __init__(self, manager: SessionManager,
                 loop: asyncio.AbstractEventLoop,
                 max_queue: int = 32) -> None:
        self.manager = manager
        self._loop = loop
        self.max_queue = max_queue
        self.stats = StreamStats()  # loop-thread only
        self._sessions: dict[str, _SessionStream] = {}  # loop-thread only
        self._watch_lock = threading.Lock()
        self._watchers: dict[str, int] = {}  # guarded-by: self._watch_lock
        self._seen_reports: dict[str, int] = {}  # guarded-by: self._watch_lock
        self._closed = False  # guarded-by: self._watch_lock
        manager.add_action_observer(self.on_action)
        manager.add_lifecycle_observer(self.on_session_end)

    # ------------------------------------------------------------------
    # Action side (manager worker threads, under the session lock)
    # ------------------------------------------------------------------
    def on_action(self, session_id: str, action: str,
                  session: EtableSession) -> None:
        with self._watch_lock:
            if self._closed or self._watchers.get(session_id, 0) <= 0:
                return
        payload = (
            etable_to_json(session.current)
            if session.current is not None else None
        )
        identities = self._fresh_identities(session_id, session)
        self._loop.call_soon_threadsafe(
            self._publish, session_id, action, payload, identities
        )

    def on_session_end(self, session_id: str, event: str) -> None:
        """Lifecycle hook: the session was closed or evicted server-side.

        Without this, subscribers of a closed/evicted session would hang
        on ``: ping`` keepalives forever (the bug this PR fixes). Runs on
        the manager's action side; the terminal frame is built and fanned
        out on the loop, like every other frame.
        """
        with self._watch_lock:
            if self._closed or self._watchers.get(session_id, 0) <= 0:
                return
        self._loop.call_soon_threadsafe(
            self._publish_closed, session_id, event
        )

    def _fresh_identities(
        self, session_id: str, session: EtableSession
    ) -> RowIdentities | None:
        """Row identities from the incremental engine, only when *this*
        action produced them (a presentation action leaves the previous
        report in place — detected by object identity, so a stale report
        is never trusted)."""
        executor = getattr(session, "_executor", None)
        report = getattr(executor, "last_report", None)
        if report is None or report.identities is None:
            return None
        with self._watch_lock:
            if self._seen_reports.get(session_id) == id(report):
                return None
            self._seen_reports[session_id] = id(report)
        return report.identities

    # ------------------------------------------------------------------
    # Loop side
    # ------------------------------------------------------------------
    def _publish(self, session_id: str, action: str,
                 payload: dict[str, Any] | None,
                 identities: RowIdentities | None) -> None:
        state = self._sessions.get(session_id)
        if state is None:
            return  # last subscriber left while the callback was in flight
        frame = state.source.frame_for(payload, action=action,
                                       identities=identities)
        for subscriber in list(state.subscribers):
            subscriber.push(frame, payload, self.stats)

    def _publish_closed(self, session_id: str, event: str) -> None:
        state = self._sessions.pop(session_id, None)
        if state is None:
            return  # last subscriber left while the callback was in flight
        frame = state.source.closed(event)
        for subscriber in list(state.subscribers):
            # The subscriber stays open so the server task drains and
            # writes the terminal frame, then breaks and unsubscribes
            # (unsubscribe tolerates the already-popped session state).
            subscriber.push_closed(frame)

    async def subscribe(self, session_id: str,
                        auth_token: str | None = None,
                        max_queue: int | None = None) -> StreamSubscriber:
        """Attach a subscriber; its first queued frame is a snapshot.

        The snapshot is taken under the session lock (via
        :meth:`SessionManager.with_session`) and the subscriber attached by
        a ``call_soon_threadsafe`` queued *while still holding it* — the
        same channel the action observer uses — so the snapshot and all
        subsequent frames form one totally ordered sequence: nothing
        between the snapshot's state and the first frame can be missed.
        """
        self._watch(session_id, +1)
        subscriber = StreamSubscriber(session_id,
                                      max_queue or self.max_queue)
        try:
            def grab(session: EtableSession) -> None:
                payload = (
                    etable_to_json(session.current)
                    if session.current is not None else None
                )
                self._loop.call_soon_threadsafe(
                    self._attach, session_id, subscriber, payload
                )

            await self._loop.run_in_executor(
                None, lambda: self.manager.with_session(
                    session_id, grab, auth_token=auth_token
                )
            )
        except BaseException:
            self._watch(session_id, -1)
            raise
        # call_soon_threadsafe is FIFO and _attach was queued before the
        # executor future resolved, so the subscriber is attached by now.
        return subscriber

    def _attach(self, session_id: str, subscriber: StreamSubscriber,
                payload: dict[str, Any] | None) -> None:
        state = self._sessions.get(session_id)
        if state is None:
            state = _SessionStream(self.stats)
            self._sessions[session_id] = state
        frame = state.source.snapshot(payload)
        subscriber.base_payload = payload
        subscriber.queue.append((frame, payload))
        subscriber.event.set()
        state.subscribers.append(subscriber)

    def unsubscribe(self, subscriber: StreamSubscriber) -> None:
        """Loop-thread: detach and release the session's watch count."""
        subscriber.closed = True
        state = self._sessions.get(subscriber.session_id)
        if state is not None and subscriber in state.subscribers:
            state.subscribers.remove(subscriber)
            if not state.subscribers:
                # Nobody listening: stop paying for payload serialization.
                del self._sessions[subscriber.session_id]
        self._watch(subscriber.session_id, -1)

    def open_streams(self) -> int:
        return sum(
            len(state.subscribers) for state in self._sessions.values()
        )

    def stats_payload(self) -> dict[str, Any]:
        payload = self.stats.payload()
        payload["open_streams"] = self.open_streams()
        payload["streamed_sessions"] = len(self._sessions)
        return payload

    def close(self) -> None:
        with self._watch_lock:
            self._closed = True
            self._watchers.clear()
            self._seen_reports.clear()
        for state in self._sessions.values():
            for subscriber in state.subscribers:
                subscriber.closed = True
                subscriber.event.set()
        self._sessions.clear()

    # ------------------------------------------------------------------
    def _watch(self, session_id: str, delta: int) -> None:
        with self._watch_lock:
            count = self._watchers.get(session_id, 0) + delta
            if count > 0:
                self._watchers[session_id] = count
            else:
                self._watchers.pop(session_id, None)
                self._seen_reports.pop(session_id, None)
