"""Delta-frame construction, coalescing, and client-side folding.

Pure functions over the JSON payloads of
:func:`repro.service.protocol.etable_to_json` — no sockets, no asyncio —
so the same code runs in the hub (server side), in the fuzzer's lockstep
folding clients, and in the bench's bytes-on-wire accounting.

The contract both sides share: *folding the frame stream reproduces the
full ETable payload.* A ``snapshot`` frame replaces the client's state
outright; a ``delta`` frame removes, upserts, and reorders rows in place.
Frames are **idempotent**: folding the frame for action N onto a state
that already reflects action N yields that same state — which is what
makes the subscribe-time snapshot race-free (a frame queued concurrently
with the snapshot can be folded harmlessly).

Frame building diffs the previous and new payloads row-by-row. The
:class:`~repro.core.planner.RowIdentities` fast path (threaded up from
``DeltaReport`` through ``IncrementalExecutor.last_report``) skips the
per-row comparison for rows the delta engine *proved* unchanged
(``cells_stable``); correctness never depends on it — a row that cannot
be proven unchanged is simply compared.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import ProtocolError
from repro.core.planner import RowIdentities
from repro.service.protocol import DeltaFrame, frame_to_json


def payload_bytes(obj: Any) -> int:
    """Wire size of a JSON value, compact encoding (what SSE would ship)."""
    return len(json.dumps(obj, separators=(",", ":"), default=str))


def _column_shape(payload: dict[str, Any]) -> list[tuple]:
    """Column identity minus the hidden flag (hidden toggles are deltas)."""
    return [
        (column["kind"], column["key"], column["display"], column["type"])
        for column in payload["columns"]
    ]


class StreamStats:
    """Counters for one hub (or one fuzzer pipe). Single-thread use."""

    def __init__(self) -> None:
        self.frames = 0
        self.snapshots = 0
        self.deltas = 0
        self.identity_skips = 0
        self.coalesce_events = 0
        self.coalesce_snapshots = 0

    def payload(self) -> dict[str, int]:
        return {
            "frames": self.frames,
            "snapshots": self.snapshots,
            "deltas": self.deltas,
            "identity_skips": self.identity_skips,
            "coalesce_events": self.coalesce_events,
            "coalesce_snapshots": self.coalesce_snapshots,
        }


def build_frame(
    seq: int,
    prev: dict[str, Any] | None,
    new: dict[str, Any] | None,
    action: str | None = None,
    identities: RowIdentities | None = None,
    coalesced: int = 1,
    stats: StreamStats | None = None,
) -> DeltaFrame:
    """Diff two full ETable payloads into one frame.

    Emits a snapshot when there is nothing to diff against, when the table
    changed structurally (different primary type or column shape — open /
    pivot / see-all), or when either side has no open table; otherwise a
    delta carrying removed ids, changed rows, and the new display order.
    """
    if stats is not None:
        stats.frames += 1
    structural = (
        prev is None
        or new is None
        or prev["primary_type"] != new["primary_type"]
        or _column_shape(prev) != _column_shape(new)
    )
    if structural:
        if stats is not None:
            stats.snapshots += 1
        return DeltaFrame(seq=seq, kind="snapshot", action=action,
                          coalesced=coalesced, etable=new)
    stable: frozenset[int] = frozenset()
    if identities is not None and identities.cells_stable:
        stable = frozenset(identities.retained)
    prev_rows = {row["node_id"]: row for row in prev["rows"]}
    order = [row["node_id"] for row in new["rows"]]
    changed: list[dict[str, Any]] = []
    for row in new["rows"]:
        old = prev_rows.get(row["node_id"])
        if old is None:
            changed.append(row)
        elif row["node_id"] in stable:
            # The delta engine proved this row's cells byte-identical; the
            # dict comparison below would say the same, just slower.
            if stats is not None:
                stats.identity_skips += 1
        elif old != row:
            changed.append(row)
    present = set(order)
    removed = [nid for nid in prev_rows if nid not in present]
    columns = None
    if prev["columns"] != new["columns"]:
        columns = tuple(new["columns"])  # hidden flags toggled (hide/show)
    # Unchanged pattern / display order are encoded as None and dropped
    # from the wire form; fold_frame falls back to the client's state.
    pattern = new["pattern"] if prev["pattern"] != new["pattern"] else None
    same_order = order == [row["node_id"] for row in prev["rows"]]
    if stats is not None:
        stats.deltas += 1
    return DeltaFrame(
        seq=seq,
        kind="delta",
        action=action,
        coalesced=coalesced,
        pattern=pattern,
        columns=columns,
        removed=tuple(removed),
        rows=tuple(changed),
        order=None if same_order else tuple(order),
        total_rows=new["total_rows"],
    )


def coalesce_frame(
    base: dict[str, Any] | None,
    latest: dict[str, Any] | None,
    seq: int,
    action: str | None,
    coalesced: int,
    stats: StreamStats | None = None,
) -> DeltaFrame:
    """Merge a backlog into one frame: diff what the client *has* against
    the latest state, skipping every intermediate frame.

    The backpressure fallback lives here: when the merged delta would ship
    at least as many bytes as a plain snapshot (a slow consumer that missed
    so much that most rows changed), send the snapshot instead — the
    stream never buffers or ships more than one full table per consumer.
    """
    frame = build_frame(seq, base, latest, action=action, coalesced=coalesced)
    if stats is not None:
        stats.frames += 1
        stats.coalesce_events += 1
    if frame.kind == "delta":
        snapshot = DeltaFrame(seq=seq, kind="snapshot", action=action,
                              coalesced=coalesced, etable=latest)
        if (payload_bytes(frame_to_json(frame))
                >= payload_bytes(frame_to_json(snapshot))):
            frame = snapshot
    if stats is not None:
        if frame.kind == "snapshot":
            stats.snapshots += 1
            stats.coalesce_snapshots += 1
        else:
            stats.deltas += 1
    return frame


def fold_frame(
    state: dict[str, Any] | None, frame: DeltaFrame
) -> dict[str, Any] | None:
    """Fold one frame into client-side state; returns the new full payload.

    The result is shaped exactly like :func:`etable_to_json` with no
    pagination, so a lockstep client can compare it ``==`` against a fresh
    ``GET .../etable``. Row dicts are shared with the frame (clients must
    treat folded state as read-only).
    """
    if frame.kind == "snapshot":
        return frame.etable
    if frame.kind == "closed":
        # Terminal frame: the session ended server-side. Carries no table
        # data; the client keeps whatever state it last folded.
        return state
    if state is None:
        raise ProtocolError("delta frame received before any snapshot")
    rows_by_id = {row["node_id"]: row for row in state["rows"]}
    for node_id in frame.removed:
        rows_by_id.pop(node_id, None)
    for row in frame.rows:
        rows_by_id[row["node_id"]] = row
    if frame.order is None:
        # Order unchanged: keep the state's display order (removals have
        # already been applied to rows_by_id, so just skip the gaps).
        rows = [
            rows_by_id[row["node_id"]]
            for row in state["rows"]
            if row["node_id"] in rows_by_id
        ]
    else:
        try:
            rows = [rows_by_id[node_id] for node_id in frame.order]
        except KeyError as error:
            raise ProtocolError(
                f"delta frame order references unknown row {error}"
            ) from None
    columns = (
        [dict(column) for column in frame.columns]
        if frame.columns is not None
        else state["columns"]
    )
    return {
        "version": state["version"],
        "primary_type": state["primary_type"],
        "pattern": (
            frame.pattern if frame.pattern is not None else state["pattern"]
        ),
        "columns": columns,
        "total_rows": frame.total_rows,
        "offset": 0,
        "returned": len(rows),
        "rows": rows,
    }


class FrameSource:
    """Per-session frame factory: remembers the last published payload.

    Owned by the hub's event-loop thread (or a single fuzzer thread); not
    thread-safe by design.
    """

    def __init__(self, stats: StreamStats | None = None) -> None:
        self.seq = 0
        self.last_payload: dict[str, Any] | None = None
        self.stats = stats if stats is not None else StreamStats()

    def snapshot(self, payload: dict[str, Any] | None,
                 action: str | None = None,
                 coalesced: int = 0) -> DeltaFrame:
        """A full-state frame (subscribe time); resets the diff baseline."""
        self.seq += 1
        self.last_payload = payload
        self.stats.frames += 1
        self.stats.snapshots += 1
        return DeltaFrame(seq=self.seq, kind="snapshot", action=action,
                          coalesced=coalesced, etable=payload)

    def closed(self, event: str = "closed") -> DeltaFrame:
        """The terminal frame for a closed/evicted session.

        ``action`` carries the lifecycle event name so clients can tell a
        deliberate close from LRU eviction; no table data rides along.
        """
        self.seq += 1
        self.stats.frames += 1
        return DeltaFrame(seq=self.seq, kind="closed", action=event,
                          coalesced=0)

    def frame_for(self, payload: dict[str, Any] | None,
                  action: str | None = None,
                  identities: RowIdentities | None = None) -> DeltaFrame:
        """The frame for one just-applied action; advances the baseline."""
        self.seq += 1
        frame = build_frame(self.seq, self.last_payload, payload,
                            action=action, identities=identities,
                            stats=self.stats)
        self.last_payload = payload
        return frame
