"""ETable delta streaming: frame diffing/folding and the SSE hub.

See :mod:`repro.service.stream.frames` for the pure payload-diff layer
(shared by server, fuzzer, and bench) and
:mod:`repro.service.stream.hub` for the asyncio fan-out with bounded
per-subscriber queues and coalescing backpressure.
"""

from repro.service.stream.frames import (
    FrameSource,
    StreamStats,
    build_frame,
    coalesce_frame,
    fold_frame,
    payload_bytes,
)
from repro.service.stream.hub import StreamHub, StreamSubscriber

__all__ = [
    "FrameSource",
    "StreamHub",
    "StreamStats",
    "StreamSubscriber",
    "build_frame",
    "coalesce_frame",
    "fold_frame",
    "payload_bytes",
]
