"""Consistent hash ring: session ids -> worker names, stable under churn.

The router's only placement data structure. Classic Karger-style ring:
each member contributes ``replicas`` virtual points (SHA-1 of
``"name#i"``), a key is owned by the first point clockwise from the
key's own hash. Adding or removing one member therefore moves only the
keys in the slots that member gained or lost — roughly ``1/n`` of the
space — which is what makes a rolling restart cheap: most sessions stay
where they are, the few that move are resurrected from their journals.

SHA-1, not :func:`hash`: Python's string hashing is salted per process
(PYTHONHASHSEED), and the router, its workers, and the test harness must
all agree on ownership from the name alone.
"""

from __future__ import annotations

import bisect
import hashlib

from repro.errors import ServiceError


def _point(label: str) -> int:
    digest = hashlib.sha1(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Members (worker names) on a consistent ring of hashed points."""

    def __init__(self, members: tuple[str, ...] | list[str] = (),
                 replicas: int = 64) -> None:
        if replicas < 1:
            raise ServiceError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._points: list[int] = []  # sorted virtual-node hashes
        self._owners: dict[int, str] = {}  # point -> member name
        for member in members:
            self.add(member)

    # ------------------------------------------------------------------
    @property
    def members(self) -> tuple[str, ...]:
        return tuple(sorted(set(self._owners.values())))

    def __len__(self) -> int:
        return len(self.members)

    def __contains__(self, member: str) -> bool:
        return member in set(self._owners.values())

    # ------------------------------------------------------------------
    def add(self, member: str) -> None:
        if not member:
            raise ServiceError("ring member name must be non-empty")
        if member in self:
            return
        for index in range(self.replicas):
            point = _point(f"{member}#{index}")
            # SHA-1 collisions across distinct labels are not a practical
            # concern; first-come ownership keeps behavior deterministic
            # if one ever happened.
            if point in self._owners:
                continue
            bisect.insort(self._points, point)
            self._owners[point] = member
        if member not in self:
            raise ServiceError(
                f"ring member {member!r} produced no points"
            )  # pragma: no cover - needs replicas of colliding labels

    def remove(self, member: str) -> None:
        stale = [p for p, owner in self._owners.items() if owner == member]
        for point in stale:
            del self._owners[point]
            index = bisect.bisect_left(self._points, point)
            del self._points[index]

    def owner(self, key: str) -> str:
        """The member owning ``key``; raises when the ring is empty."""
        if not self._points:
            raise ServiceError("hash ring has no members")
        index = bisect.bisect_right(self._points, _point(key))
        if index == len(self._points):
            index = 0  # wrap around the top of the ring
        return self._owners[self._points[index]]
