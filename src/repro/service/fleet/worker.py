"""One fleet worker process: a SessionManager behind a loopback socket.

Each worker is a full single-process service — the shared graph, its own
:class:`~repro.core.cache.CachingExecutor` (and therefore its own
``CompiledPlanCache``), a :class:`~repro.service.manager.SessionManager`
over the *fleet-shared* journal directory — listening on an ephemeral
loopback port for newline-delimited JSON. Two envelope kinds ride the
same socket, discriminated by the ``"control"`` key:

* :class:`~repro.service.protocol.Request` — user traffic, answered by
  ``manager.handle_request`` exactly as the HTTP frontends would;
* :class:`~repro.service.protocol.WorkerControl` — router control plane
  (drain, rebalance, resume, shutdown), answered with the same
  :class:`~repro.service.protocol.Response` envelope.

The worker never knows the whole fleet: rebalance hands it the member
list and it keeps only the sessions the ring maps to itself, releasing
the rest (journals intact) for their new owners to resurrect.

The graph is *built inside the worker* from a ``"module:callable"`` (or
``"path.py:callable"``) factory named in the picklable spec dict — the
spec crosses the process boundary, the graph never does. Statistics do
cross, as JSON: the first worker to boot writes the graph's
``GraphStatistics.to_payload()`` snapshot next to the journals, later
workers ``install_statistics`` from it instead of re-scanning.
"""

from __future__ import annotations

import importlib
import importlib.util
import json
import os
import socket
import threading
from pathlib import Path
from typing import Any

from repro.errors import ProtocolError, ServiceError
from repro.service import faults, protocol
from repro.service.journal import JOURNAL_SUFFIX
from repro.service.manager import SessionManager
from repro.service.fleet.hashring import HashRing

# The reply cache keeps this many recent request ids per worker. It only
# needs to outlive the router's retry window for in-flight requests, not
# remember history — the router pools a handful of connections, so a few
# hundred entries is orders of magnitude past what retries can reference.
_DEDUP_CAPACITY = 512


def resolve_factory(factory: str):
    """``"pkg.module:callable"`` or ``"/path/file.py:callable"`` -> callable."""
    target, sep, name = factory.partition(":")
    if not sep or not target or not name:
        raise ServiceError(
            f"factory must look like 'module:callable' or "
            f"'path.py:callable', got {factory!r}"
        )
    if target.endswith(".py"):
        spec = importlib.util.spec_from_file_location("_fleet_factory", target)
        if spec is None or spec.loader is None:
            raise ServiceError(f"cannot load factory file {target!r}")
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
    else:
        module = importlib.import_module(target)
    fn = getattr(module, name, None)
    if fn is None:
        raise ServiceError(f"factory {factory!r} does not exist")
    return fn


def _load_or_snapshot_statistics(graph, stats_path: str | None) -> None:
    """Share one statistics scan across the fleet via a JSON snapshot.

    First worker up computes and atomically publishes the snapshot; every
    later worker installs it instead of re-scanning the graph. A corrupt
    or torn snapshot (crash mid-publish cannot happen — ``os.replace`` is
    atomic — but a stale partial ``.tmp`` can linger) falls back to a
    local scan; the fleet never fails to boot over warm-up state.
    """
    if stats_path is None:
        return
    path = Path(stats_path)
    if path.exists():
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            from repro.tgm.instance_graph import GraphStatistics

            graph.install_statistics(
                GraphStatistics.from_payload(graph, payload)
            )
            return
        except Exception:
            pass  # unreadable snapshot: scan locally, leave file alone
    statistics = graph.statistics()
    tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp.write_text(
            json.dumps(statistics.to_payload(), default=str),
            encoding="utf-8",
        )
        os.replace(tmp, path)
    except OSError:  # pragma: no cover - disk trouble must not kill boot
        tmp.unlink(missing_ok=True)


class FleetWorker:
    """The in-process half of one worker: socket loop over a manager."""

    def __init__(self, spec: dict[str, Any]) -> None:
        self.name = str(spec["name"])
        faults.fire("worker.boot")
        tgdb = resolve_factory(spec["factory"])(**spec.get("factory_kwargs", {}))
        _load_or_snapshot_statistics(tgdb.graph, spec.get("stats_path"))
        self.manager = SessionManager(
            tgdb.schema, tgdb.graph,
            row_limit=spec.get("row_limit"),
            max_sessions=spec.get("max_sessions", 256),
            ttl_seconds=spec.get("ttl_seconds", 1800.0),
            journal_dir=spec["journal_dir"],
            engine=spec.get("engine", "planned"),
            compact_every=spec.get("compact_every", 64),
            require_auth=spec.get("require_auth", False),
            quota_actions=spec.get("quota_actions"),
            quota_window=spec.get("quota_window", 60.0),
            fsync_journal=spec.get("fsync_journal", False),
        )
        self._server = socket.create_server(("127.0.0.1", 0))
        self._server.settimeout(0.2)
        self.port = self._server.getsockname()[1]
        self._stop = threading.Event()
        # Reply cache for exactly-once application: the router reuses one
        # request_id across retries, so a retry whose original was applied
        # (but whose reply was lost) replays the recorded Response instead
        # of re-executing the action.
        self._dedup_lock = threading.Lock()
        self._dedup: dict[str, protocol.Response] = {}  # guarded-by: self._dedup_lock
        self._stats_lock = threading.Lock()
        self.client_disconnects = 0  # guarded-by: self._stats_lock
        self.dedup_hits = 0  # guarded-by: self._stats_lock

    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Accept loop: one thread per connection (the router pools its
        connections, so the thread count is O(router concurrency))."""
        try:
            while not self._stop.is_set():
                try:
                    conn, _addr = self._server.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                thread = threading.Thread(
                    target=self._serve_connection, args=(conn,),
                    name=f"fleet-{self.name}-conn", daemon=True,
                )
                thread.start()
        finally:
            self._server.close()
            self.manager.shutdown()

    def _serve_connection(self, conn: socket.socket) -> None:
        stream = conn.makefile("rwb")
        try:
            while not self._stop.is_set():
                line = stream.readline()
                if not line:
                    return
                response = self._serve_line(line)
                stream.write(
                    json.dumps(response.to_json(), default=str).encode("utf-8")
                    + b"\n"
                )
                stream.flush()
        except (OSError, ValueError):
            # Router went away mid-line; its retry logic owns this — but
            # the drop is counted so chaos runs can assert the books add up.
            with self._stats_lock:
                self.client_disconnects += 1
        finally:
            stream.close()
            conn.close()

    def _serve_line(self, line: bytes) -> protocol.Response:
        try:
            payload = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return protocol.Response.failure(
                ProtocolError(f"worker request is not JSON: {error}")
            )
        request_id = (payload.get("request_id")
                      if isinstance(payload, dict) else None)
        if isinstance(request_id, str) and request_id:
            with self._dedup_lock:
                cached = self._dedup.get(request_id)
            if cached is not None:
                with self._stats_lock:
                    self.dedup_hits += 1
                return cached
        try:
            if isinstance(payload, dict) and "control" in payload:
                control = protocol.WorkerControl.from_json(payload)
                response = self._serve_control(control)
            else:
                response = self.manager.handle_request(
                    protocol.Request.from_json(payload)
                )
        except Exception as error:  # noqa: BLE001 - worker must answer
            response = protocol.Response.failure(error)
        if isinstance(request_id, str) and request_id:
            with self._dedup_lock:
                self._dedup[request_id] = response
                while len(self._dedup) > _DEDUP_CAPACITY:
                    # dicts iterate in insertion order: drop the oldest.
                    self._dedup.pop(next(iter(self._dedup)))
        return response

    # ------------------------------------------------------------------
    def _serve_control(self, control: protocol.WorkerControl
                       ) -> protocol.Response:
        op, args = control.op, control.args
        if op == "ping":
            result: dict[str, Any] = {"name": self.name, "pid": os.getpid(),
                                      "port": self.port}
        elif op == "stats":
            result = self.manager.stats()
            result["worker"] = self.name
            with self._stats_lock:
                result["client_disconnects"] = self.client_disconnects
                result["dedup_hits"] = self.dedup_hits
            if (injector := faults.active()) is not None:
                result["faults"] = injector.stats()
        elif op == "token":
            result = {"auth_token": self._session_token(args.get("session_id"))}
        elif op == "resume":
            resumed = []
            for session_id in args.get("session_ids", []):
                self.manager.resume_session(str(session_id))
                resumed.append(str(session_id))
            result = {"resumed": resumed}
        elif op == "release":
            ids = args.get("session_ids")
            released = self.manager.release_sessions(
                [str(s) for s in ids] if ids is not None else None
            )
            result = {"released": released}
        elif op == "rebalance":
            result = {"released": self._rebalance(args.get("members", []))}
        elif op == "drain":
            result = {"released": self.manager.release_sessions()}
        elif op == "shutdown":
            # Reply first (the socket loop sends this return value), then
            # stop accepting; serve_forever's finally drains the manager.
            self._stop.set()
            result = {"stopping": self.name}
        else:  # pragma: no cover - from_json already validated the op
            raise ProtocolError(f"unhandled control op {op!r}")
        # The socket protocol is strictly request/response per connection,
        # so the reply needs no request-id correlation.
        return protocol.Response.success(result)

    def _session_token(self, session_id: Any) -> str | None:
        if not session_id:
            raise ProtocolError("token control needs a session_id")
        token = self.manager.session_auth_token(str(session_id))
        if token is None:
            # Not live here (yet): resurrect, then read the journal-kept
            # token — the router asks the *owner*, so resuming is correct.
            from repro.errors import UnknownSession

            try:
                self.manager.resume_session(str(session_id))
            except UnknownSession:
                return None
            token = self.manager.session_auth_token(str(session_id))
        return token

    def _rebalance(self, members: list[str]) -> list[str]:
        """Keep only sessions the new ring maps here; release the rest."""
        if not members or self.name not in members:
            return self.manager.release_sessions()
        ring = HashRing(tuple(str(m) for m in members))
        strays = [
            session_id for session_id in self.manager.session_ids()
            if ring.owner(session_id) != self.name
        ]
        return self.manager.release_sessions(strays)


def fleet_worker_main(spec: dict[str, Any], conn) -> None:
    """``multiprocessing.Process`` target: build, report the port, serve.

    ``spec`` is a dict of picklable primitives (see :class:`FleetWorker`);
    ``conn`` is the parent's pipe end, which receives either
    ``{"port": n}`` on success or ``{"error": str}`` on boot failure and
    is then closed — all later traffic rides the socket.

    A ``"faults"`` spec entry (the ``REPRO_FAULTS`` grammar, seeded by
    ``"faults_seed"``) arms fault injection inside this process before
    anything else runs — chaos tests inject journal faults worker-side
    this way. Spec-armed faults win over the inherited environment.
    """
    try:
        if spec.get("faults"):
            faults.arm(faults.FaultInjector.parse(
                str(spec["faults"]), seed=int(spec.get("faults_seed", 0))
            ))
        worker = FleetWorker(spec)
    except BaseException as error:
        try:
            conn.send({"error": f"{type(error).__name__}: {error}"})
        finally:
            conn.close()
        raise SystemExit(1)
    conn.send({"port": worker.port})
    conn.close()
    worker.serve_forever()


def journaled_sessions(journal_dir: str | Path) -> list[str]:
    """Session ids with a journal on disk (the router's recovery scan)."""
    return sorted(
        path.name[: -len(JOURNAL_SUFFIX)]
        for path in Path(journal_dir).glob(f"*{JOURNAL_SUFFIX}")
    )
