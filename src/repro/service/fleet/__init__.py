"""Multi-process fleet: a router consistent-hashing sessions to workers.

    from repro.service.fleet import FleetRouter

    router = FleetRouter({"factory": "examples/serve.py:build_tgdb",
                          "factory_kwargs": {"dataset": "toy", "papers": 0},
                          "journal_dir": "journals"}, workers=4)
    server = NavigationServer(router, port=8080).start()  # unchanged

The router duck-types :class:`~repro.service.manager.SessionManager`, so
the HTTP frontends need no changes; session migration between workers is
journal handoff (see :mod:`repro.service.fleet.router`).
"""

from repro.service.fleet.hashring import HashRing
from repro.service.fleet.router import FleetRouter
from repro.service.fleet.worker import (
    FleetWorker,
    fleet_worker_main,
    journaled_sessions,
    resolve_factory,
)

__all__ = [
    "FleetRouter",
    "FleetWorker",
    "HashRing",
    "fleet_worker_main",
    "journaled_sessions",
    "resolve_factory",
]
