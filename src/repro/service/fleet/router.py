"""The fleet router: consistent-hash session placement over N workers.

cubicweb's repository/session split, flattened onto this codebase: the
router owns *placement* (which worker hosts which session) and the
workers own *state* (the sessions themselves, each durably journaled in
the fleet-shared journal directory). The router duck-types the
:class:`~repro.service.manager.SessionManager` surface the frontends
use — ``handle_request``, ``close_session``, ``stats``,
``session_auth_token``, ``recover_all``, ``shutdown`` — so both the
threaded and asyncio HTTP servers sit in front of a fleet unchanged.

Migration is journal handoff, not state transfer. Because every worker
journals into the same directory, moving a session is: reassign the hash
slot, then let the new owner resurrect it from the journal through the
prefix-reuse cache on the next request. That one mechanism serves all
three lifecycle events:

* **drain / rolling restart** — the departing worker releases its
  sessions (flushing quota bookkeeping), the ring reroutes, the new
  owners replay;
* **rebalance** — after membership changes, every worker drops the
  sessions that no longer hash to it;
* **crash** — nothing to flush: the journal already holds every accepted
  action, so the router just removes the dead member and retries on the
  new owner, which replays to the exact pre-crash state (history, ETable
  cells, and auth token are all journal-derived — bit-identical).

SSE streaming is *not* proxied across the process boundary yet: the
stream hub needs a live in-process session. A fleet therefore serves the
request/response surface only; the ROADMAP names the cross-process
``restore``-frame follow-on.
"""

from __future__ import annotations

import json
import multiprocessing
import socket
import threading
import time
import uuid
from typing import Any, Callable

from repro.errors import ServiceError, UnknownSession, WorkerFailure
from repro.service import protocol
from repro.service.fleet.hashring import HashRing
from repro.service.fleet.worker import fleet_worker_main, journaled_sessions


class _WorkerHandle:
    """Router-side view of one worker: process + pooled connections."""

    def __init__(self, name: str, spec: dict[str, Any],
                 process: multiprocessing.process.BaseProcess | None,
                 port: int) -> None:
        self.name = name
        self.spec = spec
        self.process = process
        self.port = port
        self._pool: list[socket.socket] = []  # guarded-by: self._pool_lock
        self._pool_lock = threading.Lock()

    def alive(self) -> bool:
        return self.process is None or self.process.is_alive()

    # -- pooled newline-JSON round trip --------------------------------
    def call(self, payload: dict[str, Any], timeout: float) -> dict[str, Any]:
        sock = self._acquire(timeout)
        try:
            sock.sendall(
                json.dumps(payload, default=str).encode("utf-8") + b"\n"
            )
            line = b""
            while not line.endswith(b"\n"):
                chunk = sock.recv(1 << 20)
                if not chunk:
                    raise OSError("worker closed the connection mid-reply")
                line += chunk
        except BaseException:
            try:
                sock.close()
            except OSError:
                pass
            raise
        self._release(sock)
        return json.loads(line.decode("utf-8"))

    def _acquire(self, timeout: float) -> socket.socket:
        with self._pool_lock:
            if self._pool:
                return self._pool.pop()
        sock = socket.create_connection(("127.0.0.1", self.port),
                                        timeout=timeout)
        sock.settimeout(timeout)
        return sock

    def _release(self, sock: socket.socket) -> None:
        with self._pool_lock:
            self._pool.append(sock)

    def close_pool(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, []
        for sock in pool:
            try:
                sock.close()
            except OSError:
                pass


class FleetRouter:
    """N worker processes behind one SessionManager-shaped facade."""

    def __init__(self, worker_spec: dict[str, Any], workers: int = 2,
                 request_timeout: float = 60.0,
                 start_method: str | None = None) -> None:
        if workers < 1:
            raise ServiceError(f"a fleet needs >= 1 worker, got {workers}")
        if "journal_dir" not in worker_spec or not worker_spec["journal_dir"]:
            raise ServiceError(
                "fleet workers need a shared journal_dir: migration is "
                "journal handoff, there is no other state channel"
            )
        self.journal_dir = worker_spec["journal_dir"]
        self.request_timeout = request_timeout
        self._context = multiprocessing.get_context(start_method)
        self._lock = threading.Lock()
        self._workers: dict[str, _WorkerHandle] = {}  # guarded-by: self._lock
        self._ring = HashRing()  # guarded-by: self._lock
        self.migrations = 0  # guarded-by: self._lock
        self.worker_restarts = 0  # guarded-by: self._lock
        self.routed_requests = 0  # guarded-by: self._lock
        for index in range(workers):
            name = f"worker-{index}"
            handle = self._spawn(dict(worker_spec, name=name))
            with self._lock:
                self._workers[name] = handle
                self._ring.add(name)

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, spec: dict[str, Any]) -> _WorkerHandle:
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=fleet_worker_main, args=(spec, child_conn),
            name=f"fleet-{spec['name']}", daemon=True,
        )
        process.start()
        child_conn.close()
        if not parent_conn.poll(120.0):
            process.kill()
            raise ServiceError(f"worker {spec['name']!r} never reported in")
        boot = parent_conn.recv()
        parent_conn.close()
        if "error" in boot:
            process.join(timeout=5.0)
            raise ServiceError(
                f"worker {spec['name']!r} failed to boot: {boot['error']}"
            )
        return _WorkerHandle(spec["name"], spec, process, boot["port"])

    @classmethod
    def attach(cls, endpoints: dict[str, int], journal_dir: str,
               request_timeout: float = 60.0) -> "FleetRouter":
        """A router over *already running* workers (router-restart path).

        ``endpoints`` maps worker name -> loopback port. The attached
        router cannot respawn what it did not spawn (``process`` is
        unknown), but routing, draining, and rebalancing all work — which
        is exactly what a restarted front process needs.
        """
        router = cls.__new__(cls)
        router.journal_dir = journal_dir
        router.request_timeout = request_timeout
        router._context = multiprocessing.get_context()
        router._lock = threading.Lock()
        router._workers = {}
        router._ring = HashRing()
        router.migrations = 0
        router.worker_restarts = 0
        router.routed_requests = 0
        for name, port in endpoints.items():
            handle = _WorkerHandle(name, {"name": name}, None, port)
            router._workers[name] = handle
            router._ring.add(name)
        try:
            for handle in router._workers.values():
                router._control(handle, "ping")  # fail fast on dead endpoints
        except BaseException:
            router.detach()
            raise
        return router

    def detach(self) -> None:
        """Drop this router's sockets without touching the workers.

        The counterpart of :meth:`attach` for a front process going away:
        :meth:`shutdown` would stop the fleet, which an attached router
        does not own.
        """
        with self._lock:
            handles, self._workers = dict(self._workers), {}
            self._ring = HashRing()
        for handle in handles.values():
            handle.close_pool()

    def endpoints(self) -> dict[str, int]:
        """Worker name -> port (what :meth:`attach` needs to rebuild)."""
        with self._lock:
            return {name: handle.port
                    for name, handle in self._workers.items()}

    def worker_names(self) -> list[str]:
        with self._lock:
            return sorted(self._workers)

    def owner_of(self, session_id: str) -> str:
        with self._lock:
            return self._ring.owner(session_id)

    def kill_worker(self, name: str) -> None:
        """SIGKILL a worker (failure injection: tests, self-test)."""
        with self._lock:
            handle = self._workers.get(name)
        if handle is None or handle.process is None:
            raise ServiceError(f"no spawned worker named {name!r}")
        handle.process.kill()
        handle.process.join(timeout=10.0)

    def restart_worker(self, name: str) -> None:
        """Drain one worker and bring up a replacement (rolling restart).

        Sequence: take it off the ring (new traffic reroutes), tell it to
        drain (journals flushed, quota persisted), shut it down, spawn the
        replacement, re-add it, then broadcast a rebalance so every worker
        releases the sessions the restored ring no longer maps to it —
        without this, a session resurrected elsewhere during the restart
        would be double-hosted when the name rejoins.
        """
        with self._lock:
            handle = self._workers.get(name)
            if handle is None:
                raise ServiceError(f"no worker named {name!r}")
            if handle.process is None:
                raise ServiceError(
                    f"worker {name!r} was attached, not spawned; "
                    f"restart it from its owning process"
                )
            self._ring.remove(name)
        try:
            if handle.alive():
                try:
                    self._control(handle, "drain")
                    self._control(handle, "shutdown")
                except (OSError, ServiceError):
                    pass  # already dying; journals are the safety net
                handle.process.join(timeout=30.0)
                if handle.process.is_alive():
                    handle.process.kill()
                    handle.process.join(timeout=10.0)
            handle.close_pool()
            replacement = self._spawn(handle.spec)
        except BaseException:
            with self._lock:
                self._workers.pop(name, None)
            raise
        with self._lock:
            self._workers[name] = replacement
            self._ring.add(name)
            self.worker_restarts += 1
        self._broadcast_rebalance()

    def rolling_restart(self) -> None:
        """Restart every worker one at a time; the service stays up."""
        for name in self.worker_names():
            self.restart_worker(name)

    def _broadcast_rebalance(self) -> None:
        with self._lock:
            members = sorted(self._ring.members)
            handles = list(self._workers.values())
        for handle in handles:
            try:
                self._control(handle, "rebalance", {"members": members})
            except (OSError, ServiceError, WorkerFailure):
                continue  # a dead worker has nothing to release

    # ------------------------------------------------------------------
    # Control-plane round trips
    # ------------------------------------------------------------------
    def _control(self, handle: _WorkerHandle, op: str,
                 args: dict[str, Any] | None = None) -> dict[str, Any]:
        control = protocol.WorkerControl(op=op, args=args or {})
        payload = handle.call(control.to_json(), self.request_timeout)
        response = protocol.Response.from_json(payload)
        if not response.ok:
            raise protocol.exception_from_response(response)
        return response.result or {}

    # ------------------------------------------------------------------
    # Routed user traffic (the SessionManager-shaped surface)
    # ------------------------------------------------------------------
    def handle_request(self, request: protocol.Request) -> protocol.Response:
        try:
            if request.action == "create_session":
                # Mint the id router-side: placement needs the id *before*
                # any worker is involved.
                session_id = (request.params.get("session_id")
                              or request.session_id or uuid.uuid4().hex[:12])
                request = protocol.Request(
                    action="create_session",
                    params=dict(request.params, session_id=session_id),
                    session_id=str(session_id),
                    request_id=request.request_id,
                    auth_token=request.auth_token,
                )
                return self._route(str(session_id), request)
            if request.action == "stats":
                return protocol.Response.success(self.stats(), request)
            if request.action == "tables":
                return self._any_worker_request(request)
            session_id = request.session_id or request.params.get("session_id")
            if not session_id:
                return protocol.Response.failure(
                    protocol.ProtocolError(
                        f"action {request.action!r} needs a session_id"
                    ), request,
                )
            return self._route(str(session_id), request)
        except ServiceError as error:
            return protocol.Response.failure(error, request)

    def _route(self, session_id: str,
               request: protocol.Request) -> protocol.Response:
        """Send to the owner; on worker death, reroute and retry.

        The retry is safe for the same reason migration is: the journal
        holds every *accepted* action. If the worker died before
        accepting, the retry simply applies it on the new owner; if it
        died between accepting and replying (the at-least-once window),
        the retried action re-executes on the replayed state — for this
        protocol's deterministic, history-appending actions the second
        apply is the one the client observes, matching what it would have
        seen had the first reply arrived.
        """
        attempts = 0
        while True:
            with self._lock:
                self.routed_requests += 1
                owner = self._ring.owner(session_id)
                handle = self._workers[owner]
                fleet_size = len(self._workers)
            try:
                payload = handle.call(request.to_json(), self.request_timeout)
                return protocol.Response.from_json(payload)
            except (OSError, json.JSONDecodeError):
                attempts += 1
                if handle.alive() or attempts >= fleet_size + 1:
                    raise WorkerFailure(
                        f"worker {owner!r} failed serving session "
                        f"{session_id!r} and cannot be retried"
                    ) from None
                # Crash failover: drop the dead member; the ring reroutes
                # this session (and its siblings) to live owners, which
                # resurrect from the shared journals on this very retry.
                self._remove_dead(owner)

    def _remove_dead(self, name: str) -> None:
        with self._lock:
            handle = self._workers.pop(name, None)
            if handle is None:
                return  # another thread already buried it
            self._ring.remove(name)
            if not self._workers:
                self._workers[name] = handle  # keep the error readable
                self._ring.add(name)
                raise ServiceError(
                    f"last fleet worker {name!r} died; nothing to fail "
                    f"over to"
                )
            self.migrations += 1
        handle.close_pool()

    def _any_worker_request(self, request: protocol.Request
                            ) -> protocol.Response:
        with self._lock:
            handles = list(self._workers.values())
        last_error: Exception | None = None
        for handle in handles:
            try:
                payload = handle.call(request.to_json(), self.request_timeout)
                return protocol.Response.from_json(payload)
            except (OSError, json.JSONDecodeError) as error:
                last_error = error
        raise WorkerFailure(f"no worker answered: {last_error}")

    # ------------------------------------------------------------------
    # SessionManager-shaped conveniences (frontends + tests)
    # ------------------------------------------------------------------
    def apply(self, session_id: str, action: str,
              params: dict[str, Any] | None = None,
              auth_token: str | None = None) -> dict[str, Any]:
        response = self._route(session_id, protocol.Request(
            action=action, params=params or {}, session_id=session_id,
            auth_token=auth_token,
        ))
        if not response.ok:
            raise protocol.exception_from_response(response)
        return response.result or {}

    def create_session(self, session_id: str | None = None) -> str:
        params = {"session_id": session_id} if session_id else {}
        response = self.handle_request(
            protocol.Request(action="create_session", params=params)
        )
        if not response.ok:
            raise protocol.exception_from_response(response)
        return response.result["session_id"]

    def close_session(self, session_id: str, drop_journal: bool = False,
                      auth_token: str | None = None) -> None:
        params: dict[str, Any] = {}
        if drop_journal:
            params["drop_journal"] = True
        response = self._route(session_id, protocol.Request(
            action="close_session", params=params, session_id=session_id,
            auth_token=auth_token,
        ))
        if not response.ok:
            raise protocol.exception_from_response(response)

    def session_auth_token(self, session_id: str) -> str | None:
        with self._lock:
            owner = self._ring.owner(session_id)
            handle = self._workers[owner]
        return self._control(
            handle, "token", {"session_id": session_id}
        ).get("auth_token")

    def recover_all(self) -> list[str]:
        """Warm-start: every journaled session resumed on its ring owner."""
        by_owner: dict[str, list[str]] = {}
        for session_id in journaled_sessions(self.journal_dir):
            by_owner.setdefault(self.owner_of(session_id), []).append(
                session_id
            )
        resumed: list[str] = []
        for owner, ids in sorted(by_owner.items()):
            with self._lock:
                handle = self._workers[owner]
            resumed.extend(
                self._control(handle, "resume", {"session_ids": ids})
                .get("resumed", [])
            )
        return resumed

    def add_action_observer(self, observer: Callable[..., Any]) -> None:
        """Accepted for SessionManager duck-typing; fleet workers live in
        other processes, so in-process observers can never fire."""

    def add_lifecycle_observer(self, observer: Callable[..., Any]) -> None:
        """Accepted for SessionManager duck-typing (see above)."""

    def with_session(self, session_id: str, fn: Callable[..., Any],
                     auth_token: str | None = None) -> Any:
        raise ServiceError(
            "SSE streaming is not yet proxied across the fleet boundary; "
            "serve streams from a single-process deployment (the "
            "'restore'-frame follow-on in ROADMAP covers fleet SSE)"
        )

    def stats(self) -> dict[str, Any]:
        with self._lock:
            handles = dict(self._workers)
            routed = self.routed_requests
            migrations = self.migrations
            restarts = self.worker_restarts
        per_worker: dict[str, Any] = {}
        totals = {"live_sessions": 0, "created": 0, "resumed": 0,
                  "evicted": 0, "actions": 0}
        for name, handle in sorted(handles.items()):
            try:
                worker_stats = self._control(handle, "stats")
            except (OSError, ServiceError, WorkerFailure):
                per_worker[name] = {"alive": False}
                continue
            per_worker[name] = worker_stats
            for key in totals:
                totals[key] += int(worker_stats.get(key, 0))
        return {
            **totals,
            "fleet": {
                "workers": sorted(handles),
                "routed_requests": routed,
                "migrations": migrations,
                "worker_restarts": restarts,
                "per_worker": per_worker,
            },
        }

    def shutdown(self) -> None:
        """Graceful fleet stop: drain + shutdown every worker, then join."""
        with self._lock:
            handles, self._workers = dict(self._workers), {}
            self._ring = HashRing()
        for handle in handles.values():
            try:
                self._control(handle, "shutdown")
            except (OSError, ServiceError, WorkerFailure):
                pass  # already dead; journals hold its sessions
            handle.close_pool()
        for handle in handles.values():
            if handle.process is None:
                continue
            handle.process.join(timeout=30.0)
            if handle.process.is_alive():  # pragma: no cover - stuck worker
                handle.process.kill()
                handle.process.join(timeout=10.0)
