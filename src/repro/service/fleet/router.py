"""The fleet router: consistent-hash session placement over N workers.

cubicweb's repository/session split, flattened onto this codebase: the
router owns *placement* (which worker hosts which session) and the
workers own *state* (the sessions themselves, each durably journaled in
the fleet-shared journal directory). The router duck-types the
:class:`~repro.service.manager.SessionManager` surface the frontends
use — ``handle_request``, ``close_session``, ``stats``,
``session_auth_token``, ``recover_all``, ``shutdown`` — so both the
threaded and asyncio HTTP servers sit in front of a fleet unchanged.

Migration is journal handoff, not state transfer. Because every worker
journals into the same directory, moving a session is: reassign the hash
slot, then let the new owner resurrect it from the journal through the
prefix-reuse cache on the next request. That one mechanism serves all
three lifecycle events:

* **drain / rolling restart** — the departing worker releases its
  sessions (flushing quota bookkeeping), the ring reroutes, the new
  owners replay;
* **rebalance** — after membership changes, every worker drops the
  sessions that no longer hash to it;
* **crash** — nothing to flush: the journal already holds every accepted
  action, so the router just removes the dead member and retries on the
  new owner, which replays to the exact pre-crash state (history, ETable
  cells, and auth token are all journal-derived — bit-identical).

SSE streaming is *not* proxied across the process boundary yet: the
stream hub needs a live in-process session. A fleet therefore serves the
request/response surface only; the ROADMAP names the cross-process
``restore``-frame follow-on.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import socket
import threading
import time
import uuid
from typing import Any, Callable

from repro.errors import ServiceError, UnknownSession, WorkerFailure
from repro.service import faults, protocol
from repro.service.fleet.hashring import HashRing
from repro.service.fleet.worker import fleet_worker_main, journaled_sessions
from repro.service.resilience import CircuitBreaker, HealthProbe, RetryPolicy


class _WorkerHandle:
    """Router-side view of one worker: process + pooled connections."""

    def __init__(self, name: str, spec: dict[str, Any],
                 process: multiprocessing.process.BaseProcess | None,
                 port: int) -> None:
        self.name = name
        self.spec = spec
        self.process = process
        self.port = port
        self._pool: list[socket.socket] = []  # guarded-by: self._pool_lock
        self._pool_lock = threading.Lock()

    def alive(self) -> bool:
        return self.process is None or self.process.is_alive()

    # -- pooled newline-JSON round trip --------------------------------
    def call(self, payload: dict[str, Any], timeout: float) -> dict[str, Any]:
        """One request/reply round trip; transport trouble of any shape
        (connect refusal, timeout, torn reply, undecodable reply, or an
        injected fault) surfaces as a typed :class:`WorkerFailure` so
        callers never match on broad ``OSError`` tuples."""
        try:
            sock = self._acquire(timeout)
        except OSError as error:
            raise WorkerFailure(
                f"worker {self.name!r} is unreachable: {error}"
            ) from error
        try:
            faults.fire("router.send")
            sock.sendall(
                json.dumps(payload, default=str).encode("utf-8") + b"\n"
            )
            line = b""
            while not line.endswith(b"\n"):
                # The recv fault fires *after* the send: the worker may
                # already have applied the action — exactly the
                # at-least-once window the dedup cache closes.
                faults.fire("router.recv")
                chunk = sock.recv(1 << 20)
                if not chunk:
                    raise WorkerFailure(
                        f"worker {self.name!r} closed the connection "
                        f"mid-reply"
                    )
                line += chunk
        except BaseException as error:
            # Never pool a socket with an unread reply in flight.
            try:
                sock.close()
            except OSError:
                pass
            if isinstance(error, WorkerFailure):
                raise
            if isinstance(error, OSError):
                raise WorkerFailure(
                    f"transport to worker {self.name!r} failed: {error}"
                ) from error
            raise
        self._release(sock)
        try:
            return json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise WorkerFailure(
                f"worker {self.name!r} sent an undecodable reply: {error}"
            ) from error

    def _acquire(self, timeout: float) -> socket.socket:
        with self._pool_lock:
            if self._pool:
                return self._pool.pop()
        sock = socket.create_connection(("127.0.0.1", self.port),
                                        timeout=timeout)
        sock.settimeout(timeout)
        return sock

    def _release(self, sock: socket.socket) -> None:
        with self._pool_lock:
            self._pool.append(sock)

    def close_pool(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, []
        for sock in pool:
            try:
                sock.close()
            except OSError:
                pass


class FleetRouter:
    """N worker processes behind one SessionManager-shaped facade."""

    def __init__(self, worker_spec: dict[str, Any], workers: int = 2,
                 request_timeout: float = 60.0,
                 start_method: str | None = None,
                 retry_policy: RetryPolicy | None = None,
                 breaker_threshold: int = 5,
                 breaker_reset: float = 5.0,
                 probe_interval: float | None = 5.0) -> None:
        if workers < 1:
            raise ServiceError(f"a fleet needs >= 1 worker, got {workers}")
        if "journal_dir" not in worker_spec or not worker_spec["journal_dir"]:
            raise ServiceError(
                "fleet workers need a shared journal_dir: migration is "
                "journal handoff, there is no other state channel"
            )
        self.journal_dir = worker_spec["journal_dir"]
        self.request_timeout = request_timeout
        self._context = multiprocessing.get_context(start_method)
        self._lock = threading.Lock()
        self._workers: dict[str, _WorkerHandle] = {}  # guarded-by: self._lock
        self._ring = HashRing()  # guarded-by: self._lock
        self.retry_policy = retry_policy or RetryPolicy()
        self._breaker_threshold = breaker_threshold
        self._breaker_reset = breaker_reset
        self._breakers: dict[str, CircuitBreaker] = {}  # guarded-by: self._lock
        self.migrations = 0  # guarded-by: self._lock
        self.worker_restarts = 0  # guarded-by: self._lock
        self.routed_requests = 0  # guarded-by: self._lock
        self.retries = 0  # guarded-by: self._lock
        self.breaker_opens = 0  # guarded-by: self._lock
        self.rebalance_failures = 0  # guarded-by: self._lock
        for index in range(workers):
            name = f"worker-{index}"
            handle = self._spawn(dict(worker_spec, name=name))
            with self._lock:
                self._workers[name] = handle
                self._ring.add(name)
        self._probe: HealthProbe | None = None
        if probe_interval is not None:
            self._probe = HealthProbe(self._probe_once,
                                      interval=probe_interval)
            self._probe.start()

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, spec: dict[str, Any],
               attempts: int = 3) -> _WorkerHandle:
        """Spawn with a bounded boot retry: a worker that dies during
        startup (OOM, an injected ``worker.boot`` fault) gets fresh
        processes before the failure escapes."""
        last_error: ServiceError | None = None
        for _ in range(attempts):
            try:
                return self._spawn_once(spec)
            except ServiceError as error:
                last_error = error
        assert last_error is not None
        raise last_error

    def _spawn_once(self, spec: dict[str, Any]) -> _WorkerHandle:
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=fleet_worker_main, args=(spec, child_conn),
            name=f"fleet-{spec['name']}", daemon=True,
        )
        process.start()
        child_conn.close()
        if not parent_conn.poll(120.0):
            process.kill()
            raise ServiceError(f"worker {spec['name']!r} never reported in")
        boot = parent_conn.recv()
        parent_conn.close()
        if "error" in boot:
            process.join(timeout=5.0)
            raise ServiceError(
                f"worker {spec['name']!r} failed to boot: {boot['error']}"
            )
        return _WorkerHandle(spec["name"], spec, process, boot["port"])

    @classmethod
    def attach(cls, endpoints: dict[str, int], journal_dir: str,
               request_timeout: float = 60.0,
               retry_policy: RetryPolicy | None = None,
               breaker_threshold: int = 5,
               breaker_reset: float = 5.0,
               probe_interval: float | None = None) -> "FleetRouter":
        """A router over *already running* workers (router-restart path).

        ``endpoints`` maps worker name -> loopback port. The attached
        router cannot respawn what it did not spawn (``process`` is
        unknown), but routing, draining, and rebalancing all work — which
        is exactly what a restarted front process needs. Endpoints that
        fail the attach-time ping are dropped from the ring (their
        sessions are served by the survivors via journal handoff); only
        an entirely dead endpoint map is an error.
        """
        router = cls.__new__(cls)
        router.journal_dir = journal_dir
        router.request_timeout = request_timeout
        router._context = multiprocessing.get_context()
        router._lock = threading.Lock()
        router._workers = {}
        router._ring = HashRing()
        router.retry_policy = retry_policy or RetryPolicy()
        router._breaker_threshold = breaker_threshold
        router._breaker_reset = breaker_reset
        router._breakers = {}
        router.migrations = 0
        router.worker_restarts = 0
        router.routed_requests = 0
        router.retries = 0
        router.breaker_opens = 0
        router.rebalance_failures = 0
        router._probe = None
        for name, port in endpoints.items():
            handle = _WorkerHandle(name, {"name": name}, None, port)
            router._workers[name] = handle
            router._ring.add(name)
        dead: list[str] = []
        try:
            for name, handle in sorted(router._workers.items()):
                try:
                    router._control(handle, "ping", attempts=1)
                except (OSError, ServiceError):
                    dead.append(name)
        except BaseException:
            router.detach()
            raise
        if len(dead) == len(router._workers):
            router.detach()
            raise ServiceError(
                f"no live workers among endpoints {dict(endpoints)!r}"
            )
        stale: list[_WorkerHandle] = []
        with router._lock:
            for name in dead:
                handle = router._workers.pop(name, None)
                router._ring.remove(name)
                if handle is not None:
                    stale.append(handle)
        for handle in stale:
            handle.close_pool()
        if probe_interval is not None:
            router._probe = HealthProbe(router._probe_once,
                                        interval=probe_interval)
            router._probe.start()
        return router

    def detach(self) -> None:
        """Drop this router's sockets without touching the workers.

        The counterpart of :meth:`attach` for a front process going away:
        :meth:`shutdown` would stop the fleet, which an attached router
        does not own.
        """
        if self._probe is not None:
            self._probe.stop()
            self._probe = None
        with self._lock:
            handles, self._workers = dict(self._workers), {}
            self._ring = HashRing()
        for handle in handles.values():
            handle.close_pool()

    def endpoints(self) -> dict[str, int]:
        """Worker name -> port (what :meth:`attach` needs to rebuild)."""
        with self._lock:
            return {name: handle.port
                    for name, handle in self._workers.items()}

    def worker_names(self) -> list[str]:
        with self._lock:
            return sorted(self._workers)

    def owner_of(self, session_id: str) -> str:
        with self._lock:
            return self._ring.owner(session_id)

    def kill_worker(self, name: str) -> None:
        """SIGKILL a worker (failure injection: tests, self-test)."""
        with self._lock:
            handle = self._workers.get(name)
        if handle is None or handle.process is None:
            raise ServiceError(f"no spawned worker named {name!r}")
        handle.process.kill()
        handle.process.join(timeout=10.0)

    def restart_worker(self, name: str) -> None:
        """Drain one worker and bring up a replacement (rolling restart).

        Sequence: take it off the ring (new traffic reroutes), tell it to
        drain (journals flushed, quota persisted), shut it down, spawn the
        replacement, re-add it, then broadcast a rebalance so every worker
        releases the sessions the restored ring no longer maps to it —
        without this, a session resurrected elsewhere during the restart
        would be double-hosted when the name rejoins.
        """
        with self._lock:
            handle = self._workers.get(name)
            if handle is None:
                raise ServiceError(f"no worker named {name!r}")
            if handle.process is None:
                raise ServiceError(
                    f"worker {name!r} was attached, not spawned; "
                    f"restart it from its owning process"
                )
            self._ring.remove(name)
        try:
            if handle.alive():
                try:
                    self._control(handle, "drain", attempts=1)
                    self._control(handle, "shutdown", attempts=1)
                except (OSError, ServiceError):
                    pass  # already dying; journals are the safety net
                handle.process.join(timeout=30.0)
                if handle.process.is_alive():
                    handle.process.kill()
                    handle.process.join(timeout=10.0)
            handle.close_pool()
            replacement = self._spawn(handle.spec)
        except BaseException:
            with self._lock:
                self._workers.pop(name, None)
            raise
        with self._lock:
            self._workers[name] = replacement
            self._ring.add(name)
            self._breakers.pop(name, None)  # the replacement starts closed
            self.worker_restarts += 1
        self._broadcast_rebalance()

    def rolling_restart(self) -> None:
        """Restart every worker one at a time; the service stays up."""
        for name in self.worker_names():
            self.restart_worker(name)

    def _broadcast_rebalance(self) -> None:
        with self._lock:
            members = sorted(self._ring.members)
            handles = list(self._workers.values())
        for handle in handles:
            try:
                self._control(handle, "rebalance", {"members": members},
                              attempts=1)
            except (OSError, ServiceError):
                # A dead worker has nothing to release — but count the
                # skip so chaos runs can prove nothing was silently lost.
                with self._lock:
                    self.rebalance_failures += 1
                continue

    # ------------------------------------------------------------------
    # Control-plane round trips
    # ------------------------------------------------------------------
    def _control(self, handle: _WorkerHandle, op: str,
                 args: dict[str, Any] | None = None,
                 attempts: int | None = None) -> dict[str, Any]:
        """One control round trip under the same retry policy as user
        traffic. Control ops are idempotent (and carry a request id for
        the worker's dedup cache anyway); ``attempts=1`` opts out for
        callers that own their failure handling (probe, drain, stats)."""
        control = protocol.WorkerControl(op=op, args=args or {},
                                         request_id=uuid.uuid4().hex)
        policy = self.retry_policy
        max_attempts = policy.max_attempts if attempts is None else attempts
        deadline = time.monotonic() + self.request_timeout
        attempt = 0
        while True:
            remaining = deadline - time.monotonic()
            try:
                payload = handle.call(control.to_json(),
                                      max(0.05, remaining))
                break
            except WorkerFailure:
                attempt += 1
                remaining = deadline - time.monotonic()
                if (attempt >= max_attempts or remaining <= 0
                        or not handle.alive()):
                    raise
                with self._lock:
                    self.retries += 1
                time.sleep(min(policy.delay(attempt), remaining))
        response = protocol.Response.from_json(payload)
        if not response.ok:
            raise protocol.exception_from_response(response)
        return response.result or {}

    # ------------------------------------------------------------------
    # Routed user traffic (the SessionManager-shaped surface)
    # ------------------------------------------------------------------
    def handle_request(self, request: protocol.Request) -> protocol.Response:
        try:
            if request.action == "create_session":
                # Mint the id router-side: placement needs the id *before*
                # any worker is involved.
                session_id = (request.params.get("session_id")
                              or request.session_id or uuid.uuid4().hex[:12])
                request = protocol.Request(
                    action="create_session",
                    params=dict(request.params, session_id=session_id),
                    session_id=str(session_id),
                    request_id=request.request_id,
                    auth_token=request.auth_token,
                )
                return self._route(str(session_id), request)
            if request.action == "stats":
                return protocol.Response.success(self.stats(), request)
            if request.action == "tables":
                return self._any_worker_request(request)
            session_id = request.session_id or request.params.get("session_id")
            if not session_id:
                return protocol.Response.failure(
                    protocol.ProtocolError(
                        f"action {request.action!r} needs a session_id"
                    ), request,
                )
            return self._route(str(session_id), request)
        except ServiceError as error:
            return protocol.Response.failure(error, request)

    def _route(self, session_id: str,
               request: protocol.Request) -> protocol.Response:
        """Send to the owner under the retry policy, breaker, and budget.

        Three failure regimes, three answers:

        * **worker died** — drop the member; the ring reroutes this
          session (and its siblings) to live owners, which resurrect
          from the shared journals on the immediate retry (no backoff:
          the new owner is healthy);
        * **transport flake, worker alive** — bounded retries with
          exponential backoff + full jitter *to the same owner*, inside
          a deadline budget that never exceeds ``request_timeout``;
        * **worker flapping** — its breaker opens after consecutive
          failures and requests fail fast (typed ``WorkerFailure``)
          until the half-open probe heals it. An open breaker never
          reroutes a *live* worker's sessions: two workers appending to
          one journal would corrupt it.

        The retry is exactly-once end to end: one ``request_id`` is
        minted here and reused across every attempt, and the worker's
        dedup cache replays its recorded reply if the action already
        applied (the at-least-once window between apply and reply).
        """
        if not request.request_id:
            request = dataclasses.replace(request,
                                          request_id=uuid.uuid4().hex)
        policy = self.retry_policy
        deadline = time.monotonic() + self.request_timeout
        attempt = 0
        while True:
            with self._lock:
                self.routed_requests += 1
                owner = self._ring.owner(session_id)
                handle = self._workers[owner]
                breaker = self._breakers.setdefault(
                    owner,
                    CircuitBreaker(
                        failure_threshold=self._breaker_threshold,
                        reset_timeout=self._breaker_reset,
                    ),
                )
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise WorkerFailure(
                    f"request for session {session_id!r} ran out of its "
                    f"{self.request_timeout:g}s budget retrying worker "
                    f"{owner!r}"
                )
            # allow() may hand out the one half-open trial, so after this
            # point every path must record a success or a failure — the
            # deadline was checked above for exactly that reason.
            if not breaker.allow():
                if not handle.alive():
                    self._remove_dead(owner)
                    continue
                raise WorkerFailure(
                    f"worker {owner!r} circuit is open (retry after "
                    f"{breaker.reset_timeout:g}s)"
                )
            try:
                payload = handle.call(request.to_json(),
                                      max(0.05, remaining))
            except WorkerFailure:
                if breaker.record_failure():
                    with self._lock:
                        self.breaker_opens += 1
                if not handle.alive():
                    self._remove_dead(owner)
                    with self._lock:
                        self.retries += 1
                    continue  # rerouted owner is healthy: retry now
                attempt += 1
                remaining = deadline - time.monotonic()
                if attempt >= policy.max_attempts or remaining <= 0:
                    raise
                with self._lock:
                    self.retries += 1
                time.sleep(min(policy.delay(attempt), remaining))
                continue
            breaker.record_success()
            return protocol.Response.from_json(payload)

    def _remove_dead(self, name: str) -> None:
        with self._lock:
            handle = self._workers.pop(name, None)
            if handle is None:
                return  # another thread already buried it
            if name in self._ring:
                if len(self._workers) == 0:
                    self._workers[name] = handle  # keep the error readable
                    raise ServiceError(
                        f"last fleet worker {name!r} died; nothing to "
                        f"fail over to"
                    )
                self._ring.remove(name)
                self.migrations += 1
            self._breakers.pop(name, None)
        handle.close_pool()

    def _breaker_for(self, name: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(name)
            if breaker is None:
                breaker = CircuitBreaker(
                    failure_threshold=self._breaker_threshold,
                    reset_timeout=self._breaker_reset,
                )
                self._breakers[name] = breaker
            return breaker

    def _probe_once(self) -> None:
        """One health sweep: ping every worker, keep breakers honest,
        bury the dead before a user request trips over them."""
        with self._lock:
            handles = dict(self._workers)
        for name, handle in sorted(handles.items()):
            breaker = self._breaker_for(name)
            try:
                self._control(handle, "ping", attempts=1)
            except (OSError, ServiceError):
                if breaker.record_failure():
                    with self._lock:
                        self.breaker_opens += 1
                if not handle.alive():
                    try:
                        self._remove_dead(name)
                    except ServiceError:
                        pass  # last worker: requests will report it
            else:
                # A live ping closes the breaker early — faster than
                # waiting out reset_timeout on the request path.
                breaker.record_success()

    def _any_worker_request(self, request: protocol.Request
                            ) -> protocol.Response:
        with self._lock:
            handles = list(self._workers.values())
        last_error: Exception | None = None
        for handle in handles:
            try:
                payload = handle.call(request.to_json(), self.request_timeout)
                return protocol.Response.from_json(payload)
            except WorkerFailure as error:
                last_error = error
        raise WorkerFailure(f"no worker answered: {last_error}")

    # ------------------------------------------------------------------
    # SessionManager-shaped conveniences (frontends + tests)
    # ------------------------------------------------------------------
    def apply(self, session_id: str, action: str,
              params: dict[str, Any] | None = None,
              auth_token: str | None = None) -> dict[str, Any]:
        response = self._route(session_id, protocol.Request(
            action=action, params=params or {}, session_id=session_id,
            auth_token=auth_token,
        ))
        if not response.ok:
            raise protocol.exception_from_response(response)
        return response.result or {}

    def create_session(self, session_id: str | None = None) -> str:
        params = {"session_id": session_id} if session_id else {}
        response = self.handle_request(
            protocol.Request(action="create_session", params=params)
        )
        if not response.ok:
            raise protocol.exception_from_response(response)
        return response.result["session_id"]

    def close_session(self, session_id: str, drop_journal: bool = False,
                      auth_token: str | None = None) -> None:
        params: dict[str, Any] = {}
        if drop_journal:
            params["drop_journal"] = True
        response = self._route(session_id, protocol.Request(
            action="close_session", params=params, session_id=session_id,
            auth_token=auth_token,
        ))
        if not response.ok:
            raise protocol.exception_from_response(response)

    def session_auth_token(self, session_id: str) -> str | None:
        with self._lock:
            owner = self._ring.owner(session_id)
            handle = self._workers[owner]
        return self._control(
            handle, "token", {"session_id": session_id}
        ).get("auth_token")

    def recover_all(self) -> list[str]:
        """Warm-start: every journaled session resumed on its ring owner."""
        by_owner: dict[str, list[str]] = {}
        for session_id in journaled_sessions(self.journal_dir):
            by_owner.setdefault(self.owner_of(session_id), []).append(
                session_id
            )
        resumed: list[str] = []
        for owner, ids in sorted(by_owner.items()):
            with self._lock:
                handle = self._workers[owner]
            resumed.extend(
                self._control(handle, "resume", {"session_ids": ids})
                .get("resumed", [])
            )
        return resumed

    def add_action_observer(self, observer: Callable[..., Any]) -> None:
        """Accepted for SessionManager duck-typing; fleet workers live in
        other processes, so in-process observers can never fire."""

    def add_lifecycle_observer(self, observer: Callable[..., Any]) -> None:
        """Accepted for SessionManager duck-typing (see above)."""

    def with_session(self, session_id: str, fn: Callable[..., Any],
                     auth_token: str | None = None) -> Any:
        raise ServiceError(
            "SSE streaming is not yet proxied across the fleet boundary; "
            "serve streams from a single-process deployment (the "
            "'restore'-frame follow-on in ROADMAP covers fleet SSE)"
        )

    def stats(self) -> dict[str, Any]:
        with self._lock:
            handles = dict(self._workers)
            routed = self.routed_requests
            migrations = self.migrations
            restarts = self.worker_restarts
            retries = self.retries
            breaker_opens = self.breaker_opens
            rebalance_failures = self.rebalance_failures
            breakers = {name: breaker.state
                        for name, breaker in sorted(self._breakers.items())
                        if name in handles}
        per_worker: dict[str, Any] = {}
        totals = {"live_sessions": 0, "created": 0, "resumed": 0,
                  "evicted": 0, "actions": 0}
        for name, handle in sorted(handles.items()):
            try:
                worker_stats = self._control(handle, "stats", attempts=1)
            except (OSError, ServiceError):
                per_worker[name] = {"alive": False}
                continue
            per_worker[name] = worker_stats
            for key in totals:
                totals[key] += int(worker_stats.get(key, 0))
        fleet: dict[str, Any] = {
            "workers": sorted(handles),
            "routed_requests": routed,
            "migrations": migrations,
            "worker_restarts": restarts,
            "retries": retries,
            "breaker_opens": breaker_opens,
            "rebalance_failures": rebalance_failures,
            "breakers": breakers,
            "per_worker": per_worker,
        }
        if self._probe is not None:
            fleet["probe"] = self._probe.stats()
        return {**totals, "fleet": fleet}

    def shutdown(self) -> None:
        """Graceful fleet stop: drain + shutdown every worker, then join."""
        if self._probe is not None:
            self._probe.stop()
            self._probe = None
        with self._lock:
            handles, self._workers = dict(self._workers), {}
            self._ring = HashRing()
        for handle in handles.values():
            try:
                self._control(handle, "shutdown", attempts=1)
            except (OSError, ServiceError):
                pass  # already dead; journals hold its sessions
            handle.close_pool()
        for handle in handles.values():
            if handle.process is None:
                continue
            handle.process.join(timeout=30.0)
            if handle.process.is_alive():  # pragma: no cover - stuck worker
                handle.process.kill()
                handle.process.join(timeout=10.0)
