"""Concurrent session hosting over one shared typed-graph database.

The paper's user study ran many participants against one ETable server
(Section 8); related navigation-server work (Wheeldon et al.) observes the
same workload shape: *many cheap stateful sessions over one shared
database*. The :class:`SessionManager` is that shape made concrete:

* every session is an ordinary :class:`~repro.core.session.EtableSession`,
  serialized by its own lock (a browsing session is inherently sequential —
  one user, one action at a time);
* all sessions share one immutable ``SchemaGraph``/``InstanceGraph`` and
  one thread-safe :class:`~repro.core.cache.CachingExecutor`, so the prefix
  work of one user becomes the cache hit of another — the PR 2
  plan-and-reuse engine amortized across the whole user population;
* sessions are evicted by idle TTL and by LRU pressure, but eviction is
  cheap to undo: each session's durable action journal
  (:mod:`repro.service.journal`) lets the manager resurrect it on the next
  request, replaying through the shared cache.

The manager speaks :mod:`repro.service.protocol`; the HTTP frontend and the
throughput bench are thin clients of :meth:`apply` / :meth:`handle_request`.
"""

from __future__ import annotations

import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.analysis.runtime import assert_locked
from repro.errors import (
    AuthError,
    Degraded,
    ProtocolError,
    QuotaExceeded,
    ReproError,
    ServiceError,
    UnknownSession,
)
from repro.tgm.instance_graph import InstanceGraph
from repro.tgm.schema_graph import SchemaGraph
from repro.core.cache import CachingExecutor
from repro.core.session import EtableSession
from repro.service import protocol
from repro.service.journal import (
    JOURNAL_SUFFIX,
    ActionJournal,
    replay_records,
)


@dataclass
class ManagedSession:
    """One hosted session plus its lock, journal, and usage clock."""

    session_id: str
    session: EtableSession
    lock: threading.Lock = field(default_factory=threading.Lock)
    journal: ActionJournal | None = None
    created_at: float = 0.0
    last_used: float = 0.0
    actions: int = 0
    # Per-session bearer token (None = auth not required) and the fixed
    # quota window's bookkeeping; all three are read and written only
    # while holding ``lock``, like the session itself.
    auth_token: str | None = None
    quota_window_start: float = 0.0
    quota_used: int = 0


class SessionManager:
    """Hosts many concurrent ETable sessions over one shared graph."""

    def __init__(
        self,
        schema: SchemaGraph,
        graph: InstanceGraph,
        row_limit: int | None = None,
        max_sessions: int = 256,
        ttl_seconds: float | None = 1800.0,
        journal_dir: str | Path | None = None,
        executor: CachingExecutor | None = None,
        fsync_journal: bool = False,
        engine: str = "planned",
        workers: int | None = None,
        compact_every: int | None = 64,
        adaptive_threshold: bool = False,
        require_auth: bool = False,
        quota_actions: int | None = None,
        quota_window: float = 60.0,
    ) -> None:
        if engine not in ("planned", "parallel", "incremental", "pushdown"):  # repro: engine-surface service
            raise ServiceError(
                f"the service executes through the caching planner; "
                f"engine must be 'planned', 'parallel', 'incremental', "
                f"or 'pushdown', not {engine!r}"
            )
        if compact_every is not None and compact_every < 1:
            raise ServiceError(
                f"compact_every must be >= 1 (or None), got {compact_every}"
            )
        if quota_actions is not None and quota_actions < 1:
            raise ServiceError(
                f"quota_actions must be >= 1 (or None), got {quota_actions}"
            )
        if quota_window <= 0:
            raise ServiceError(
                f"quota_window must be > 0 seconds, got {quota_window}"
            )
        self.schema = schema
        self.graph = graph
        self.row_limit = row_limit
        self.max_sessions = max_sessions
        self.ttl_seconds = ttl_seconds
        self.journal_dir = Path(journal_dir) if journal_dir else None
        self.fsync_journal = fsync_journal
        self.engine = engine
        self.workers = workers
        # Journal compaction policy (ROADMAP follow-up): checkpoint long
        # append-only journals every N mutating actions so replay cost
        # stays bounded even for sessions that never revert. None disables.
        self.compact_every = compact_every
        # Access control: with require_auth each session gets a bearer
        # token at create time (persisted in its journal meta record, so a
        # resumed session honors the token its client already holds), and
        # every session-scoped request must present it. quota_actions caps
        # *mutating* actions per fixed quota_window seconds per session —
        # the lever that keeps one runaway client from starving the other
        # sessions sharing the executor.
        self.require_auth = require_auth
        self.quota_actions = quota_actions
        self.quota_window = quota_window
        # Post-action hooks (the stream hub): called under the session
        # lock after each accepted mutating action, so observers see
        # session states in exact action order.
        self._observers: list[Callable[[str, str, EtableSession], None]] = []
        # Session-end hooks (the stream hub again): called with
        # ``(session_id, event)`` after a session leaves memory — event is
        # "closed" (deliberate close / drain) or "evicted" (TTL or LRU) —
        # so SSE subscribers get a terminal frame instead of hanging on
        # keepalives forever.
        self._lifecycle_observers: list[Callable[[str, str], None]] = []
        self.observer_errors = 0  # guarded-by: self._lock
        # One executor for everyone: cross-session prefix reuse is the
        # service's whole performance story. With engine="parallel" the
        # executor shards big delta joins across a shared worker pool;
        # results (and therefore cache contents) are bit-identical. With
        # engine="incremental" each hosted session additionally wraps this
        # shared executor in its own per-session IncrementalExecutor (the
        # lineage chain is private; the fallback planner and its caches are
        # shared), optionally over the same worker pool. With
        # engine="pushdown" the executor routes oversized delta joins to
        # one shared SQLite image of the graph (its own lock serializes
        # the service's request threads).
        if executor is None:
            if engine == "parallel" or (engine == "incremental"
                                        and workers is not None):
                from repro.core.planner import parallel_context

                executor = CachingExecutor(
                    graph,
                    parallel=parallel_context(
                        workers, adaptive=adaptive_threshold
                    ),
                )
            elif engine == "pushdown":
                from repro.relational.backends.pushdown import (
                    pushdown_context,
                )

                executor = CachingExecutor(
                    graph, pushdown=pushdown_context(graph)
                )
            else:
                executor = CachingExecutor(graph)
        self.executor = executor
        self._sessions: dict[str, ManagedSession] = {}  # guarded-by: self._lock
        # Sessions whose journal stopped accepting writes (disk full, IO
        # error): session_id -> reason. A degraded session is read-only —
        # reads resurrect it from the journal's durable prefix, mutating
        # actions get a typed Degraded error — until an operator restarts
        # with the disk healed.
        self._degraded: dict[str, str] = {}  # guarded-by: self._lock
        self._lock = threading.RLock()
        self.created = 0  # guarded-by: self._lock
        self.resumed = 0  # guarded-by: self._lock
        self.evicted = 0  # guarded-by: self._lock
        self.total_actions = 0  # guarded-by: self._lock
        self.compactions = 0  # guarded-by: self._lock
        self.degraded = 0  # guarded-by: self._lock

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def create_session(self, session_id: str | None = None) -> str:
        """Open a new session; returns its id."""
        with self._lock:
            if session_id is None:
                session_id = uuid.uuid4().hex[:12]
            if not _valid_session_id(session_id):
                raise ProtocolError(
                    f"invalid session id {session_id!r} (alphanumeric, "
                    f"'-' and '_' only, at most 64 chars)"
                )
            if session_id in self._sessions:
                raise ServiceError(f"session {session_id!r} already exists")
            managed = self._host(session_id)
            self.created += 1
            self._evict_over_capacity(protect=session_id)
            return managed.session_id

    def close_session(self, session_id: str, drop_journal: bool = False,
                      auth_token: str | None = None) -> None:
        """Close a session (its journal stays unless ``drop_journal``)."""
        with self._lock:
            managed = self._sessions.get(session_id)
            if (
                managed is not None
                and managed.auth_token is not None
                and auth_token != managed.auth_token
            ):
                raise AuthError(
                    f"session {session_id!r} requires a valid auth token"
                )
            managed = self._sessions.pop(session_id, None)
        if managed is None and not drop_journal:
            raise UnknownSession(f"no session {session_id!r}")
        if managed is not None and managed.journal is not None:
            # Wait for any in-flight action before closing the journal: it
            # was checked out before the pop above and must still be able
            # to record its (already accepted) action.
            with managed.lock:
                self._persist_quota(managed)
                managed.journal.close()
        if drop_journal and self.journal_dir is not None:
            path = self._journal_path(session_id)
            if path.exists():
                path.unlink()
        if managed is not None:
            self._notify_lifecycle(session_id, "closed")

    def session_ids(self) -> list[str]:
        with self._lock:
            return sorted(self._sessions)

    def shutdown(self) -> None:
        """Flush and close every hosted session's journal (graceful stop).

        Journaled sessions remain resumable: `recover_all` on a new
        manager over the same journal directory replays them verbatim.
        """
        with self._lock:
            drained = list(self._sessions.values())
            self._sessions.clear()
        for managed in drained:
            if managed.journal is not None:
                # Wait for any in-flight action before closing its journal
                # (same contract as close_session).
                with managed.lock:
                    self._persist_quota(managed)
                    managed.journal.close()

    def release_sessions(
        self, session_ids: list[str] | None = None
    ) -> list[str]:
        """Control-plane drain: close hosted sessions, keep their journals.

        The fleet worker's handoff hook — on drain, rebalance, or a
        rolling restart the router tells the old owner to release, and the
        new owner resurrects each session from its journal on the next
        request. Unlike :meth:`close_session` this bypasses per-session
        auth (it is never reachable from the public HTTP surface) and
        skips ids that are not currently live. Returns the released ids.
        """
        with self._lock:
            if session_ids is None:
                targets = list(self._sessions)
            else:
                targets = [sid for sid in session_ids if sid in self._sessions]
            released = [
                (sid, managed)
                for sid in targets
                if (managed := self._sessions.pop(sid, None)) is not None
            ]
        for session_id, managed in released:
            if managed.journal is not None:
                # Same contract as close_session: wait out any in-flight
                # action before flushing quota state and closing the file.
                with managed.lock:
                    self._persist_quota(managed)
                    managed.journal.close()
            self._notify_lifecycle(session_id, "closed")
        return [session_id for session_id, _ in released]

    # ------------------------------------------------------------------
    # The hot path
    # ------------------------------------------------------------------
    def _checkout_locked(self, session_id: str) -> ManagedSession:
        """Check out a session with its lock held (caller must release)."""
        while True:
            managed = self._checkout(session_id)
            managed.lock.acquire()
            with self._lock:
                still_hosted = self._sessions.get(session_id) is managed
            if still_hosted:
                return managed
            # Evicted between checkout and lock acquisition (its journal is
            # closed); check out the resurrected instance instead.
            managed.lock.release()

    def _check_access(self, managed: ManagedSession, action: str,
                      auth_token: str | None) -> None:
        """Auth + quota gate, under the session lock, before the action.

        The quota is a fixed window over *mutating* actions: reads
        (etable/history/plan) stay free so a throttled client can still
        render what it has. Rejected actions consume quota — the point is
        to bound a runaway client's load, not its success rate.
        """
        if managed.auth_token is not None and auth_token != managed.auth_token:
            raise AuthError(
                f"session {managed.session_id!r} requires a valid auth token"
            )
        if (
            self.quota_actions is not None
            and action in protocol.MUTATING_ACTIONS
        ):
            now = time.monotonic()
            if now - managed.quota_window_start >= self.quota_window:
                managed.quota_window_start = now
                managed.quota_used = 0
            if managed.quota_used >= self.quota_actions:
                raise QuotaExceeded(
                    f"session {managed.session_id!r} exceeded "
                    f"{self.quota_actions} mutating actions per "
                    f"{self.quota_window:g}s window"
                )
            managed.quota_used += 1

    def apply(self, session_id: str, action: str,
              params: dict[str, Any] | None = None,
              auth_token: str | None = None) -> dict[str, Any]:
        """Apply one protocol action to one session, journaling it.

        Thread-safe: the manager lock covers session lookup/eviction only;
        the action itself runs under the session's own lock, so distinct
        sessions execute concurrently while one session's actions stay
        strictly ordered.
        """
        params = params or {}
        compacted = False
        managed = self._checkout_locked(session_id)
        try:
            self._check_access(managed, action, auth_token)
            if action in protocol.MUTATING_ACTIONS:
                with self._lock:
                    reason = self._degraded.get(session_id)
                if reason is not None:
                    raise Degraded(
                        f"session {session_id!r} is read-only: {reason}"
                    )
            result = protocol.apply_action(managed.session, action, params)
            # Journal only after the action was accepted — a rejected
            # action must not poison replay.
            if managed.journal is not None and action in protocol.MUTATING_ACTIONS:
                if action == "revert":
                    try:
                        # Truncate-and-checkpoint: see repro.service.journal.
                        managed.journal.checkpoint(
                            protocol.history_to_json(managed.session.history)
                        )
                    except OSError as error:
                        raise self._degrade(managed, error) from error
                else:
                    try:
                        managed.journal.record_action(action, params)
                    except OSError as error:
                        raise self._degrade(managed, error) from error
                    if (
                        self.compact_every is not None
                        and managed.journal.actions_since_checkpoint
                        >= self.compact_every
                    ):
                        # Periodic compaction: same atomic checkpoint as a
                        # revert, so replay cost stays bounded for sessions
                        # that never revert. A *failed* compaction does not
                        # degrade the session — the action itself is already
                        # durable as a plain record, so the error propagates
                        # and the next action simply retries the checkpoint.
                        managed.journal.checkpoint(
                            protocol.history_to_json(managed.session.history)
                        )
                        compacted = True
            managed.actions += 1
            managed.last_used = time.monotonic()
            # Observers run under the session lock, *after* the action and
            # its journal record: the hub's frames are therefore serialized
            # in exact action order, and a frame is never emitted for an
            # action that a crash would lose.
            if self._observers and action in protocol.MUTATING_ACTIONS:
                self._notify_observers(session_id, action, managed.session)
        finally:
            managed.lock.release()
        with self._lock:
            self.total_actions += 1
            if compacted:
                self.compactions += 1
        return result

    def add_action_observer(
        self, observer: Callable[[str, str, EtableSession], None]
    ) -> None:
        """Register a post-action hook: ``observer(session_id, action,
        session)`` runs under the session lock after each accepted mutating
        action. Observer exceptions are counted, not propagated — a broken
        stream must not fail the user's action."""
        self._observers.append(observer)

    def _notify_observers(self, session_id: str, action: str,
                          session: EtableSession) -> None:
        for observer in list(self._observers):
            try:
                observer(session_id, action, session)
            except Exception:
                with self._lock:
                    self.observer_errors += 1

    def add_lifecycle_observer(
        self, observer: Callable[[str, str], None]
    ) -> None:
        """Register a session-end hook: ``observer(session_id, event)``
        runs after a session leaves memory, with event ``"closed"`` or
        ``"evicted"``. Exceptions are counted, not propagated."""
        self._lifecycle_observers.append(observer)

    def _notify_lifecycle(self, session_id: str, event: str) -> None:
        for observer in list(self._lifecycle_observers):
            try:
                observer(session_id, event)
            except Exception:
                with self._lock:
                    self.observer_errors += 1

    def with_session(self, session_id: str,
                     fn: Callable[[EtableSession], Any],
                     auth_token: str | None = None) -> Any:
        """Run ``fn(session)`` under the session's lock.

        Same checkout/resurrection/auth rules as :meth:`apply`, but without
        journaling or quota — for read-side consumers that need a view
        consistent with the observer stream (the hub's subscribe-time
        snapshot: taken under the same lock that orders the frames, so the
        snapshot plus subsequent frames can never interleave wrongly).
        """
        managed = self._checkout_locked(session_id)
        try:
            if (
                managed.auth_token is not None
                and auth_token != managed.auth_token
            ):
                raise AuthError(
                    f"session {session_id!r} requires a valid auth token"
                )
            managed.last_used = time.monotonic()
            return fn(managed.session)
        finally:
            managed.lock.release()

    def session_auth_token(self, session_id: str) -> str | None:
        """The live session's bearer token (None when auth is off)."""
        with self._lock:
            managed = self._sessions.get(session_id)
        return managed.auth_token if managed is not None else None

    def handle_request(self, request: protocol.Request) -> protocol.Response:
        """Serve one protocol request envelope (session mgmt included)."""
        try:
            if request.action == "create_session":
                session_id = self.create_session(
                    request.params.get("session_id") or request.session_id
                )
                result: dict[str, Any] = {"session_id": session_id}
                token = self.session_auth_token(session_id)
                if token is not None:
                    result["auth_token"] = token
                return protocol.Response.success(
                    result, request, session_id=session_id
                )
            if request.action == "close_session":
                session_id = self._required_session_id(request)
                self.close_session(
                    session_id,
                    drop_journal=bool(request.params.get("drop_journal")),
                    auth_token=request.auth_token,
                )
                return protocol.Response.success({"closed": session_id}, request)
            if request.action == "stats":
                return protocol.Response.success(self.stats(), request)
            if request.action == "tables":
                # The default table list is session-independent; serve it
                # without requiring a session (Figure 9, component 1).
                return protocol.Response.success(
                    {"tables": [t.name for t in self.schema.entity_types]},
                    request,
                )
            session_id = self._required_session_id(request)
            result = self.apply(session_id, request.action, request.params,
                                auth_token=request.auth_token)
            return protocol.Response.success(result, request)
        except ReproError as error:
            return protocol.Response.failure(error, request)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def resume_session(self, session_id: str) -> str:
        """Rebuild an evicted/crashed session from its journal."""
        with self._lock:
            if session_id in self._sessions:
                return session_id
            if self.journal_dir is None:
                raise UnknownSession(f"no session {session_id!r}")
            path = self._journal_path(session_id)
            if not path.exists():
                raise UnknownSession(
                    f"no live session or journal for {session_id!r}"
                )
            # Opening the journal scans it once: records to replay, torn
            # tail truncated, sequence counter restored.
            managed = self._host(session_id, existing_journal=True)
            # Pre-acquire the session lock *before* the session becomes
            # visible: a concurrent apply() that finds the entry queues
            # behind the replay instead of acting on (and journaling into)
            # a still-empty session.
            managed.lock.acquire()
        try:
            # Replay outside the manager lock (it can take a while).
            assert managed.journal is not None
            replay_records(managed.session, managed.journal.recovered_records)
            # Quota bookkeeping rides eviction/resurrection too: without
            # this, LRU pressure would hand a throttled session a fresh
            # window (the quota-reset bug this PR fixes).
            self._restore_quota(managed)
            managed.last_used = time.monotonic()
        except BaseException:
            # A failed replay must not leave a half-built session live.
            with self._lock:
                self._sessions.pop(session_id, None)
            if managed.journal is not None:
                managed.journal.close()
            raise
        finally:
            managed.lock.release()
        with self._lock:
            self.resumed += 1
            self._evict_over_capacity(protect=session_id)
        return session_id

    def recoverable_sessions(self) -> list[str]:
        """Session ids with a journal on disk (live ones included)."""
        if self.journal_dir is None:
            return []
        return sorted(
            path.name[: -len(JOURNAL_SUFFIX)]
            for path in self.journal_dir.glob(f"*{JOURNAL_SUFFIX}")
        )

    def recover_all(self) -> list[str]:
        """Resume every journaled session (service restart warm-up)."""
        resumed = []
        for session_id in self.recoverable_sessions():
            with self._lock:
                live = session_id in self._sessions
            if not live:
                self.resume_session(session_id)
                resumed.append(session_id)
        return resumed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        with self._lock:
            live = len(self._sessions)
            actions = self.total_actions
            created, resumed, evicted = self.created, self.resumed, self.evicted
            compactions = self.compactions
            observer_errors = self.observer_errors
            degraded = self.degraded
            degraded_live = len(self._degraded)
        return {
            "live_sessions": live,
            "created": created,
            "resumed": resumed,
            "evicted": evicted,
            "actions": actions,
            "journal_compactions": compactions,
            "degraded": degraded,
            "degraded_sessions": degraded_live,
            "engine": self.engine,
            "require_auth": self.require_auth,
            "quota_actions": self.quota_actions,
            "observer_errors": observer_errors,
            "cache": self.executor.stats_payload(),
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _host(self, session_id: str,  # requires-lock
              existing_journal: bool = False) -> ManagedSession:
        assert_locked(self._lock, "SessionManager._lock")
        session = EtableSession(
            self.schema, self.graph, row_limit=self.row_limit,
            executor=self.executor,
            engine=("incremental" if self.engine == "incremental"
                    else "planned"),
        )
        auth_token = uuid.uuid4().hex if self.require_auth else None
        journal = None
        if self.journal_dir is not None:
            path = self._journal_path(session_id)
            if not existing_journal and path.exists():
                raise ServiceError(
                    f"journal for session {session_id!r} already exists; "
                    f"resume it instead of re-creating it"
                )
            journal = ActionJournal(path, session_id,
                                    fsync=self.fsync_journal,
                                    auth_token=auth_token)
            # An existing journal's persisted token wins over the freshly
            # minted one: the resuming client still holds the original.
            auth_token = journal.auth_token if self.require_auth else None
        now = time.monotonic()
        managed = ManagedSession(
            session_id=session_id, session=session, journal=journal,
            created_at=now, last_used=now, auth_token=auth_token,
        )
        self._sessions[session_id] = managed
        return managed

    def _checkout(self, session_id: str) -> ManagedSession:
        with self._lock:
            self._evict_expired()
            managed = self._sessions.get(session_id)
        if managed is None:
            # Transparent resurrection: an evicted (or pre-restart) session
            # with a journal picks up exactly where it stopped.
            self.resume_session(session_id)
            with self._lock:
                managed = self._sessions.get(session_id)
            if managed is None:
                raise UnknownSession(f"no session {session_id!r}")
        return managed

    def _degrade(self, managed: ManagedSession, error: OSError) -> Degraded:
        """Flip a session read-only after its journal refused a write.

        The in-memory state already holds the action that failed to
        become durable; keeping it would break bit-identical resume, so
        the instance is dropped — the next *read* resurrects the session
        from the journal's durable prefix (which is exactly the state
        minus the lost action), while mutating actions get the typed
        ``Degraded`` error until an operator intervenes. Called with the
        session lock held (the same ordering as ``_checkout_locked``).
        """
        session_id = managed.session_id
        with self._lock:
            if self._sessions.get(session_id) is managed:
                del self._sessions[session_id]
            self._degraded[session_id] = (
                f"journal write failed ({error})"
            )
            self.degraded += 1
        if managed.journal is not None:
            try:
                managed.journal.close()
            except OSError:  # pragma: no cover - double disk failure
                pass
        return Degraded(
            f"session {session_id!r} is read-only: journal write failed "
            f"({error})"
        )

    def _journal_path(self, session_id: str) -> Path:
        assert self.journal_dir is not None
        # Validate on *every* path construction, not just create_session:
        # resume and drop_journal reach here with client-supplied ids, and
        # "../../etc/x" must never escape the journal directory.
        if not _valid_session_id(session_id):
            raise ProtocolError(
                f"invalid session id {session_id!r} (alphanumeric, "
                f"'-' and '_' only, at most 64 chars)"
            )
        return self.journal_dir / f"{session_id}{JOURNAL_SUFFIX}"

    def _evict_expired(self) -> None:  # requires-lock
        assert_locked(self._lock, "SessionManager._lock")
        if self.ttl_seconds is None:
            return
        deadline = time.monotonic() - self.ttl_seconds
        for session_id, managed in list(self._sessions.items()):
            if managed.last_used < deadline:
                self._evict_one(session_id)

    def _evict_over_capacity(self, protect: str | None = None) -> None:  # requires-lock
        """Evict LRU sessions past ``max_sessions``.

        ``protect`` exempts the session being created/resumed right now:
        when every *other* session is mid-action, the newcomer would
        otherwise be the only lockable victim, and create_session would
        return an id it just evicted.
        """
        assert_locked(self._lock, "SessionManager._lock")
        while len(self._sessions) > self.max_sessions:
            victims = sorted(
                (managed for managed in self._sessions.values()
                 if managed.session_id != protect),
                key=lambda m: m.last_used,
            )
            for managed in victims:
                if self._evict_one(managed.session_id):
                    break
            else:
                return  # every other session is mid-action; try again later

    def _evict_one(self, session_id: str) -> bool:  # requires-lock
        """Evict one session if it is idle right now (never mid-action)."""
        assert_locked(self._lock, "SessionManager._lock")
        managed = self._sessions.get(session_id)
        if managed is None:
            return False
        if not managed.lock.acquire(blocking=False):
            return False
        try:
            del self._sessions[session_id]
            if managed.journal is not None:
                self._persist_quota(managed)
                managed.journal.close()
            self.evicted += 1
        finally:
            managed.lock.release()
        self._notify_lifecycle(session_id, "evicted")
        return True

    def _persist_quota(self, managed: ManagedSession) -> None:
        """Flush live quota state into the journal before it closes.

        Caller holds ``managed.lock``. Only written when there is anything
        to carry: a throttled-or-partially-spent quota whose fixed window
        has not yet expired. Wall-clock expiry so the record survives a
        process boundary (fleet migration) where ``monotonic()`` does not.
        """
        if (
            self.quota_actions is None
            or managed.journal is None
            or managed.quota_used <= 0
        ):
            return
        remaining = self.quota_window - (
            time.monotonic() - managed.quota_window_start
        )
        if remaining <= 0:
            return  # window already over: resurrection starts fresh anyway
        managed.journal.record_quota(
            managed.quota_used, time.time() + remaining
        )

    def _restore_quota(self, managed: ManagedSession) -> None:
        """Re-arm quota state from the journal's last quota record.

        Caller holds ``managed.lock``. The record's wall-clock expiry is
        mapped back onto this process's monotonic clock; an expired record
        is ignored (the window lapsed while the session was cold).
        """
        if self.quota_actions is None or managed.journal is None:
            return
        record = None
        for candidate in managed.journal.recovered_records:
            if candidate.get("type") == "quota":
                record = candidate
        if record is None:
            return
        try:
            used = int(record["used"])
            expires_at = float(record["window_expires_at"])
        except (KeyError, TypeError, ValueError):
            return  # malformed bookkeeping must not block resurrection
        remaining = expires_at - time.time()
        if remaining <= 0 or used <= 0:
            return
        remaining = min(remaining, self.quota_window)
        managed.quota_used = used
        managed.quota_window_start = time.monotonic() - (
            self.quota_window - remaining
        )

    def _required_session_id(self, request: protocol.Request) -> str:
        session_id = request.session_id or request.params.get("session_id")
        if not session_id:
            raise ProtocolError(
                f"action {request.action!r} needs a session_id"
            )
        return str(session_id)


def _valid_session_id(session_id: object) -> bool:
    return (
        isinstance(session_id, str)
        and 0 < len(session_id) <= 64
        and all(c.isalnum() or c in "-_" for c in session_id)
    )
