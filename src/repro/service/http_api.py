"""Threaded HTTP frontend for the navigation service (stdlib only).

The paper's prototype served its ETable web interface from a central server
(Section 6); this module is that frontend, speaking the JSON wire protocol
of :mod:`repro.service.protocol` over ``http.server.ThreadingHTTPServer``
(one thread per connection — browsing actions are short, and all shared
state is behind the :class:`~repro.service.manager.SessionManager` locks).

Routes, mapped to the Figure 9 interface components:

=============================================  ===========================
route                                          Figure 9 counterpart
=============================================  ===========================
``GET  /healthz``                              liveness + session counts
``GET  /v1/stats``                             cache/manager introspection
``GET  /v1/tables``                            component 1, table list
``POST /v1/sessions``                          a user opens the interface
``DELETE /v1/sessions/<id>``                   the user leaves
``POST /v1/sessions/<id>/actions``             components 2+4: every user
                                               action (open/filter/nfilter/
                                               pivot/single/seeall/sort/
                                               hide/show/rank/revert) as a
                                               ``{"action", "params"}`` body
``GET  /v1/sessions/<id>/etable``              component 3, the enriched
                                               table (``offset``/``limit``/
                                               ``max_refs`` paginate)
``GET  /v1/sessions/<id>/history``             component 4, history panel
``GET  /v1/sessions/<id>/plan``                execution-plan introspection
=============================================  ===========================

Every response body is a protocol :class:`~repro.service.protocol.Response`
envelope; HTTP status codes mirror ``ok`` (200), domain rejections (400),
unknown sessions/routes (404).
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlparse

from repro.errors import (
    AuthError,
    Degraded,
    Overloaded,
    ProtocolError,
    QuotaExceeded,
    ReproError,
    UnknownSession,
)
from repro.service import protocol
from repro.service.manager import SessionManager
from repro.service.resilience import AdmissionControl

_MAX_BODY_BYTES = 8 * 1024 * 1024


def _bearer_token(value: str | None) -> str | None:
    """Token from an ``Authorization: Bearer <token>`` header value."""
    if not value:
        return None
    scheme, _, token = value.partition(" ")
    token = token.strip()
    if scheme.lower() == "bearer" and token:
        return token
    return None


class _RequestDrain:
    """Counts in-flight request dispatches so shutdown can drain them.

    Counting is per *request*, not per connection: a keep-alive connection
    idles in ``handle_one_request`` waiting for the client's next request,
    which must not hold shutdown hostage — only dispatches that have begun
    do. Once draining starts, new requests are refused with 503.
    """

    def __init__(self) -> None:
        self._idle = threading.Condition()
        self._inflight = 0  # guarded-by: self._idle
        self._draining = False  # guarded-by: self._idle

    def begin(self) -> bool:
        with self._idle:
            if self._draining:
                return False
            self._inflight += 1
            return True

    def end(self) -> None:
        with self._idle:
            self._inflight -= 1
            if self._inflight <= 0:
                self._idle.notify_all()

    def drain(self, timeout: float) -> bool:
        """Refuse new requests; wait for in-flight ones to finish."""
        deadline = time.monotonic() + timeout
        with self._idle:
            self._draining = True
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(remaining)
            return True


class NavigationRequestHandler(BaseHTTPRequestHandler):
    """Maps HTTP routes onto the session manager's protocol surface."""

    server_version = "EtableService/1"
    protocol_version = "HTTP/1.1"

    # The manager is attached to the *server* object (one per service).
    @property
    def manager(self) -> SessionManager:
        return self.server.manager  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    # HTTP verbs
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._guarded(self._handle_get)

    def do_POST(self) -> None:  # noqa: N802
        self._guarded(self._handle_post)

    def do_DELETE(self) -> None:  # noqa: N802
        self._guarded(self._handle_delete)

    def _guarded(self, handler: Any) -> None:
        """Run one request dispatch inside the server's drain counter.

        Admission control sits behind the drain check: a shed request is
        counted (and 503'd with ``Retry-After``) but never holds a slot,
        so load shedding itself stays O(1) under any backlog.
        """
        drain: _RequestDrain | None = getattr(self.server, "drain", None)
        if drain is not None and not drain.begin():
            self.close_connection = True
            self._send(503, protocol.Response.failure(
                "server is shutting down"
            ))
            return
        try:
            admission: AdmissionControl | None = getattr(
                self.server, "admission", None
            )
            if admission is not None and not admission.try_acquire():
                self._send(503, protocol.Response.failure(Overloaded(
                    "server is at its in-flight request cap; retry shortly"
                )))
                return
            try:
                handler()
            finally:
                if admission is not None:
                    admission.release()
        finally:
            if drain is not None:
                drain.end()

    def _handle_get(self) -> None:
        parsed = urlparse(self.path)
        parts = [part for part in parsed.path.split("/") if part]
        query = {key: values[-1]
                 for key, values in parse_qs(parsed.query).items()}
        try:
            # Inside the try: a malformed Content-Length surfaces as a
            # typed 400 protocol_error, not an unhandled 500.
            self._drain_body()
            if parts == ["healthz"]:
                stats = self.manager.stats()
                self._send(200, protocol.Response.success({
                    "status": "ok",
                    "live_sessions": stats["live_sessions"],
                    "actions": stats["actions"],
                }))
                return
            if parts == ["v1", "stats"]:
                stats = self.manager.stats()
                admission = getattr(self.server, "admission", None)
                if admission is not None:
                    stats["admission"] = admission.stats()
                self._send(200, protocol.Response.success(stats))
                return
            if parts == ["v1", "tables"]:
                response = self.manager.handle_request(
                    protocol.Request(action="tables")
                )
                self._send(200 if response.ok else 400, response)
                return
            if len(parts) == 4 and parts[:2] == ["v1", "sessions"]:
                session_id, leaf = parts[2], parts[3]
                if leaf == "etable":
                    self._dispatch(session_id, "etable", _etable_params(query))
                    return
                if leaf == "history":
                    self._dispatch(session_id, "history", {})
                    return
                if leaf == "plan":
                    self._dispatch(session_id, "plan", {})
                    return
            self._send(404, protocol.Response.failure(
                f"no route for GET {parsed.path}"
            ))
        except ReproError as error:
            self._send_error_response(error)

    def _handle_post(self) -> None:
        parsed = urlparse(self.path)
        parts = [part for part in parsed.path.split("/") if part]
        try:
            body = self._read_json_body()
            if parts == ["v1", "sessions"]:
                request = protocol.Request(
                    action="create_session",
                    params=body if isinstance(body, dict) else {},
                )
                response = self.manager.handle_request(request)
                self._send(200 if response.ok else 400, response)
                return
            if (len(parts) == 4 and parts[:2] == ["v1", "sessions"]
                    and parts[3] == "actions"):
                session_id = parts[2]
                if not isinstance(body, dict):
                    raise ProtocolError(
                        "action request body must be a JSON object"
                    )
                body.setdefault("session_id", session_id)
                token = _bearer_token(self.headers.get("Authorization"))
                if token is not None:
                    body.setdefault("auth_token", token)
                request = protocol.Request.from_json(body)
                if request.session_id != session_id:
                    raise ProtocolError(
                        "body session_id does not match the URL session"
                    )
                response = self.manager.handle_request(request)
                self._send(_status_of(response), response)
                return
            self._send(404, protocol.Response.failure(
                f"no route for POST {parsed.path}"
            ))
        except ReproError as error:
            self._send_error_response(error)

    def _handle_delete(self) -> None:
        parts = [part for part in urlparse(self.path).path.split("/") if part]
        try:
            self._drain_body()
            if len(parts) == 3 and parts[:2] == ["v1", "sessions"]:
                self.manager.close_session(
                    parts[2],
                    auth_token=_bearer_token(
                        self.headers.get("Authorization")
                    ),
                )
                self._send(200, protocol.Response.success(
                    {"closed": parts[2]}, session_id=parts[2]
                ))
                return
            self._send(404, protocol.Response.failure(
                f"no route for DELETE {self.path}"
            ))
        except ReproError as error:
            self._send_error_response(error)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _dispatch(self, session_id: str, action: str,
                  params: dict[str, Any]) -> None:
        request = protocol.Request(
            action=action, params=params, session_id=session_id,
            auth_token=_bearer_token(self.headers.get("Authorization")),
        )
        response = self.manager.handle_request(request)
        self._send(_status_of(response), response)

    def _body_length(self) -> int:
        """Parse Content-Length; a malformed header is a typed 400.

        The naive ``int(...)`` here used to let a garbage header escape as
        a ValueError — a 500 for what is plainly a client protocol error.
        The connection cannot be reused either way: with an unparseable
        length the body boundary is unknowable.
        """
        raw = self.headers.get("Content-Length") or 0
        try:
            length = int(raw)
            if length < 0:
                raise ValueError(length)
        except ValueError:
            self.close_connection = True
            raise ProtocolError(
                f"Content-Length header is not an integer: {raw!r}"
            ) from None
        return length

    def _read_json_body(self) -> Any:
        length = self._body_length()
        if length > _MAX_BODY_BYTES:
            # Too big to drain; the connection must not be reused with the
            # unread body still in the stream.
            self.close_connection = True
            raise ProtocolError(f"request body too large ({length} bytes)")
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(f"request body is not JSON: {error}") from None

    def _drain_body(self) -> None:
        """Consume a declared body on verbs that ignore it (GET/DELETE).

        HTTP/1.1 keep-alive parses the next request where the last one
        ended; unread body bytes would desync the connection.
        """
        length = self._body_length()
        if length <= 0:
            return
        if length > _MAX_BODY_BYTES:
            self.close_connection = True
            return
        remaining = length
        while remaining > 0:
            chunk = self.rfile.read(min(65536, remaining))
            if not chunk:
                break
            remaining -= len(chunk)

    def _send(self, status: int, response: protocol.Response) -> None:
        payload = json.dumps(response.to_json(), default=str).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(payload)))
        if response.error_type == "overloaded":
            admission = getattr(self.server, "admission", None)
            retry_after = admission.retry_after if admission else 1.0
            self.send_header("Retry-After", str(max(1, round(retry_after))))
        self.end_headers()
        self.wfile.write(payload)

    def _send_error_response(self, error: ReproError) -> None:
        if isinstance(error, UnknownSession):
            status = 404
        elif isinstance(error, AuthError):
            status = 401
        elif isinstance(error, QuotaExceeded):
            status = 429
        elif isinstance(error, (Overloaded, Degraded)):
            status = 503
        else:
            status = 400
        # Pass the exception itself so the envelope keeps its
        # machine-readable error_type, same as the handle_request path.
        self._send(status, protocol.Response.failure(error))


def _status_of(response: protocol.Response) -> int:
    if response.ok:
        return 200
    if response.error_type == "unknown_session":
        return 404
    if response.error_type == "auth_error":
        return 401
    if response.error_type == "quota_exceeded":
        return 429
    if response.error_type in ("overloaded", "degraded"):
        return 503
    return 400


def _etable_params(query: dict[str, str]) -> dict[str, Any]:
    params: dict[str, Any] = {}
    for name in ("offset", "limit", "max_refs"):
        if name in query:
            # Validate at the HTTP edge so "?limit=abc" is a typed 400
            # protocol_error here, same as it would be from the protocol
            # layer's own _int_param — never an unhandled ValueError.
            try:
                params[name] = int(query[name])
            except ValueError:
                raise ProtocolError(
                    f"query param {name!r} must be an integer, "
                    f"got {query[name]!r}"
                ) from None
    if query.get("include_history") in ("1", "true", "yes"):
        params["include_history"] = True
    return params


class NavigationServer:
    """A running HTTP service around one :class:`SessionManager`.

    ``port=0`` binds an ephemeral port (tests, CI); :meth:`start` serves on
    a daemon thread so the caller owns the lifecycle.
    """

    def __init__(self, manager: SessionManager, host: str = "127.0.0.1",
                 port: int = 8080, verbose: bool = False,
                 max_inflight: int | None = None) -> None:
        self.manager = manager
        self.httpd = ThreadingHTTPServer(
            (host, port), NavigationRequestHandler
        )
        self.httpd.daemon_threads = True
        self.httpd.manager = manager  # type: ignore[attr-defined]
        self.httpd.verbose = verbose  # type: ignore[attr-defined]
        self.drain = _RequestDrain()
        self.httpd.drain = self.drain  # type: ignore[attr-defined]
        self.admission = AdmissionControl(max_inflight=max_inflight)
        self.httpd.admission = self.admission  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "NavigationServer":
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="etable-http", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self.httpd.serve_forever()

    def shutdown(self, drain_timeout: float = 5.0) -> None:
        """Graceful stop: no new requests, drain in-flight, then close.

        ``httpd.shutdown()`` stops the accept loop; the drain then refuses
        further requests on live keep-alive connections (503) and blocks
        until every dispatch that already began has written its response —
        so a SIGTERM never truncates an in-flight action's journal append
        or response body.
        """
        self.httpd.shutdown()
        self.drain.drain(drain_timeout)
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
