"""Multi-user navigation service over the ETable core (Sections 6, 8, 9).

The reproduction's client–server layer: many concurrent
:class:`~repro.core.session.EtableSession` s hosted over one shared graph
and one shared plan-and-reuse cache, a versioned JSON wire protocol, a
durable per-session action journal, and a stdlib threaded HTTP frontend.

    from repro.service import SessionManager, NavigationServer

    manager = SessionManager(schema, graph, journal_dir="journals")
    server = NavigationServer(manager, port=8080).start()
"""

from repro.service.journal import ActionJournal, read_records, replay_journal
from repro.service.manager import ManagedSession, SessionManager
from repro.service.http_api import NavigationServer
from repro.service.protocol import (
    PROTOCOL_VERSION,
    Request,
    Response,
    apply_action,
    condition_from_json,
    condition_to_json,
    etable_from_json,
    etable_to_json,
    history_from_json,
    history_to_json,
    pattern_from_json,
    pattern_to_json,
)

__all__ = [
    "ActionJournal",
    "ManagedSession",
    "NavigationServer",
    "PROTOCOL_VERSION",
    "Request",
    "Response",
    "SessionManager",
    "apply_action",
    "condition_from_json",
    "condition_to_json",
    "etable_from_json",
    "etable_to_json",
    "history_from_json",
    "history_to_json",
    "pattern_from_json",
    "pattern_to_json",
    "read_records",
    "replay_journal",
]
