"""Multi-user navigation service over the ETable core (Sections 6, 8, 9).

The reproduction's client–server layer: many concurrent
:class:`~repro.core.session.EtableSession` s hosted over one shared graph
and one shared plan-and-reuse cache, a versioned JSON wire protocol, a
durable per-session action journal, and two stdlib HTTP frontends — a
threaded request/response server and an asyncio server that additionally
streams ETable delta frames to subscribed clients over SSE.

    from repro.service import SessionManager, NavigationServer

    manager = SessionManager(schema, graph, journal_dir="journals")
    server = NavigationServer(manager, port=8080).start()

    from repro.service import AsyncNavigationServer

    server = AsyncNavigationServer(manager, port=8080).start()
"""

from repro.service import faults
from repro.service.async_server import AsyncNavigationServer
from repro.service.faults import FaultInjector, FaultRule, InjectedFault
from repro.service.fleet import FleetRouter, FleetWorker, HashRing
from repro.service.journal import ActionJournal, read_records, replay_journal
from repro.service.manager import ManagedSession, SessionManager
from repro.service.http_api import NavigationServer
from repro.service.resilience import (
    AdmissionControl,
    CircuitBreaker,
    HealthProbe,
    RetryPolicy,
)
from repro.service.protocol import (
    PROTOCOL_VERSION,
    STREAM_VERSION,
    DeltaFrame,
    Request,
    Response,
    WorkerControl,
    apply_action,
    exception_from_response,
    condition_from_json,
    condition_to_json,
    etable_from_json,
    etable_to_json,
    frame_from_json,
    frame_to_json,
    history_from_json,
    history_to_json,
    pattern_from_json,
    pattern_to_json,
)
from repro.service.stream import (
    FrameSource,
    StreamHub,
    StreamStats,
    build_frame,
    coalesce_frame,
    fold_frame,
    payload_bytes,
)

__all__ = [
    "ActionJournal",
    "AdmissionControl",
    "AsyncNavigationServer",
    "CircuitBreaker",
    "DeltaFrame",
    "FaultInjector",
    "FaultRule",
    "FleetRouter",
    "FleetWorker",
    "FrameSource",
    "HashRing",
    "HealthProbe",
    "InjectedFault",
    "ManagedSession",
    "NavigationServer",
    "PROTOCOL_VERSION",
    "Request",
    "Response",
    "RetryPolicy",
    "STREAM_VERSION",
    "SessionManager",
    "StreamHub",
    "StreamStats",
    "WorkerControl",
    "apply_action",
    "faults",
    "exception_from_response",
    "build_frame",
    "coalesce_frame",
    "condition_from_json",
    "condition_to_json",
    "etable_from_json",
    "etable_to_json",
    "fold_frame",
    "frame_from_json",
    "frame_to_json",
    "history_from_json",
    "history_to_json",
    "pattern_from_json",
    "pattern_to_json",
    "payload_bytes",
    "read_records",
    "replay_journal",
]
