"""Asyncio HTTP/SSE frontend: thousands of idle sessions, one process.

The threaded frontend (:mod:`repro.service.http_api`) spends a thread per
connection — fine for short request/response browsing, fatal for the
paper's real deployment shape where most sessions sit *idle* between user
actions but keep a live push channel open. This frontend is the classic
parse → dispatch → stream server core: one event loop owns every socket,
requests are parsed on the loop, blocking manager work is dispatched to a
small thread pool, and ETable deltas are *streamed* to subscribed clients
over SSE (``GET /v1/sessions/<id>/stream``) instead of being re-fetched
page by page. An idle subscribed session costs one socket and a few
queue objects — no thread, no polling.

Routes are the threaded frontend's exact surface plus the stream
endpoint; both speak the same :mod:`repro.service.protocol` envelopes, so
clients can't tell the frontends apart except by concurrency behavior.

The SSE wire format, one frame per accepted mutating action::

    id: <seq>
    event: frame
    data: {"version": 1, "seq": 3, "kind": "delta", ...}

with ``: ping`` comment lines while idle. Frame payloads are the
versioned :func:`repro.service.protocol.frame_to_json` messages; folding
them with :func:`repro.service.stream.fold_frame` reproduces the full
``GET .../etable`` payload cell for cell (the fuzzer proves it).
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any
from urllib.parse import parse_qs, urlparse

from repro.errors import Overloaded, ProtocolError, ReproError
from repro.service import protocol
from repro.service.http_api import _bearer_token, _etable_params, _status_of
from repro.service.manager import SessionManager
from repro.service.resilience import AdmissionControl
from repro.service.stream.hub import StreamHub

_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 8 * 1024 * 1024


def route_request(manager: SessionManager, method: str, path: str,
                  query: dict[str, str], body: Any,
                  auth_token: str | None) -> tuple[int, protocol.Response]:
    """The transport-independent route table (blocking; executor-side).

    Mirrors the threaded frontend's dispatch exactly — same URLs, same
    envelopes, same status mapping — so the two frontends stay
    behaviorally identical on the request/response surface.
    """
    parts = [part for part in path.split("/") if part]
    try:
        if method == "GET":
            if parts == ["healthz"]:
                stats = manager.stats()
                return 200, protocol.Response.success({
                    "status": "ok",
                    "live_sessions": stats["live_sessions"],
                    "actions": stats["actions"],
                })
            if parts == ["v1", "stats"]:
                return 200, protocol.Response.success(manager.stats())
            if parts == ["v1", "tables"]:
                response = manager.handle_request(
                    protocol.Request(action="tables")
                )
                return (200 if response.ok else 400), response
            if len(parts) == 4 and parts[:2] == ["v1", "sessions"]:
                session_id, leaf = parts[2], parts[3]
                leaf_params: dict[str, Any] | None = None
                if leaf == "etable":
                    leaf_params = _etable_params(query)
                elif leaf in ("history", "plan"):
                    leaf_params = {}
                if leaf_params is not None:
                    request = protocol.Request(
                        action=leaf, params=leaf_params,
                        session_id=session_id, auth_token=auth_token,
                    )
                    response = manager.handle_request(request)
                    return _status_of(response), response
        elif method == "POST":
            if parts == ["v1", "sessions"]:
                request = protocol.Request(
                    action="create_session",
                    params=body if isinstance(body, dict) else {},
                )
                response = manager.handle_request(request)
                return (200 if response.ok else 400), response
            if (len(parts) == 4 and parts[:2] == ["v1", "sessions"]
                    and parts[3] == "actions"):
                session_id = parts[2]
                if not isinstance(body, dict):
                    raise ProtocolError(
                        "action request body must be a JSON object"
                    )
                body.setdefault("session_id", session_id)
                if auth_token is not None:
                    body.setdefault("auth_token", auth_token)
                request = protocol.Request.from_json(body)
                if request.session_id != session_id:
                    raise ProtocolError(
                        "body session_id does not match the URL session"
                    )
                response = manager.handle_request(request)
                return _status_of(response), response
        elif method == "DELETE":
            if len(parts) == 3 and parts[:2] == ["v1", "sessions"]:
                manager.close_session(parts[2], auth_token=auth_token)
                return 200, protocol.Response.success(
                    {"closed": parts[2]}, session_id=parts[2]
                )
        return 404, protocol.Response.failure(
            f"no route for {method} {path}"
        )
    except ReproError as error:
        response = protocol.Response.failure(error)
        return _status_of(response), response


class AsyncNavigationServer:
    """One event loop serving the whole protocol surface plus SSE streams.

    ``start()`` runs the loop on a daemon thread (tests, benches, and the
    self-test own the lifecycle); ``serve_forever()`` runs it in the
    calling thread (``examples/serve.py --frontend async``). ``shutdown()``
    is graceful from any thread: stop accepting, close streams, drain
    in-flight dispatches, then stop the loop.
    """

    def __init__(self, manager: SessionManager, host: str = "127.0.0.1",
                 port: int = 8080, verbose: bool = False,
                 max_queue: int = 32, ping_interval: float = 15.0,
                 max_inflight: int | None = None) -> None:
        self.manager = manager
        self._host = host
        self._port = port
        self.verbose = verbose
        self.max_queue = max_queue
        self.ping_interval = ping_interval
        self.admission = AdmissionControl(max_inflight=max_inflight)
        self.hub: StreamHub | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._inflight = 0  # loop-thread only
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._finished = threading.Event()
        self._bound: tuple[str, int] | None = None
        self._startup_error: BaseException | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        assert self._bound is not None, "server not started"
        return self._bound[0]

    @property
    def port(self) -> int:
        assert self._bound is not None, "server not started"
        return self._bound[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "AsyncNavigationServer":
        self._thread = threading.Thread(
            target=self.serve_forever, name="etable-async", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def serve_forever(self) -> None:
        try:
            asyncio.run(self._main())
        finally:
            self._started.set()  # unblock start() even on bind failure
            self._finished.set()

    def shutdown(self, drain_timeout: float = 5.0) -> None:
        """Graceful stop from any thread: drain, then stop the loop."""
        loop = self._loop
        if loop is None:
            return
        def begin() -> None:
            if self._stop_event is not None:
                self._stop_event.set()
        try:
            loop.call_soon_threadsafe(begin)
        except RuntimeError:
            return  # loop already closed
        self._finished.wait(drain_timeout + 10.0)
        if self._thread is not None and self._thread is not threading.current_thread():
            self._thread.join(timeout=5)
            self._thread = None

    async def _main(self) -> None:
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._stop_event = asyncio.Event()
        self.hub = StreamHub(self.manager, loop, max_queue=self.max_queue)
        try:
            server = await asyncio.start_server(
                self._handle_connection, self._host, self._port,
                limit=_MAX_HEADER_BYTES,
            )
        except OSError as error:
            self._startup_error = error
            return
        sockets = server.sockets or []
        address = sockets[0].getsockname()
        self._bound = (address[0], address[1])
        self._started.set()
        async with server:
            await self._stop_event.wait()
            # Graceful drain: stop accepting, wake every stream (their
            # loops observe hub closure and exit), then wait for in-flight
            # request dispatches to write their responses.
            server.close()
            self.hub.close()
            deadline = loop.time() + 5.0
            while self._inflight > 0 and loop.time() < deadline:
                await asyncio.sleep(0.01)
        # asyncio.run() cancels the remaining connection tasks on exit.

    # ------------------------------------------------------------------
    # Connection handling (loop side)
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
                    return  # client closed (or oversized headers)
                method, target, headers = _parse_head(head)
                if method is None:
                    return
                try:
                    length = int(headers.get("content-length") or 0)
                    if length < 0:
                        raise ValueError(length)
                except ValueError:
                    # A malformed Content-Length is a protocol error, not a
                    # server bug: typed 400, and drop the connection (the
                    # body boundary is unknowable).
                    await self._respond(
                        writer, 400, protocol.Response.failure(
                            ProtocolError(
                                "Content-Length header is not an integer"
                            )
                        ), keep_alive=False,
                    )
                    return
                if length > _MAX_BODY_BYTES:
                    await self._respond(
                        writer, 400, protocol.Response.failure(
                            ProtocolError(
                                f"request body too large ({length} bytes)"
                            )
                        ), keep_alive=False,
                    )
                    return
                raw_body = await reader.readexactly(length) if length else b""
                parsed = urlparse(target)
                query = {key: values[-1] for key, values
                         in parse_qs(parsed.query).items()}
                auth_token = _bearer_token(headers.get("authorization"))
                stream_id = _stream_session(method, parsed.path)
                if stream_id is not None:
                    await self._serve_stream(writer, stream_id, auth_token)
                    return  # an SSE response never reuses the connection
                status, response = await self._dispatch(
                    method, parsed.path, query, raw_body, auth_token
                )
                keep_alive = (
                    headers.get("connection", "").lower() != "close"
                    and not self._stop_event.is_set()
                )
                await self._respond(writer, status, response,
                                    keep_alive=keep_alive)
                if not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, method: str, path: str, query: dict[str, str],
                        raw_body: bytes, auth_token: str | None
                        ) -> tuple[int, protocol.Response]:
        try:
            body: Any = json.loads(raw_body.decode("utf-8")) if raw_body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return 400, protocol.Response.failure(
                ProtocolError(f"request body is not JSON: {error}")
            )
        # Shed before the executor hop: an over-cap request must not queue
        # behind the very backlog that makes the server overloaded.
        if not self.admission.try_acquire():
            return 503, protocol.Response.failure(Overloaded(
                "server is at its in-flight request cap; retry shortly"
            ))
        loop = asyncio.get_running_loop()
        self._inflight += 1
        try:
            status, response = await loop.run_in_executor(
                None, route_request,
                self.manager, method, path, query, body, auth_token,
            )
        finally:
            self._inflight -= 1
            self.admission.release()
        # The stream section of /v1/stats reads loop-local hub state, so
        # it is merged here on the loop thread, not inside route_request.
        if path.rstrip("/") == "/v1/stats" and response.ok and self.hub:
            result = dict(response.result)
            result["stream"] = self.hub.stats_payload()
            result["admission"] = self.admission.stats()
            response = protocol.Response(
                ok=True, result=result, version=response.version
            )
        return status, response

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       response: protocol.Response,
                       keep_alive: bool) -> None:
        body = json.dumps(response.to_json(), default=str).encode("utf-8")
        reason = {200: "OK", 400: "Bad Request", 401: "Unauthorized",
                  404: "Not Found", 429: "Too Many Requests",
                  503: "Service Unavailable"}.get(status, "")
        retry_after = ""
        if response.error_type == "overloaded":
            retry_after = (
                f"Retry-After: {max(1, round(self.admission.retry_after))}\r\n"
            )
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json; charset=utf-8\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{retry_after}"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # SSE streaming
    # ------------------------------------------------------------------
    async def _serve_stream(self, writer: asyncio.StreamWriter,
                            session_id: str,
                            auth_token: str | None) -> None:
        assert self.hub is not None
        try:
            subscriber = await self.hub.subscribe(
                session_id, auth_token=auth_token
            )
        except ReproError as error:
            response = protocol.Response.failure(error)
            await self._respond(writer, _status_of(response), response,
                                keep_alive=False)
            return
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n"
            b"\r\n"
        )
        try:
            while not subscriber.closed:
                popped = subscriber.pop()
                if popped is None:
                    try:
                        await asyncio.wait_for(
                            subscriber.event.wait(),
                            timeout=self.ping_interval,
                        )
                    except asyncio.TimeoutError:
                        writer.write(b": ping\n\n")
                        await writer.drain()
                    continue
                frame, _after = popped
                data = json.dumps(
                    protocol.frame_to_json(frame),
                    separators=(",", ":"), default=str,
                )
                writer.write(
                    f"id: {frame.seq}\nevent: frame\n"
                    f"data: {data}\n\n".encode("utf-8")
                )
                # drain() is the backpressure boundary: while it blocks on
                # a slow consumer, pushes pile into the bounded queue and
                # coalesce instead of buffering here.
                await writer.drain()
                if frame.kind == "closed":
                    # Terminal frame: the session was closed or evicted.
                    # End the stream instead of pinging a dead session.
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self.hub.unsubscribe(subscriber)


def _parse_head(
    head: bytes,
) -> tuple[str | None, str, dict[str, str]]:
    """(method, target, lowercased headers); method None on a bad head."""
    try:
        text = head.decode("latin-1")
        request_line, *header_lines = text.split("\r\n")
        method, target, _version = request_line.split()
    except ValueError:
        return None, "", {}
    headers: dict[str, str] = {}
    for line in header_lines:
        if ":" in line:
            key, value = line.split(":", 1)
            headers[key.strip().lower()] = value.strip()
    return method.upper(), target, headers


def _stream_session(method: str, path: str) -> str | None:
    parts = [part for part in path.split("/") if part]
    if (method == "GET" and len(parts) == 4
            and parts[:2] == ["v1", "sessions"] and parts[3] == "stream"):
        return parts[2]
    return None
