"""Canonical engine-name registry (the RPA104 ground truth).

Every place that accepts or enumerates engine names by string literal —
session validation, the REPL, the service manager, the serve CLI, the
differential fuzzer's lockstep list — is marked
``# repro: engine-surface <role>`` and checked against these tuples by
``python -m repro.analysis`` (check RPA104). Adding an engine means
extending the tuple(s) here *and* every surface of the matching role,
or lint fails; nothing imports these tuples on hot paths, they exist so
drift is a lint error instead of a fuzzer escape.

Roles:

* ``all``     — surfaces offering every engine (direct session use).
* ``service`` — surfaces restricted to the shared-cache service engines
  (the service always routes through the caching planner, so ``naive``
  is intentionally absent).
* ``fuzzer``  — the lockstep list; may also name underscore-composed
  combinations (``incremental_parallel``) and must exercise every
  registered engine. Entries from :data:`FUZZER_TRANSPORTS` are also
  legal there: they are *transports*, not engines — lockstep
  participants that drive a real engine through a different path (the
  fleet router) — and do not count toward engine coverage.
"""

from __future__ import annotations

ENGINES = (  # repro: engine-registry
    "naive",
    "planned",
    "parallel",
    "incremental",
    "pushdown",
)

SERVICE_ENGINES = (  # repro: engine-registry
    "planned",
    "parallel",
    "incremental",
    "pushdown",
)

FUZZER_TRANSPORTS = (  # repro: engine-registry
    "routed",
)
