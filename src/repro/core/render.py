"""ASCII rendering of enriched tables and of the four-component interface.

The paper's front-end is a web UI (Figure 9); this module reproduces its
presentation deterministically in text so every figure can be regenerated in
a terminal: the main view (the enriched table of Figure 1, with truncated
labels and count badges), the default table list, the schema view (query
pattern diagram, Figure 6), and the history panel.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.etable import ColumnKind, ColumnSpec, ETable, ETableRow


def _shorten(text: str, width: int) -> str:
    if len(text) <= width:
        return text
    if width <= 1:
        return text[:width]
    return text[: width - 1] + "…"


def render_cell(
    row: ETableRow,
    column: ColumnSpec,
    max_refs: int = 5,
    label_width: int = 10,
) -> str:
    """One cell: a scalar, or ``⟨count⟩ label, label, …`` for references.

    Mirrors Figure 1: each entity-reference cell shows the reference count
    plus the first few labels, truncated (e.g. ``7│H. V. Jaga…, Adriane C…``).
    """
    if column.kind is ColumnKind.BASE:
        value = row.attributes.get(column.key)
        return "" if value is None else str(value)
    refs = row.refs(column.key)
    if not refs:
        return "0│"
    labels = ", ".join(
        _shorten(str(ref.label), label_width) for ref in refs[:max_refs]
    )
    suffix = ", …" if len(refs) > max_refs else ""
    return f"{len(refs)}│{labels}{suffix}"


def render_etable(
    etable: ETable,
    max_rows: int = 12,
    max_refs: int = 4,
    label_width: int = 10,
    max_cell_width: int = 46,
) -> str:
    """The main view: a boxed table over the visible columns."""
    columns = etable.visible_columns()
    header = [column.display for column in columns]
    body: list[list[str]] = []
    for row in etable.rows[:max_rows]:
        body.append(
            [
                _shorten(
                    render_cell(row, column, max_refs, label_width),
                    max_cell_width,
                )
                for column in columns
            ]
        )
    widths = [
        min(
            max(
                len(header[index]),
                max((len(line[index]) for line in body), default=0),
            ),
            max_cell_width,
        )
        for index in range(len(columns))
    ]
    lines = [
        f"ETable: {etable.primary_type}  "
        f"({len(etable.rows)} rows, showing {min(max_rows, len(etable.rows))})"
    ]
    lines.append(_format_line(header, widths))
    lines.append("─┼─".join("─" * width for width in widths))
    for line in body:
        lines.append(_format_line(line, widths))
    if len(etable.rows) > max_rows:
        lines.append(f"… {len(etable.rows) - max_rows} more rows")
    return "\n".join(lines)


def _format_line(cells: Sequence[str], widths: Sequence[int]) -> str:
    return " │ ".join(
        _shorten(cell, width).ljust(width) for cell, width in zip(cells, widths)
    )


def render_default_table_list(type_names: Sequence[str]) -> str:
    """Component 1 of Figure 9: the list of entity types."""
    lines = ["ETABLE BUILDER — Choose a table"]
    lines.extend(f"  ▸ {name}" for name in type_names)
    return "\n".join(lines)


def render_history(history_lines: Sequence[str]) -> str:
    """Component 4 of Figure 9: the numbered action history."""
    lines = ["HISTORY"]
    lines.extend(f"  {line}" for line in history_lines)
    if len(history_lines) == 0:
        lines.append("  (empty)")
    return "\n".join(lines)


def render_interface(session, **table_kwargs: Any) -> str:
    """The full four-component screen of Figure 9.

    ``session`` is an :class:`repro.core.session.EtableSession`; imported
    loosely to avoid an import cycle.
    """
    parts: list[str] = []
    parts.append("═" * 72)
    parts.append(render_default_table_list(session.default_table_list()))
    parts.append("─" * 72)
    if session.current is not None:
        parts.append(render_etable(session.current, **table_kwargs))
        parts.append("─" * 72)
        parts.append("SCHEMA VIEW (current query pattern)")
        parts.append(session.current.pattern.to_ascii())
    else:
        parts.append("(no table open)")
    parts.append("─" * 72)
    parts.append(render_history(session.history_lines()))
    parts.append("═" * 72)
    return "\n".join(parts)
