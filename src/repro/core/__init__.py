"""ETable — the paper's presentation data model, operators, and actions.

Typical usage::

    from repro.datasets.academic import (
        generate_academic, default_categorical_attributes,
        default_label_overrides,
    )
    from repro.translate import translate_database
    from repro.core import EtableSession, render_etable
    from repro.tgm import AttributeCompare

    db, _ = generate_academic()
    tgdb = translate_database(
        db,
        categorical_attributes=default_categorical_attributes(),
        label_overrides=default_label_overrides(),
    )
    session = EtableSession(tgdb.schema, tgdb.graph)
    session.open("Conferences")
    session.filter(AttributeCompare("acronym", "=", "SIGMOD"))
    session.pivot("Papers")
    print(render_etable(session.current))

Backend selection — the Section 6.2 SQL strategies run on any registered
:class:`~repro.relational.backends.SqlBackend`. The default is the
in-memory engine; pass ``backend="sqlite"`` (or a loaded backend instance,
cheaper when issuing many queries) to execute the very same translated SQL
on a real DBMS::

    from repro.relational.backends import SqliteBackend, create_backend
    from repro.core import execute_monolithic, execute_partitioned

    backend = SqliteBackend(db)          # load once, query many times
    result = execute_monolithic(
        db, session.current.pattern, tgdb.schema, tgdb.mapping, tgdb.graph,
        backend=backend,                 # or backend="sqlite" for one-shots
    )

Translated SQL is adapted to a backend's dialect by
:func:`~repro.core.sql_translation.adapt_sql`; new engines only have to
implement the backend protocol and register themselves (see
``repro/relational/backends/base.py``).
"""

from repro.core.actions import (
    action_filter,
    action_filter_by_neighbor,
    action_open,
    action_pivot,
    action_see_all,
    action_single,
)
from repro.core.cache import CacheStats, CachingExecutor, pattern_cache_key
from repro.core.column_ranking import ColumnScore, score_columns, select_columns
from repro.core.etable import (
    ColumnKind,
    ColumnSpec,
    ETable,
    ETableRow,
    EntityRef,
)
from repro.core.matching import match, match_planned
from repro.core.planner import (
    Plan,
    PlanStep,
    PrefixStore,
    build_plan,
    candidate_ids,
    estimate_selectivity,
    execute_plan,
    restore_reference_order,
    subpattern_key,
)
from repro.core.operators import add, initiate, select, shift
from repro.core.query_pattern import (
    PatternEdge,
    PatternNode,
    QueryPattern,
    single_node_pattern,
)
from repro.core.render import (
    render_default_table_list,
    render_etable,
    render_history,
    render_interface,
)
from repro.core.session import EtableSession, HistoryEntry
from repro.core.set_ops import (
    etable_difference,
    etable_intersection,
    etable_union,
)
from repro.core.sql_execution import (
    PatternSqlResult,
    build_partitioned_queries,
    execute_monolithic,
    execute_partitioned,
    graph_result_summary,
    results_equal,
)
from repro.core.sql_translation import (
    SqlTranslation,
    adapt_sql,
    pattern_to_sql,
    quote_identifier,
)
from repro.core.transform import duplication_factor, execute_pattern, transform

__all__ = [
    "CacheStats",
    "CachingExecutor",
    "ColumnKind",
    "ColumnScore",
    "ColumnSpec",
    "ETable",
    "ETableRow",
    "EntityRef",
    "EtableSession",
    "HistoryEntry",
    "PatternEdge",
    "PatternNode",
    "PatternSqlResult",
    "QueryPattern",
    "SqlTranslation",
    "action_filter",
    "action_filter_by_neighbor",
    "action_open",
    "action_pivot",
    "action_see_all",
    "action_single",
    "adapt_sql",
    "add",
    "build_partitioned_queries",
    "duplication_factor",
    "etable_difference",
    "etable_intersection",
    "etable_union",
    "execute_monolithic",
    "execute_partitioned",
    "execute_pattern",
    "graph_result_summary",
    "initiate",
    "match",
    "match_planned",
    "pattern_cache_key",
    "Plan",
    "PlanStep",
    "PrefixStore",
    "build_plan",
    "candidate_ids",
    "estimate_selectivity",
    "execute_plan",
    "restore_reference_order",
    "subpattern_key",
    "pattern_to_sql",
    "quote_identifier",
    "score_columns",
    "select_columns",
    "render_default_table_list",
    "render_etable",
    "render_history",
    "render_interface",
    "results_equal",
    "select",
    "shift",
    "single_node_pattern",
    "transform",
]
