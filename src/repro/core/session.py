"""Interactive ETable sessions: action dispatch + the history view.

The session is the programmatic equivalent of the paper's user interface
(Section 6): it holds the current enriched table, executes user-level
actions by compiling them to primitive operators, and records every step in
a history that supports reverting to any previous state (the left-hand
history panel of Figures 1 and 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import InvalidAction
from repro.tgm.conditions import (
    AttributeCompare,
    AttributeLike,
    Condition,
)
from repro.tgm.instance_graph import InstanceGraph, Node
from repro.tgm.schema_graph import SchemaGraph
from repro.core import actions as user_actions
from repro.core.etable import ColumnKind, ColumnSpec, ETable, ETableRow, EntityRef
from repro.core.query_pattern import QueryPattern
from repro.core.transform import execute_pattern


@dataclass(frozen=True)
class HistoryEntry:
    """One history-panel line: the action, its operator trace, and a full
    presentation snapshot (pattern + sort + hidden columns)."""

    description: str
    operators: tuple[str, ...]
    pattern: QueryPattern
    sort: tuple[str, bool] | None = None
    hidden: frozenset[str] = frozenset()


class EtableSession:
    """Drives ETable interaction over one typed graph database."""

    def __init__(
        self,
        schema: SchemaGraph,
        graph: InstanceGraph,
        row_limit: int | None = None,
        use_cache: bool = False,
        engine: str = "planned",
        executor: "CachingExecutor | None" = None,
        workers: int | None = None,
    ) -> None:
        if engine not in ("naive", "planned", "parallel", "incremental", "pushdown"):  # repro: engine-surface all
            raise InvalidAction(
                f"unknown engine {engine!r}; expected 'naive', 'planned', "
                f"'parallel', 'incremental', or 'pushdown'"
            )
        self.schema = schema
        self.graph = graph
        self.row_limit = row_limit
        self.engine = engine
        self.workers = workers
        self.current: ETable | None = None
        self.history: list[HistoryEntry] = []
        self._sort: tuple[str, bool] | None = None
        # Optional reuse of intermediate results (Section 9, future work #2):
        # with the cache on, reverts and repeated sub-queries skip matching,
        # and incremental extensions execute only their delta joins. An
        # explicit ``executor`` may be *shared between sessions* (the
        # multi-user service hosts many sessions over one executor so one
        # user's prefix work speeds up another's).
        #
        # ``engine="incremental"`` layers the per-session action-delta
        # engine (``repro.core.cache.IncrementalExecutor``) over a caching
        # executor: refinement actions are answered from the previous
        # relation instead of re-matching the pattern. It composes with
        # ``workers``/a parallel-context executor (delta joins shard when
        # big enough) and implies the cache.
        if executor is not None or use_cache or engine == "incremental":
            if engine not in ("planned", "parallel", "incremental", "pushdown"):  # repro: engine-surface service
                # The caching executor always plans; silently serving the
                # planner to someone who asked for the naive oracle would
                # mask exactly the discrepancies the oracle exists to find.
                raise InvalidAction(
                    "cached execution always goes through the planner; "
                    f"disable the cache to use engine={engine!r}"
                )
            if executor is not None and executor.graph is not graph:
                raise InvalidAction(
                    "the shared executor was built over a different "
                    "instance graph"
                )
        if engine == "incremental":
            from repro.core.cache import CachingExecutor, IncrementalExecutor
            from repro.core.planner import parallel_context

            base = executor
            if base is None:
                base = CachingExecutor(
                    graph,
                    parallel=(parallel_context(workers)
                              if workers is not None else None),
                )
            # The wrapper is per-session (it owns this session's result
            # lineage); the base may be shared across sessions.
            self._executor: "CachingExecutor | None" = IncrementalExecutor(base)
        elif executor is not None:
            self._executor = executor
        elif use_cache:
            from repro.core.cache import CachingExecutor

            # engine="parallel" + cache: the executor runs partitioned delta
            # joins and caches the merged relations — prefix reuse and
            # parallel partitions compose. Likewise engine="pushdown" +
            # cache: oversized delta joins route to the shared SQLite image
            # while their results still land in the relation cache.
            if engine == "parallel":
                from repro.core.planner import parallel_context

                self._executor = CachingExecutor(
                    graph, parallel=parallel_context(workers)
                )
            elif engine == "pushdown":
                from repro.relational.backends.pushdown import pushdown_context

                self._executor = CachingExecutor(
                    graph, pushdown=pushdown_context(graph)
                )
            else:
                self._executor = CachingExecutor(graph)
        else:
            self._executor = None

    def _execute(self, pattern: QueryPattern) -> ETable:
        if self._executor is not None:
            return self._executor.execute(pattern, self.row_limit)
        return execute_pattern(pattern, self.graph, self.row_limit,
                               engine=self.engine, workers=self.workers)

    def explain_plan(self) -> str:
        """The current pattern's execution plan (and cache stats, if any).

        This is what the REPL's ``plan`` command prints: the inspectable
        :class:`~repro.core.planner.Plan` with per-step cost estimates.
        """
        from repro.core.planner import build_plan

        pattern = self._require_pattern()
        # Mirror the session's actual execution mode: the caching executor
        # plans with semijoin=False (cached intermediates must stay exact
        # per subpattern), so the printed plan must not advertise the
        # reduction passes that only the direct planned path runs.
        plan = build_plan(pattern, self.graph,
                          semijoin=self._executor is None
                          and self.engine == "planned")
        lines = [plan.explain()]
        if self._executor is None and self.engine == "naive":
            lines.append(
                "note: this session executes the naive reference matcher; "
                "the plan above shows what the planner would do"
            )
        if self._executor is not None:
            from repro.core.cache import IncrementalExecutor

            incremental = (
                self._executor
                if isinstance(self._executor, IncrementalExecutor) else None
            )
            base = incremental.base if incremental is not None else self._executor
            stats = base.stats
            lines.append(
                "reuse: intermediates cached per subpattern; extensions "
                "re-execute only their delta joins"
            )
            lines.append(
                f"cache: {stats.hits} hits / {stats.misses} misses "
                f"({stats.hit_rate:.0%}), {stats.prefix_hits} prefix hits "
                f"reusing {stats.reused_nodes} joined nodes, "
                f"{stats.delta_joins} delta joins"
            )
            if incremental is not None:
                istats = incremental.stats
                lines.append(
                    f"incremental: {istats.delta_actions} delta-answered, "
                    f"{istats.replays} lineage replays, "
                    f"{istats.replans} replans "
                    f"(hit rate {istats.delta_hit_rate:.0%}), "
                    f"{istats.rows_touched} rows touched"
                )
                if incremental.last_outcome:
                    lines.append(
                        f"  last action: {incremental.last_outcome}"
                    )
        context = self._parallel_context()
        if context is not None:
            payload = context.stats_payload()
            lines.append(
                f"parallel: {payload['workers']} workers, serial below "
                f"{payload['min_partition_rows']} rows; "
                f"{payload['parallel_joins']} partitioned joins, "
                f"{payload['serial_fallbacks']} serial fallbacks"
            )
            for timing in payload["last_timings"][-3:]:
                per_partition = ", ".join(
                    f"{ms:.1f}" for ms in timing["partition_ms"]
                )
                lines.append(
                    f"  join -[{timing['edge']}]-> {timing['new_key']}: "
                    f"{timing['rows_in']} -> {timing['rows_out']} rows over "
                    f"{timing['partitions']} partitions "
                    f"[{per_partition} ms]"
                )
        return "\n".join(lines)

    def _parallel_context(self):
        """The parallel context this session executes through, if any."""
        if self._executor is not None:
            return self._executor.parallel
        if self.engine == "parallel":
            from repro.core.planner import parallel_context

            return parallel_context(self.workers)
        return None

    # ------------------------------------------------------------------
    # The default table list (Figure 9, component 1)
    # ------------------------------------------------------------------
    def default_table_list(self) -> list[str]:
        """Entity types a user can open to initiate a query."""
        return [node_type.name for node_type in self.schema.entity_types]

    # ------------------------------------------------------------------
    # Pattern-changing actions
    # ------------------------------------------------------------------
    def open(self, type_name: str) -> ETable:
        """Open a new table (action U1)."""
        pattern, trace = user_actions.action_open(self.schema, type_name)
        return self._apply(f"Open {type_name!r} table", trace, pattern,
                           reset_presentation=True)

    def filter(self, condition: Condition) -> ETable:
        """Filter the current table's rows by a condition on the primary."""
        pattern, trace = user_actions.action_filter(
            self._require_pattern(), condition
        )
        description = (
            f"Filter {self.current_primary_type()!r} table by "
            f"({condition.describe()})"
        )
        return self._apply(description, trace, pattern)

    def filter_attribute(self, attribute: str, op: str, value: Any) -> ETable:
        """Convenience: ``filter(AttributeCompare(attribute, op, value))``."""
        return self.filter(AttributeCompare(attribute, op, value))

    def filter_like(self, attribute: str, pattern_text: str) -> ETable:
        """Convenience: ``filter(AttributeLike(attribute, pattern_text))``."""
        return self.filter(AttributeLike(attribute, pattern_text))

    def filter_by_neighbor(
        self, column: str | ColumnSpec, inner: Condition
    ) -> ETable:
        """Filter rows by a neighbor column's content (a subquery filter)."""
        spec = self._resolve_column(column)
        if spec.kind is not ColumnKind.NEIGHBOR:
            raise InvalidAction(
                f"filter_by_neighbor needs a neighbor column, got "
                f"{spec.kind.value!r}"
            )
        pattern, trace = user_actions.action_filter_by_neighbor(
            self._require_pattern(), self.schema, spec.key, inner
        )
        description = (
            f"Filter {self.current_primary_type()!r} table by "
            f"({spec.display} {inner.describe()})"
        )
        return self._apply(description, trace, pattern)

    def pivot(self, column: str | ColumnSpec) -> ETable:
        """Pivot on an entity-reference column (action U4)."""
        spec = self._resolve_column(column)
        pattern, trace = user_actions.action_pivot(
            self._require_pattern(), self.schema, spec
        )
        return self._apply(f"Pivot to {spec.display!r}", trace, pattern,
                           reset_presentation=True)

    def single(self, ref: EntityRef | Node | int) -> ETable:
        """Click one entity reference (Figure 2a)."""
        node = self._resolve_node(ref)
        pattern, trace = user_actions.action_single(self.schema, self.graph, node)
        label = node.label(self.schema)
        return self._apply(
            f"Show {node.type_name!r} entity {label!r}", trace, pattern,
            reset_presentation=True,
        )

    def see_all(self, row: ETableRow | int, column: str | ColumnSpec) -> ETable:
        """Click the count badge of a cell (action U2, Figure 2b)."""
        etable = self._require_etable()
        if isinstance(row, int):
            row = etable.row(row)
        spec = self._resolve_column(column)
        node = etable.node_of(row)
        pattern, trace = user_actions.action_see_all(
            self._require_pattern(), self.schema, etable, node, spec
        )
        label = node.label(self.schema)
        return self._apply(
            f"See all {spec.display!r} of {label!r}", trace, pattern,
            reset_presentation=True,
        )

    # ------------------------------------------------------------------
    # Presentation actions (pattern unchanged, still history-logged)
    # ------------------------------------------------------------------
    def sort(self, column: str | ColumnSpec, descending: bool = False) -> ETable:
        """Sort rows by a base value or by reference count."""
        etable = self._require_etable()
        spec = self._resolve_column(column)
        etable.sort(spec.key, descending=descending)
        self._sort = (spec.key, descending)
        direction = "desc" if descending else "asc"
        if spec.kind is ColumnKind.BASE:
            description = f"Sort table by {spec.display} ({direction})"
        else:
            description = f"Sort table by # of {spec.display} ({direction})"
        self._log(description, ())
        return etable

    def hide_column(self, column: str | ColumnSpec) -> ETable:
        etable = self._require_etable()
        spec = self._resolve_column(column)
        etable.hide_column(spec.key)
        self._log(f"Hide column {spec.display!r}", ())
        return etable

    def show_column(self, column: str | ColumnSpec) -> ETable:
        etable = self._require_etable()
        spec = self._resolve_column(column)
        etable.show_column(spec.key)
        self._log(f"Show column {spec.display!r}", ())
        return etable

    # ------------------------------------------------------------------
    # History (Figure 9, component 4)
    # ------------------------------------------------------------------
    def revert(self, index: int) -> ETable:
        """Revert to history entry ``index`` (0-based).

        Re-executes that entry's pattern snapshot and re-applies its sort
        and hidden-column state; the revert itself is appended to history
        so the trail stays complete.
        """
        if not 0 <= index < len(self.history):
            raise InvalidAction(
                f"history index {index} out of range (0..{len(self.history) - 1})"
            )
        entry = self.history[index]
        etable = self._execute(entry.pattern)
        etable.hidden_columns |= set(entry.hidden)
        if entry.sort is not None:
            etable.sort(entry.sort[0], descending=entry.sort[1])
        self.current = etable
        self._sort = entry.sort
        self._log(f"Revert to step {index + 1}: {entry.description}", ())
        return etable

    def history_lines(self) -> list[str]:
        """Numbered history, as shown in the panel of Figure 1."""
        return [
            f"{number}. {entry.description}"
            for number, entry in enumerate(self.history, start=1)
        ]

    def restore_history(self, entries: list[HistoryEntry]) -> ETable | None:
        """Replace the whole history and re-materialize its final state.

        This is the journal-checkpoint restore path of ``repro.service``:
        a checkpoint record carries the full serialized history, and
        replaying it must reproduce the *identical* history list plus the
        ETable of its last entry (pattern re-execution rides the prefix
        cache, so restarts are cheap). Not a user action — nothing is
        appended to the history.
        """
        self.history = list(entries)
        if not self.history:
            self.current = None
            self._sort = None
            return None
        last = self.history[-1]
        etable = self._execute(last.pattern)
        etable.hidden_columns |= set(last.hidden)
        if last.sort is not None:
            etable.sort(last.sort[0], descending=last.sort[1])
        self.current = etable
        self._sort = last.sort
        return etable

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def current_primary_type(self) -> str:
        return self._require_pattern().primary.type_name

    def _require_etable(self) -> ETable:
        if self.current is None:
            raise InvalidAction("no ETable is open; call open() first")
        return self.current

    def _require_pattern(self) -> QueryPattern:
        return self._require_etable().pattern

    def resolve_column(self, column: str | ColumnSpec) -> ColumnSpec:
        """Resolve a column by spec, exact key, or header text.

        Public because protocol clients (the wire protocol, the REPL)
        address columns by string; exact keys are tried first so
        programmatic use stays stable, then display names.
        """
        return self._resolve_column(column)

    def _resolve_column(self, column: str | ColumnSpec) -> ColumnSpec:
        if isinstance(column, ColumnSpec):
            return column
        etable = self._require_etable()
        # Try exact key first (stable for programmatic use), then header text.
        for spec in etable.columns:
            if spec.key == column:
                return spec
        return etable.column_by_display(column)

    def _resolve_node(self, ref: EntityRef | Node | int) -> Node:
        if isinstance(ref, Node):
            return ref
        if isinstance(ref, EntityRef):
            return self.graph.node(ref.node_id)
        return self.graph.node(ref)

    def _apply(
        self,
        description: str,
        trace: list[str],
        pattern: QueryPattern,
        reset_presentation: bool = False,
    ) -> ETable:
        etable = self._execute(pattern)
        previous_hidden = (
            set()
            if reset_presentation or self.current is None
            else {
                key
                for key in self.current.hidden_columns
                if any(column.key == key for column in etable.columns)
            }
        )
        etable.hidden_columns |= previous_hidden
        if reset_presentation:
            self._sort = None
        elif self._sort is not None:
            key, descending = self._sort
            if any(column.key == key for column in etable.columns):
                etable.sort(key, descending=descending)
            else:
                self._sort = None
        self.current = etable
        self._log(description, tuple(trace))
        return etable

    def _log(self, description: str, trace: tuple[str, ...]) -> None:
        etable = self._require_etable()
        self.history.append(
            HistoryEntry(
                description=description,
                operators=trace,
                pattern=etable.pattern,
                sort=self._sort,
                hidden=frozenset(etable.hidden_columns),
            )
        )
