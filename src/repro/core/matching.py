"""Instance matching (Definition 4, Section 5.4.1).

Given a query pattern ``Q``, the matching function ``m(Q)`` returns a graph
relation whose tuples are lists of node instances — one attribute per
pattern node — connected by the pattern's edges and satisfying every node's
selection conditions:

    m(Q) = σ_C1(R1) *p1 σ_C2(R2) *p2 ... *pn-1 σ_Cn(Rn)

Two evaluators implement the same function:

* :func:`match` — the reference pipeline: BFS order from the primary node,
  full base-relation scans, left-deep materializing joins. Kept simple and
  obviously correct; it is the equivalence oracle for everything else.
* :func:`match_planned` — the cost-based engine (``repro.core.planner``):
  selectivity-ordered joins over index-probed candidate sets with semi-join
  pruning, re-sorted afterwards into the reference order so the output is
  identical attribute-for-attribute and tuple-for-tuple.
* :func:`match_parallel` — the planned engine with partitioned delta joins:
  prefix relations above a size threshold are sharded by prefix-tuple
  partition across worker processes and merged in partition order, still
  bit-identical to :func:`match`.
* :func:`match_pushdown` — the planned engine with cost-based SQL pushdown:
  delta joins whose estimated intermediate exceeds a threshold run as
  indexed SQLite queries over the four-table storage image, still
  bit-identical to :func:`match`.

The pattern is a tree, so a BFS order from the primary node guarantees each
join connects the new node to the already-joined prefix. Selections are
applied to each base relation *before* its join (a pushdown the formula
already implies).
"""

from __future__ import annotations

from repro.errors import InvalidQueryPattern
from repro.tgm.conditions import ConditionMemo, conjoin_conditions
from repro.tgm.graph_relation import GraphRelation, base_relation, join, selection
from repro.tgm.instance_graph import GraphStatistics, InstanceGraph
from repro.core.query_pattern import QueryPattern


def match_planned(
    pattern: QueryPattern,
    graph: InstanceGraph,
    stats: GraphStatistics | None = None,
    memo: ConditionMemo | None = None,
) -> GraphRelation:
    """Evaluate ``m(Q)`` through the planner; output equals :func:`match`.

    Joins run in greedy selectivity order over index-backed candidate sets
    (with Yannakakis semi-join pruning); the result is then restored to the
    reference BFS ordering, so callers cannot tell the difference — except
    in execution time.
    """
    from repro.core.planner import (
        build_plan,
        execute_plan,
        restore_reference_order,
    )

    pattern.validate(graph.schema)
    plan = build_plan(pattern, graph, stats=stats)
    relation = execute_plan(plan, graph, memo=memo)
    return restore_reference_order(pattern, relation, graph)


def match_parallel(
    pattern: QueryPattern,
    graph: InstanceGraph,
    stats: GraphStatistics | None = None,
    memo: ConditionMemo | None = None,
    context: "ParallelContext | None" = None,
    workers: int | None = None,
) -> GraphRelation:
    """Evaluate ``m(Q)`` with partitioned delta joins; output equals
    :func:`match`.

    ``context`` supplies the worker pool (and serial-fallback threshold);
    without one, the process-wide shared context for ``workers`` is used.
    Small prefixes fall back to serial joins inside the context's policy,
    so interactive steps on small tables never pay process overhead.
    """
    from repro.core.planner import (
        build_plan,
        execute_plan,
        parallel_context,
        restore_reference_order,
    )

    pattern.validate(graph.schema)
    plan = build_plan(pattern, graph, stats=stats, semijoin=False)
    relation = execute_plan(
        plan,
        graph,
        memo=memo,
        parallel=context or parallel_context(workers),
    )
    return restore_reference_order(pattern, relation, graph)


def match_pushdown(
    pattern: QueryPattern,
    graph: InstanceGraph,
    stats: GraphStatistics | None = None,
    memo: ConditionMemo | None = None,
    context: "PushdownContext | None" = None,
    min_rows: int | None = None,
) -> GraphRelation:
    """Evaluate ``m(Q)`` routing oversized delta joins to SQLite; output
    equals :func:`match`.

    ``context`` supplies the per-graph SQL engine (and its cost threshold);
    without one, the process-wide shared context for ``(graph, min_rows)``
    is used. Joins whose estimated intermediate stays below the threshold
    run in the Python kernel as usual, so interactive steps never pay the
    round-trip.
    """
    from repro.core.planner import (
        build_plan,
        execute_plan,
        restore_reference_order,
    )
    from repro.relational.backends.pushdown import pushdown_context

    pattern.validate(graph.schema)
    plan = build_plan(pattern, graph, stats=stats, semijoin=False)
    relation = execute_plan(
        plan,
        graph,
        memo=memo,
        pushdown=context or pushdown_context(graph, min_rows),
    )
    return restore_reference_order(pattern, relation, graph)


def match(pattern: QueryPattern, graph: InstanceGraph) -> GraphRelation:
    """Evaluate ``m(Q)`` over the instance graph (reference evaluator)."""
    pattern.validate(graph.schema)
    order = pattern.traversal_order()
    if len(order) != len(pattern.nodes):  # pragma: no cover - validate() caught it
        raise InvalidQueryPattern("pattern is not connected")

    result: GraphRelation | None = None
    for key, edge in order:
        node = pattern.node(key)
        relation = base_relation(graph, node.type_name, key=key)
        condition = conjoin_conditions(node.conditions)
        if condition is not None:
            relation = selection(relation, key, condition, graph)
        if result is None:
            result = relation
            continue
        assert edge is not None  # every non-root BFS entry has its edge
        if edge.target_key == key:
            # Prefix holds the edge's source: join forward.
            result = join(
                result,
                relation,
                edge.edge_type,
                left_key=edge.source_key,
                right_key=key,
                graph=graph,
            )
        else:
            # Prefix holds the edge's target: traverse the reverse twin.
            reverse = graph.schema.reverse_of(edge.edge_type)
            result = join(
                result,
                relation,
                reverse.name,
                left_key=edge.target_key,
                right_key=key,
                graph=graph,
            )
    assert result is not None  # validate() guarantees >= 1 node
    return result
