"""Instance matching (Definition 4, Section 5.4.1).

Given a query pattern ``Q``, the matching function ``m(Q)`` returns a graph
relation whose tuples are lists of node instances — one attribute per
pattern node — connected by the pattern's edges and satisfying every node's
selection conditions:

    m(Q) = σ_C1(R1) *p1 σ_C2(R2) *p2 ... *pn-1 σ_Cn(Rn)

The pattern is a tree, so a BFS order from the primary node guarantees each
join connects the new node to the already-joined prefix. Selections are
applied to each base relation *before* its join (a pushdown the formula
already implies).
"""

from __future__ import annotations

from repro.errors import InvalidQueryPattern
from repro.tgm.conditions import conjoin_conditions
from repro.tgm.graph_relation import GraphRelation, base_relation, join, selection
from repro.tgm.instance_graph import InstanceGraph
from repro.core.query_pattern import QueryPattern


def match(pattern: QueryPattern, graph: InstanceGraph) -> GraphRelation:
    """Evaluate ``m(Q)`` over the instance graph."""
    pattern.validate(graph.schema)
    order = pattern.traversal_order()
    if len(order) != len(pattern.nodes):  # pragma: no cover - validate() caught it
        raise InvalidQueryPattern("pattern is not connected")

    result: GraphRelation | None = None
    for key, edge in order:
        node = pattern.node(key)
        relation = base_relation(graph, node.type_name, key=key)
        condition = conjoin_conditions(node.conditions)
        if condition is not None:
            relation = selection(relation, key, condition, graph)
        if result is None:
            result = relation
            continue
        assert edge is not None  # every non-root BFS entry has its edge
        if edge.target_key == key:
            # Prefix holds the edge's source: join forward.
            result = join(
                result,
                relation,
                edge.edge_type,
                left_key=edge.source_key,
                right_key=key,
                graph=graph,
            )
        else:
            # Prefix holds the edge's target: traverse the reverse twin.
            reverse = graph.schema.reverse_of(edge.edge_type)
            result = join(
                result,
                relation,
                reverse.name,
                left_key=edge.target_key,
                right_key=key,
                graph=graph,
            )
    assert result is not None  # validate() guarantees >= 1 node
    return result
