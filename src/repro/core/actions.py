"""User-level actions (Section 6.1), as pure pattern transformations.

Each action maps to one or two primitive operators, exactly as Figure 7's
right-hand side illustrates:

    Open(τk)            = Initiate(τk)
    Filter(C, R)        = Select(C, R)
    Pivot(ρl, R)        = Add(ρl, R)          (neighbor column)
    Pivot(τk, R)        = Shift(τk, R)        (participating column)
    Single(vk, R)       = Select({u=vk}, Initiate(type(vk)))
    SeeAll_h(vk, ρl, R) = Add(ρl, Select({u=vk}, R))
    SeeAll_t(vk, tl, R) = Shift(tl, Select({u=vk}, R))

Functions here return ``(new_pattern, [operator descriptions])`` so the
session can log the primitive-operator trace the history view shows.
"""

from __future__ import annotations

from repro.errors import InvalidAction
from repro.tgm.conditions import Condition, NeighborSatisfies, NodeIs
from repro.tgm.instance_graph import InstanceGraph, Node
from repro.tgm.schema_graph import SchemaGraph
from repro.core import operators
from repro.core.etable import ColumnKind, ColumnSpec, ETable
from repro.core.query_pattern import QueryPattern

ActionResult = tuple[QueryPattern, list[str]]


def action_open(schema: SchemaGraph, type_name: str) -> ActionResult:
    """U1 — click a node type in the default table list."""
    pattern = operators.initiate(schema, type_name)
    return pattern, [f"Initiate({type_name!r})"]


def action_filter(pattern: QueryPattern, condition: Condition) -> ActionResult:
    """U3 — specify a condition in the column-header filter popup."""
    updated = operators.select(pattern, condition)
    return updated, [f"Select({condition.describe()})"]


def action_filter_by_neighbor(
    pattern: QueryPattern,
    schema: SchemaGraph,
    edge_type_name: str,
    inner: Condition,
) -> ActionResult:
    """Filter rows by a neighbor column's labels.

    Per Section 6.1 this "is translated into subqueries": the condition is a
    semijoin on the primary node — the primary type does not change and no
    participating column is added.
    """
    edge_type = schema.edge_type(edge_type_name)
    if edge_type.source != pattern.primary.type_name:
        raise InvalidAction(
            f"neighbor filter: edge {edge_type_name!r} does not leave the "
            f"primary type {pattern.primary.type_name!r}"
        )
    condition = NeighborSatisfies(edge_type_name, inner)
    updated = operators.select(pattern, condition)
    return updated, [f"Select({condition.describe()})"]


def action_pivot(
    pattern: QueryPattern, schema: SchemaGraph, column: ColumnSpec
) -> ActionResult:
    """U4 — click the pivot button on an entity-reference column."""
    if column.kind is ColumnKind.NEIGHBOR:
        updated = operators.add(pattern, schema, column.key)
        return updated, [f"Add({column.key!r})"]
    if column.kind is ColumnKind.PARTICIPATING:
        updated = operators.shift(pattern, column.key)
        return updated, [f"Shift({column.key!r})"]
    raise InvalidAction(
        f"cannot pivot on base-attribute column {column.display!r}"
    )


def action_single(
    schema: SchemaGraph, graph: InstanceGraph, node: Node
) -> ActionResult:
    """Click one entity reference: a fresh single-row ETable for that node."""
    pattern = operators.initiate(schema, node.type_name)
    condition = NodeIs(node.node_id, label=str(node.label(schema)))
    pattern = operators.select(pattern, condition)
    return pattern, [
        f"Initiate({node.type_name!r})",
        f"Select({node.type_name} {condition.describe()})",
    ]


def action_see_all(
    pattern: QueryPattern,
    schema: SchemaGraph,
    etable: ETable,
    row_node: Node,
    column: ColumnSpec,
) -> ActionResult:
    """U2 — click the reference-count badge in a cell.

    Selects the clicked row (by node identity), then either adds the
    neighbor edge (neighbor column) or shifts to the participating node
    (participating column).
    """
    condition = NodeIs(row_node.node_id, label=str(row_node.label(schema)))
    selected = operators.select(pattern, condition)
    trace = [f"Select({pattern.primary.type_name} {condition.describe()})"]
    if column.kind is ColumnKind.NEIGHBOR:
        updated = operators.add(selected, schema, column.key)
        trace.append(f"Add({column.key!r})")
        return updated, trace
    if column.kind is ColumnKind.PARTICIPATING:
        updated = operators.shift(selected, column.key)
        trace.append(f"Shift({column.key!r})")
        return updated, trace
    raise InvalidAction(
        f"cannot expand base-attribute column {column.display!r}"
    )
