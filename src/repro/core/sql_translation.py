"""SQL translation of ETable queries (Section 8).

Every ETable query maps to the paper's general SQL pattern::

    SELECT τa.*, ent-list(t1), ent-list(t2), ...
    FROM t1, t2, ...
    WHERE <join conditions> AND C1 AND C2 AND ...
    GROUP BY τa;

This module emits that SQL over the *original* relational schema using the
:class:`~repro.translate.schema_translator.TranslationMap` produced at
translation time, and implements the reverse direction — the step-by-step
translation of an FK–PK join query into an equivalent ETable query — which
is the paper's expressiveness argument.

Binding rules per node-type category (the paper leaves these implicit):

* entity nodes get a table alias; their instance key is the primary key;
* multivalued nodes get an alias over the attribute table; their key is the
  value column (joins to an owner add ``alias.owner_fk = owner.pk``);
* categorical nodes get *no* alias of their own — they bind to the owning
  entity alias's column (so no join blow-up), except when they are the
  pattern root, where they bind to their first child's alias or, if
  childless, to a fresh alias over the owner table.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any

from repro.errors import EtableError, TranslationError
from repro.relational.backends.base import quote_identifier
from repro.tgm.conditions import (
    AndCondition,
    AttributeCompare,
    AttributeIn,
    AttributeLike,
    Condition,
    NeighborSatisfies,
    NodeIn,
    NodeIs,
    NotCondition,
    OrCondition,
)
from repro.tgm.instance_graph import InstanceGraph
from repro.tgm.schema_graph import NodeTypeCategory, SchemaGraph
from repro.translate.schema_translator import TranslationMap
from repro.core.query_pattern import PatternEdge, PatternNode, QueryPattern


@dataclass
class _Binding:
    key: str
    category: NodeTypeCategory
    alias: str | None
    key_expr: str | None  # None only while a root categorical is deferred
    # Multivalued bookkeeping: the attribute-table alias that may serve one
    # reverse join for free (the root case).
    reusable_attr_alias: str | None = None


@dataclass
class SqlTranslation:
    """The emitted SQL plus the metadata needed to interpret its output."""

    sql: str
    primary_key_alias: str
    participating_aliases: dict[str, str]  # pattern key -> output column name
    from_items: list[tuple[str, str]]
    conditions: list[str]
    bindings: dict[str, "_Binding"] = field(repr=False, default_factory=dict)


class _Translator:
    def __init__(
        self,
        pattern: QueryPattern,
        schema: SchemaGraph,
        mapping: TranslationMap,
        graph: InstanceGraph | None = None,
    ) -> None:
        self.pattern = pattern
        self.schema = schema
        self.mapping = mapping
        self.graph = graph
        self.bindings: dict[str, _Binding] = {}
        self.from_items: list[tuple[str, str]] = []  # (table, alias)
        self.conditions: list[str] = []
        self._alias_counter = 0

    # ------------------------------------------------------------------
    def fresh_alias(self, prefix: str = "t") -> str:
        self._alias_counter += 1
        return f"{prefix}{self._alias_counter}"

    def add_table(self, table: str) -> str:
        alias = self.fresh_alias()
        self.from_items.append((table, alias))
        return alias

    def node_category(self, key: str) -> NodeTypeCategory:
        node = self.pattern.node(key)
        return self.schema.node_type(node.type_name).category

    def node_mapping(self, key: str):
        node = self.pattern.node(key)
        return self.mapping.nodes[node.type_name]

    # ------------------------------------------------------------------
    def translate(self) -> SqlTranslation:
        self.pattern.validate(self.schema)
        order = self.pattern.traversal_order()
        for key, edge in order:
            if edge is None:
                self._bind_root(key)
            else:
                self._connect(key, edge)
        for key, _edge in order:
            self._render_node_conditions(key)

        primary = self.bindings[self.pattern.primary_key]
        if primary.key_expr is None:  # pragma: no cover - deferred root resolved
            raise EtableError("primary binding was never resolved")
        select_items = [f"{primary.key_expr} AS etable_key"]
        if primary.category is NodeTypeCategory.ENTITY and primary.alias:
            select_items.append(f"{primary.alias}.*")
        participating_aliases: dict[str, str] = {}
        for index, key in enumerate(self.pattern.participating_keys, start=1):
            binding = self.bindings[key]
            output = f"refs_{index}"
            select_items.append(f"ENT_LIST({binding.key_expr}) AS {output}")
            participating_aliases[key] = output

        sql_lines = [f"SELECT {', '.join(select_items)}"]
        from_clause = ", ".join(
            f"{table} {alias}" for table, alias in self.from_items
        )
        sql_lines.append(f"FROM {from_clause}")
        if self.conditions:
            sql_lines.append(f"WHERE {' AND '.join(self.conditions)}")
        sql_lines.append(f"GROUP BY {primary.key_expr}")
        return SqlTranslation(
            sql="\n".join(sql_lines),
            primary_key_alias="etable_key",
            participating_aliases=participating_aliases,
            from_items=list(self.from_items),
            conditions=list(self.conditions),
            bindings=dict(self.bindings),
        )

    # ------------------------------------------------------------------
    # Binding construction
    # ------------------------------------------------------------------
    def _bind_root(self, key: str) -> None:
        category = self.node_category(key)
        node_mapping = self.node_mapping(key)
        if category is NodeTypeCategory.ENTITY:
            alias = self.add_table(node_mapping.table)
            self.bindings[key] = _Binding(
                key, category, alias, f"{alias}.{node_mapping.key_column}"
            )
        elif category is NodeTypeCategory.MULTIVALUED_ATTRIBUTE:
            alias = self.add_table(node_mapping.table)
            self.bindings[key] = _Binding(
                key,
                category,
                alias,
                f"{alias}.{node_mapping.key_column}",
                reusable_attr_alias=alias,
            )
        else:  # categorical root
            children = self.pattern.children_of(key, parent=None)
            if children:
                # Defer: the first child's alias will supply the column.
                self.bindings[key] = _Binding(key, category, None, None)
            else:
                alias = self.add_table(node_mapping.table)
                self.bindings[key] = _Binding(
                    key, category, alias, f"{alias}.{node_mapping.key_column}"
                )

    def _connect(self, new_key: str, edge: PatternEdge) -> None:
        mapping = self.mapping.edges.get(edge.edge_type)
        if mapping is None:
            raise TranslationError(
                f"edge type {edge.edge_type!r} has no relational mapping"
            )
        kind = mapping.kind
        data = mapping.data
        known_key = (
            edge.source_key if edge.target_key == new_key else edge.target_key
        )
        known = self.bindings[known_key]

        if kind in ("fk_forward", "fk_reverse"):
            owner_on_source = kind == "fk_forward"
            owner_key = edge.source_key if owner_on_source else edge.target_key
            ref_key = edge.target_key if owner_on_source else edge.source_key
            new_mapping = self.node_mapping(new_key)
            alias = self.add_table(new_mapping.table)
            self.bindings[new_key] = _Binding(
                new_key,
                NodeTypeCategory.ENTITY,
                alias,
                f"{alias}.{new_mapping.key_column}",
            )
            owner_alias = self.bindings[owner_key].alias
            ref_alias = self.bindings[ref_key].alias
            self.conditions.append(
                f"{owner_alias}.{data['fk_column']} = "
                f"{ref_alias}.{data['ref_pk']}"
            )
            return

        if kind in ("mn_forward", "mn_reverse"):
            # The schema edge's source plays the junction's source_fk role
            # for mn_forward and the target_fk role for mn_reverse.
            new_mapping = self.node_mapping(new_key)
            alias = self.add_table(new_mapping.table)
            self.bindings[new_key] = _Binding(
                new_key,
                NodeTypeCategory.ENTITY,
                alias,
                f"{alias}.{new_mapping.key_column}",
            )
            junction_alias = self.add_table(data["junction_table"])
            if kind == "mn_forward":
                source_key, target_key = edge.source_key, edge.target_key
            else:
                source_key, target_key = edge.target_key, edge.source_key
            source_alias = self.bindings[source_key].alias
            target_alias = self.bindings[target_key].alias
            self.conditions.append(
                f"{junction_alias}.{data['source_fk']} = "
                f"{source_alias}.{data['source_pk']}"
            )
            self.conditions.append(
                f"{junction_alias}.{data['target_fk']} = "
                f"{target_alias}.{data['target_pk']}"
            )
            return

        if kind in ("mv_forward", "mv_reverse"):
            # Endpoints: owner entity O, multivalued value node V. The edge
            # may be traversed from either end.
            value_endpoint = (
                edge.target_key if kind == "mv_forward" else edge.source_key
            )
            if new_key == value_endpoint:
                # Known owner entity -> new multivalued node.
                alias = self.add_table(data["attr_table"])
                self.bindings[new_key] = _Binding(
                    new_key,
                    NodeTypeCategory.MULTIVALUED_ATTRIBUTE,
                    alias,
                    f"{alias}.{data['value_column']}",
                )
                self.conditions.append(
                    f"{alias}.{data['owner_fk']} = "
                    f"{known.alias}.{data['owner_pk']}"
                )
                return
            # Known multivalued node -> new owner entity.
            new_mapping = self.node_mapping(new_key)
            entity_alias = self.add_table(new_mapping.table)
            self.bindings[new_key] = _Binding(
                new_key,
                NodeTypeCategory.ENTITY,
                entity_alias,
                f"{entity_alias}.{new_mapping.key_column}",
            )
            if known.reusable_attr_alias is not None:
                attr_alias = known.reusable_attr_alias
                known.reusable_attr_alias = None
            else:
                attr_alias = self.add_table(data["attr_table"])
                self.conditions.append(
                    f"{attr_alias}.{data['value_column']} = {known.key_expr}"
                )
            self.conditions.append(
                f"{attr_alias}.{data['owner_fk']} = "
                f"{entity_alias}.{new_mapping.key_column}"
            )
            return

        if kind in ("cat_forward", "cat_reverse"):
            value_endpoint = (
                edge.target_key if kind == "cat_forward" else edge.source_key
            )
            if new_key == value_endpoint:
                # Known owner entity -> new categorical node: no new alias.
                self.bindings[new_key] = _Binding(
                    new_key,
                    NodeTypeCategory.CATEGORICAL_ATTRIBUTE,
                    None,
                    f"{known.alias}.{data['column']}",
                )
                return
            # Known categorical node -> new owner entity.
            new_mapping = self.node_mapping(new_key)
            alias = self.add_table(new_mapping.table)
            self.bindings[new_key] = _Binding(
                new_key,
                NodeTypeCategory.ENTITY,
                alias,
                f"{alias}.{new_mapping.key_column}",
            )
            if known.key_expr is None:
                # Deferred categorical root: adopt this child's column.
                known.key_expr = f"{alias}.{data['column']}"
            else:
                self.conditions.append(
                    f"{alias}.{data['column']} = {known.key_expr}"
                )
            return

        raise TranslationError(f"unknown edge mapping kind {kind!r}")

    # ------------------------------------------------------------------
    # Condition rendering
    # ------------------------------------------------------------------
    def _render_node_conditions(self, key: str) -> None:
        node = self.pattern.node(key)
        binding = self.bindings[key]
        for condition in node.conditions:
            self.conditions.append(self._render_condition(condition, key, binding))

    def _render_condition(
        self, condition: Condition, key: str, binding: _Binding
    ) -> str:
        if isinstance(condition, AttributeCompare):
            return (
                f"{self._attr_expr(binding, key, condition.attribute)} "
                f"{condition.op} {_literal(condition.value)}"
            )
        if isinstance(condition, AttributeLike):
            keyword = "NOT LIKE" if condition.negate else "LIKE"
            return (
                f"{self._attr_expr(binding, key, condition.attribute)} "
                f"{keyword} {_literal(condition.pattern)}"
            )
        if isinstance(condition, AttributeIn):
            values = ", ".join(_literal(value) for value in condition.values)
            return (
                f"{self._attr_expr(binding, key, condition.attribute)} "
                f"IN ({values})"
            )
        if isinstance(condition, NodeIs):
            if self.graph is None:
                raise TranslationError(
                    "NodeIs conditions need the instance graph to resolve "
                    "the node's relational key"
                )
            node = self.graph.node(condition.node_id)
            return f"{binding.key_expr} = {_literal(node.source_key)}"
        if isinstance(condition, NodeIn):
            if self.graph is None:
                raise TranslationError(
                    "NodeIn conditions need the instance graph to resolve "
                    "the nodes' relational keys"
                )
            if not condition.node_ids:
                return "1 = 0"
            keys = ", ".join(
                _literal(self.graph.node(node_id).source_key)
                for node_id in sorted(condition.node_ids)
            )
            return f"{binding.key_expr} IN ({keys})"
        if isinstance(condition, NeighborSatisfies):
            return self._render_neighbor_exists(condition, key, binding)
        if isinstance(condition, AndCondition):
            parts = [
                self._render_condition(operand, key, binding)
                for operand in condition.operands
            ]
            return "(" + " AND ".join(parts) + ")"
        if isinstance(condition, OrCondition):
            parts = [
                self._render_condition(operand, key, binding)
                for operand in condition.operands
            ]
            return "(" + " OR ".join(parts) + ")"
        if isinstance(condition, NotCondition):
            return f"NOT ({self._render_condition(condition.operand, key, binding)})"
        raise TranslationError(
            f"condition {type(condition).__name__} has no SQL rendering"
        )

    def _attr_expr(self, binding: _Binding, key: str, attribute: str) -> str:
        category = self.node_category(key)
        if category is NodeTypeCategory.ENTITY:
            return f"{binding.alias}.{attribute}"
        # Multivalued / categorical nodes have a single attribute: the value.
        return str(binding.key_expr)

    def _render_neighbor_exists(
        self, condition: NeighborSatisfies, key: str, binding: _Binding
    ) -> str:
        """Section 6.1: a neighbor-label filter becomes an EXISTS subquery."""
        mapping = self.mapping.edges.get(condition.edge_type)
        if mapping is None:
            raise TranslationError(
                f"edge type {condition.edge_type!r} has no relational mapping"
            )
        edge_type = self.schema.edge_type(condition.edge_type)
        sub = _Translator(
            _neighbor_probe_pattern(edge_type.target, condition.inner),
            self.schema,
            self.mapping,
            self.graph,
        )
        sub._alias_counter = self._alias_counter + 100  # avoid alias clashes
        sub._bind_root(edge_type.target)
        sub._render_node_conditions(edge_type.target)
        target_binding = sub.bindings[edge_type.target]
        correlation = self._correlate(
            mapping.kind, mapping.data, binding, target_binding, sub
        )
        from_clause = ", ".join(f"{t} {a}" for t, a in sub.from_items)
        where = " AND ".join(sub.conditions + correlation)
        return f"EXISTS (SELECT 1 FROM {from_clause} WHERE {where})"

    def _correlate(
        self,
        kind: str,
        data: dict[str, str],
        outer: _Binding,
        inner: _Binding,
        sub: "_Translator",
    ) -> list[str]:
        if kind == "fk_forward":
            return [f"{outer.alias}.{data['fk_column']} = "
                    f"{inner.alias}.{data['ref_pk']}"]
        if kind == "fk_reverse":
            return [f"{inner.alias}.{data['fk_column']} = "
                    f"{outer.alias}.{data['ref_pk']}"]
        if kind in ("mn_forward", "mn_reverse"):
            junction_alias = sub.add_table(data["junction_table"])
            if kind == "mn_forward":
                return [
                    f"{junction_alias}.{data['source_fk']} = "
                    f"{outer.alias}.{data['source_pk']}",
                    f"{junction_alias}.{data['target_fk']} = "
                    f"{inner.alias}.{data['target_pk']}",
                ]
            return [
                f"{junction_alias}.{data['target_fk']} = "
                f"{outer.alias}.{data['target_pk']}",
                f"{junction_alias}.{data['source_fk']} = "
                f"{inner.alias}.{data['source_pk']}",
            ]
        if kind == "mv_forward":
            return [f"{inner.alias}.{data['owner_fk']} = "
                    f"{outer.alias}.{data['owner_pk']}"]
        if kind == "cat_forward":
            # Inner binding is an alias over the owner table itself.
            return [f"{inner.key_expr} = {outer.alias}.{data['column']}"]
        raise TranslationError(
            f"neighbor filters over {kind!r} edges are not supported in SQL"
        )


def correlate_pattern_edge(
    edge: PatternEdge,
    mapping_kind: str,
    data: dict[str, str],
    outer_key: str,
    outer_binding: _Binding,
    inner_binding: _Binding,
    sub: "_Translator",
) -> list[str]:
    """Correlation conditions tying an outer binding to a subquery binding
    across one pattern edge (used by the partitioned execution strategy's
    semijoin EXISTS clauses, Section 6.2).

    ``sub`` is the subquery's translator — junction/attribute tables needed
    by the correlation are added to *its* FROM list.
    """
    def side(endpoint_key: str) -> _Binding:
        return outer_binding if endpoint_key == outer_key else inner_binding

    if mapping_kind in ("fk_forward", "fk_reverse"):
        owner_endpoint = (
            edge.source_key if mapping_kind == "fk_forward" else edge.target_key
        )
        ref_endpoint = (
            edge.target_key if mapping_kind == "fk_forward" else edge.source_key
        )
        owner = side(owner_endpoint)
        ref = side(ref_endpoint)
        return [f"{owner.alias}.{data['fk_column']} = {ref.alias}.{data['ref_pk']}"]
    if mapping_kind in ("mn_forward", "mn_reverse"):
        source_endpoint = (
            edge.source_key if mapping_kind == "mn_forward" else edge.target_key
        )
        target_endpoint = (
            edge.target_key if mapping_kind == "mn_forward" else edge.source_key
        )
        source = side(source_endpoint)
        target = side(target_endpoint)
        junction_alias = sub.add_table(data["junction_table"])
        return [
            f"{junction_alias}.{data['source_fk']} = "
            f"{source.alias}.{data['source_pk']}",
            f"{junction_alias}.{data['target_fk']} = "
            f"{target.alias}.{data['target_pk']}",
        ]
    if mapping_kind in ("mv_forward", "mv_reverse"):
        owner_endpoint = (
            edge.source_key if mapping_kind == "mv_forward" else edge.target_key
        )
        value_endpoint = (
            edge.target_key if mapping_kind == "mv_forward" else edge.source_key
        )
        owner = side(owner_endpoint)
        value = side(value_endpoint)
        if (
            value is inner_binding
            and value.alias is not None
            and value.reusable_attr_alias is not None
        ):
            # The multivalued node lives in the subquery and its root
            # attribute-table row is still unclaimed: that row can serve as
            # the correlation edge. Consume it — each attribute-table row
            # encodes exactly one owner↔value edge, so a row already used
            # for an internal subtree join must not double as the
            # correlation (it would force both owners to coincide).
            value.reusable_attr_alias = None
            return [
                f"{value.alias}.{data['owner_fk']} = "
                f"{owner.alias}.{data['owner_pk']}"
            ]
        # Otherwise bridge with a fresh attribute-table alias: one row
        # linking the value to the owner on the other side of the edge.
        bridge = sub.add_table(data["attr_table"])
        return [
            f"{bridge}.{data['value_column']} = {value.key_expr}",
            f"{bridge}.{data['owner_fk']} = {owner.alias}.{data['owner_pk']}",
        ]
    if mapping_kind in ("cat_forward", "cat_reverse"):
        owner_endpoint = (
            edge.source_key if mapping_kind == "cat_forward" else edge.target_key
        )
        value_endpoint = (
            edge.target_key if mapping_kind == "cat_forward" else edge.source_key
        )
        owner = side(owner_endpoint)
        value = side(value_endpoint)
        return [f"{owner.alias}.{data['column']} = {value.key_expr}"]
    raise TranslationError(
        f"cannot correlate across edge mapping kind {mapping_kind!r}"
    )


def _neighbor_probe_pattern(type_name: str, inner: Condition) -> QueryPattern:
    node = PatternNode(key=type_name, type_name=type_name, conditions=(inner,))
    return QueryPattern(primary_key=type_name, nodes=(node,))


def _literal(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return str(value)


def pattern_to_sql(
    pattern: QueryPattern,
    schema: SchemaGraph,
    mapping: TranslationMap,
    graph: InstanceGraph | None = None,
) -> SqlTranslation:
    """Translate an ETable query pattern into the Section 8 SQL pattern."""
    return _Translator(pattern, schema, mapping, graph).translate()


# ----------------------------------------------------------------------
# Dialect shim
# ----------------------------------------------------------------------
# The translators above emit the "memory" dialect — the canonical flavour
# understood by repro.relational.sql. Real engines differ in small,
# mechanical ways; adapt_sql() bridges them so the same translation runs on
# every repro.relational.backends backend. Differences NOT handled here
# because the SQLite backend resolves them at load/registration time
# instead: ENT_LIST (registered via create_aggregate), LIKE case folding
# (the memory engine's matcher is installed as an override), and type
# affinity (BOOLEAN columns fold to INTEGER when the database is loaded).
# quote_identifier (re-exported from the backends layer) lives with the
# backends so engine loaders share the same quoting; adapt_sql leaves
# double-quoted spans untouched, so quoted identifiers survive rewriting.

_BOOLEAN_LITERAL = re.compile(r"\b(TRUE|FALSE)\b", re.IGNORECASE)


def adapt_sql(sql: str, dialect: str) -> str:
    """Rewrite memory-dialect SQL for another engine's dialect.

    For ``"sqlite"`` the TRUE/FALSE keyword literals become 1/0 (SQLite
    stores booleans as integers, and versions before 3.23 do not parse the
    keywords at all). Single-quoted string literals and double-quoted
    identifiers are left untouched.
    """
    if dialect == "memory":
        return sql
    if dialect != "sqlite":
        raise TranslationError(f"unknown SQL dialect {dialect!r}")
    out: list[str] = []
    position = 0
    length = len(sql)
    while position < length:
        char = sql[position]
        if char in ("'", '"'):
            # Copy the quoted span verbatim; a doubled quote escapes itself.
            end = position + 1
            while end < length:
                if sql[end] == char:
                    if end + 1 < length and sql[end + 1] == char:
                        end += 2
                        continue
                    break
                end += 1
            out.append(sql[position:end + 1])
            position = end + 1
            continue
        next_single = sql.find("'", position)
        next_double = sql.find('"', position)
        candidates = [p for p in (next_single, next_double) if p != -1]
        next_quote = min(candidates) if candidates else -1
        chunk = sql[position:] if next_quote == -1 else sql[position:next_quote]
        out.append(
            _BOOLEAN_LITERAL.sub(
                lambda match: "1" if match.group(1).upper() == "TRUE" else "0",
                chunk,
            )
        )
        position = length if next_quote == -1 else next_quote
    return "".join(out)
