"""Format transformation (Section 5.4.2): graph relation → enriched table.

The matched graph relation is pivoted to the primary node type:

* rows    = Π_τa(m(Q)) — distinct primary nodes, first-appearance order;
* Ab      = the primary type's attributes (scalar cells);
* At      = one entity-reference column per non-primary pattern node, the
            distinct nodes co-occurring with the row in matched tuples;
* Ah      = one entity-reference column per schema edge type leaving the
            primary type, filled by direct neighbor lookups.

This is "similar to setting one of the relations as a GROUP BY attribute in
SQL, but while GROUP BY aggregates ... ETable presents a list of the
corresponding instances as entity references".

Neighbor columns that duplicate a participating column (the pattern already
joins that edge from the primary) are auto-hidden, mirroring Figure 8's
remark that duplicated neighbor columns are omitted from display; they can
be re-shown with :meth:`ETable.show_column`.
"""

from __future__ import annotations

from typing import Any
from weakref import WeakKeyDictionary

from repro.tgm.graph_relation import GraphRelation
from repro.tgm.instance_graph import InstanceGraph, Node
from repro.core.etable import ColumnKind, ColumnSpec, ETable, ETableRow, EntityRef
from repro.core.matching import (
    match,
    match_parallel,
    match_planned,
    match_pushdown,
)
from repro.core.query_pattern import QueryPattern


def execute_pattern(
    pattern: QueryPattern,
    graph: InstanceGraph,
    row_limit: int | None = None,
    engine: str = "planned",
    workers: int | None = None,
) -> ETable:
    """Run the full pipeline: instance matching, then format transformation.

    ``row_limit`` truncates the *presented* rows (UI pagination); matching
    itself is always complete so reference counts stay exact.

    ``engine`` selects the matcher: ``"planned"`` (default) runs the
    cost-based planner, ``"naive"`` the reference BFS pipeline,
    ``"parallel"`` the planner with partitioned delta joins across
    ``workers`` processes (``None`` = auto), and ``"pushdown"`` the
    planner with oversized delta joins routed to SQLite. All produce the
    same ETable; the reference stays available as the oracle.
    """
    if engine == "planned":
        matched = match_planned(pattern, graph)
    elif engine == "naive":
        matched = match(pattern, graph)
    elif engine == "parallel":
        matched = match_parallel(pattern, graph, workers=workers)
    elif engine == "pushdown":
        matched = match_pushdown(pattern, graph)
    else:
        raise ValueError(f"unknown matching engine {engine!r}")
    return transform(pattern, matched, graph, row_limit=row_limit)


def transform(
    pattern: QueryPattern,
    matched: GraphRelation,
    graph: InstanceGraph,
    row_limit: int | None = None,
) -> ETable:
    """Pivot a matched graph relation into an :class:`ETable`."""
    schema = graph.schema
    primary = pattern.primary
    primary_type = schema.node_type(primary.type_name)

    columns: list[ColumnSpec] = [
        ColumnSpec(ColumnKind.BASE, attribute, attribute)
        for attribute in primary_type.attributes
    ]
    participating_keys = pattern.participating_keys
    for key in participating_keys:
        node = pattern.node(key)
        columns.append(
            ColumnSpec(ColumnKind.PARTICIPATING, key, key, node.type_name)
        )
    neighbor_edges = schema.edges_from(primary.type_name)
    for edge_type in neighbor_edges:
        columns.append(
            ColumnSpec(
                ColumnKind.NEIGHBOR,
                edge_type.name,
                edge_type.display_name,
                edge_type.target,
            )
        )

    primary_position = matched.position(primary.key)
    participating_positions = [
        (key, matched.position(key)) for key in participating_keys
    ]

    # One streamed pass over the matched tuples (no row-wise materialization
    # of the relation): collect row order and the distinct participating
    # nodes per (row, column).
    row_order: list[int] = []
    row_index: dict[int, int] = {}
    cell_sets: list[dict[str, dict[int, None]]] = []  # ordered-set per cell
    for tuple_row in matched.iter_rows():
        primary_id = tuple_row[primary_position]
        index = row_index.get(primary_id)
        if index is None:
            index = len(row_order)
            row_index[primary_id] = index
            row_order.append(primary_id)
            cell_sets.append({key: {} for key, _ in participating_positions})
        sets = cell_sets[index]
        for key, position in participating_positions:
            sets[key][tuple_row[position]] = None

    if row_limit is not None:
        row_order = row_order[:row_limit]

    refs = _ref_cache(graph)

    def ref_of(node_id: int) -> EntityRef:
        ref = refs.get(node_id)
        if ref is None:
            ref = _node_ref(graph.node(node_id), schema)
            refs[node_id] = ref
        return ref

    rows: list[ETableRow] = []
    for index, primary_id in enumerate(row_order):
        node = graph.node(primary_id)
        cells: dict[str, list[EntityRef]] = {}
        for key, _ in participating_positions:
            cells[key] = [
                ref_of(node_id) for node_id in cell_sets[index][key]
            ]
        for edge_type in neighbor_edges:
            cells[edge_type.name] = [
                ref_of(neighbor_id)
                for neighbor_id in graph.neighbors_view(
                    primary_id, edge_type.name
                )
            ]
        rows.append(
            ETableRow(
                node_id=primary_id,
                attributes=dict(node.attributes),
                cells=cells,
            )
        )

    etable = ETable(pattern, columns, rows, graph)
    _auto_hide_duplicated_neighbors(etable)
    return etable


# EntityRefs are immutable and depend only on a node's label, so one cache
# per graph version serves every transform over that graph. WeakKeyDictionary
# keeps dropped graphs collectable; the version check drops stale labels
# after a mutation.
_REF_CACHES: "WeakKeyDictionary[InstanceGraph, tuple[int, dict[int, EntityRef]]]" = (
    WeakKeyDictionary()
)


def _ref_cache(graph: InstanceGraph) -> dict[int, EntityRef]:
    entry = _REF_CACHES.get(graph)
    if entry is None or entry[0] != graph.version:
        entry = (graph.version, {})
        _REF_CACHES[graph] = entry
    return entry[1]


def _entity_ref(graph: InstanceGraph, node_id: int) -> EntityRef:
    return _node_ref(graph.node(node_id), graph.schema)


def _node_ref(node: Node, schema) -> EntityRef:
    return EntityRef(
        node_id=node.node_id,
        type_name=node.type_name,
        label=node.label(schema),
    )


def _auto_hide_duplicated_neighbors(etable: ETable) -> None:
    """Hide neighbor columns whose edge the pattern already joins from the
    primary node (their content duplicates a participating column)."""
    pattern = etable.pattern
    primary_key = pattern.primary_key
    duplicated_edges: set[str] = set()
    for edge in pattern.edges_touching(primary_key):
        if edge.source_key == primary_key:
            duplicated_edges.add(edge.edge_type)
        else:
            # The pattern edge points at the primary; the matching neighbor
            # column uses the reverse twin.
            schema_edge = etable.graph.schema.edge_type(edge.edge_type)
            if schema_edge.reverse_name is not None:
                duplicated_edges.add(schema_edge.reverse_name)
    for column in etable.neighbor_columns():
        if column.key in duplicated_edges:
            etable.hide_column(column.key)


def duplication_factor(pattern: QueryPattern, graph: InstanceGraph) -> float:
    """How many flat join tuples each ETable row replaces.

    This quantifies the paper's motivating claim that join results are
    "hard to interpret (e.g., many duplicated cells)": a flat relational
    join of the pattern yields ``len(m(Q))`` tuples while ETable presents
    one row per primary node.
    """
    matched = match(pattern, graph)
    distinct = len(matched.distinct_column(pattern.primary_key))
    if distinct == 0:
        return 0.0
    return len(matched) / distinct
