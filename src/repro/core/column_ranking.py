"""Column ranking — the paper's future-work item #3.

Section 9: "(3) leveraging machine learning techniques to rank and select
important columns to display"; one study participant noted "there are too
many attributes ..., which is not easy to interpret" (Section 7.2).

Full ML is out of scope for the paper itself, so we implement the
transparent feature-scoring variant the direction implies: every column is
scored from interpretable signals of the *current* result —

* fill rate           — fraction of rows with a value / ≥1 reference;
* distinctness        — distinct values over rows (scalar columns);
* reference variance  — spread of reference counts (reference columns;
                        uniform counts carry little information);
* compactness penalty — very wide cells are hard to read;
* kind prior          — base attributes and participating columns (the ones
                        the user asked for) outrank speculative neighbors.

``select_columns`` keeps the top-k columns and hides the rest in place,
mirroring the envisioned UI behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.etable import ColumnKind, ColumnSpec, ETable

_KIND_PRIOR = {
    ColumnKind.BASE: 1.0,
    ColumnKind.PARTICIPATING: 0.9,
    ColumnKind.NEIGHBOR: 0.55,
}


@dataclass(frozen=True)
class ColumnScore:
    column: ColumnSpec
    score: float
    fill_rate: float
    distinctness: float
    spread: float

    def explain(self) -> str:
        return (
            f"{self.column.display}: score={self.score:.3f} "
            f"(fill={self.fill_rate:.2f}, distinct={self.distinctness:.2f}, "
            f"spread={self.spread:.2f}, kind={self.column.kind.value})"
        )


def score_columns(etable: ETable) -> list[ColumnScore]:
    """Score every column of the result, best first."""
    scores = [_score_one(etable, column) for column in etable.columns]
    scores.sort(key=lambda item: (-item.score, item.column.display))
    return scores


def _score_one(etable: ETable, column: ColumnSpec) -> ColumnScore:
    rows = etable.rows
    if not rows:
        return ColumnScore(column, _KIND_PRIOR[column.kind], 0.0, 0.0, 0.0)

    if column.kind is ColumnKind.BASE:
        values = [row.attributes.get(column.key) for row in rows]
        present = [value for value in values if value is not None]
        fill_rate = len(present) / len(rows)
        distinctness = (
            len(set(map(str, present))) / len(present) if present else 0.0
        )
        # Constant columns say nothing; unique text ids say little more
        # than the label already does. A mid-range distinctness is ideal;
        # labels themselves are caught by the 'name-ish' bonus below.
        spread = 1.0 - abs(distinctness - 0.6)
        score = _KIND_PRIOR[column.kind] * (
            0.45 * fill_rate + 0.3 * distinctness + 0.25 * spread
        )
        if column.key == etable.graph.schema.node_type(
            etable.primary_type
        ).label_attribute:
            score += 0.5  # the label column is always worth showing
        return ColumnScore(column, score, fill_rate, distinctness, spread)

    counts = [row.ref_count(column.key) for row in rows]
    non_empty = sum(1 for count in counts if count > 0)
    fill_rate = non_empty / len(rows)
    mean = sum(counts) / len(counts)
    variance = sum((count - mean) ** 2 for count in counts) / len(counts)
    spread = 1.0 - 1.0 / (1.0 + math.sqrt(variance))  # 0 = uniform
    width_penalty = 1.0 / (1.0 + max(0.0, mean - 8.0) / 8.0)
    distinctness = min(1.0, mean / 5.0)
    score = _KIND_PRIOR[column.kind] * width_penalty * (
        0.5 * fill_rate + 0.3 * spread + 0.2 * distinctness
    )
    return ColumnScore(column, score, fill_rate, distinctness, spread)


def select_columns(etable: ETable, keep: int = 8) -> list[ColumnScore]:
    """Keep the ``keep`` best columns visible; hide the rest in place.

    Returns the full ranking so callers can render an explanation. The
    pattern's own participating columns are never hidden below rank — the
    user explicitly joined them.
    """
    ranking = score_columns(etable)
    keep_keys = {item.column.key for item in ranking[:keep]}
    keep_keys |= {column.key for column in etable.participating_columns()}
    for column in etable.columns:
        if column.key in keep_keys:
            etable.show_column(column.key)
        else:
            etable.hide_column(column.key)
    return ranking
