"""Set operations over ETables — the paper's future-work item #1.

Section 9: "Future research directions include: (1) incorporating more
operations to further improve expressive power (e.g., set operations)".
These operators combine two enriched tables whose primary node types match:

* :func:`etable_union`        — rows present in either table;
* :func:`etable_intersection` — rows present in both;
* :func:`etable_difference`   — rows of the left table absent from the right.

Rows are identified by their primary node, so the combination is exact (no
label collisions). The result keeps the *left* table's pattern and columns.
For union, cells of right-only rows come from three sources: column keys
both tables share keep the right table's cells, participating columns
exclusive to the left pattern are re-derived by executing the left pattern
restricted to those nodes — the identity restriction replaces the primary
node's own row filters, other nodes' conditions stay, and nodes failing
the structural pattern get empty cells — and neighbor columns are
recomputed from raw adjacency.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import InvalidOperator
from repro.tgm.conditions import NodeIn
from repro.core.etable import ColumnKind, ETable, ETableRow
from repro.core.query_pattern import QueryPattern


def _check_compatible(left: ETable, right: ETable) -> None:
    if left.primary_type != right.primary_type:
        raise InvalidOperator(
            f"set operation needs matching primary types, got "
            f"{left.primary_type!r} and {right.primary_type!r}"
        )
    if left.graph is not right.graph:
        raise InvalidOperator(
            "set operations require ETables over the same instance graph"
        )


def _clone_row(row: ETableRow) -> ETableRow:
    return ETableRow(
        node_id=row.node_id,
        attributes=dict(row.attributes),
        cells={key: list(refs) for key, refs in row.cells.items()},
    )


def _rebuild_neighbor_cells(etable: ETable, row: ETableRow) -> None:
    """Fill neighbor columns of a transplanted row from raw adjacency."""
    from repro.core.transform import _node_ref  # local import, no cycle

    for column in etable.neighbor_columns():
        row.cells[column.key] = [
            _node_ref(neighbor, etable.graph.schema)
            for neighbor in etable.graph.neighbors(row.node_id, column.key)
        ]


def _rederive_left_rows(
    left: ETable, node_ids: Iterable[int]
) -> dict[int, ETableRow]:
    """Execute the left pattern restricted to ``node_ids``.

    Returns the re-derived rows by primary node id; nodes that do not match
    the left pattern are simply absent. Used to fill participating columns
    the right table cannot supply for transplanted rows.
    """
    from repro.core.operators import select as pattern_select
    from repro.core.transform import execute_pattern  # local import, no cycle

    # The node-identity restriction *replaces* the primary node's own row
    # filters (which the transplanted rows fail by construction — that is
    # why they are right-only); conditions on the other pattern nodes are
    # kept, since they define what the participating cells contain.
    restricted = pattern_select(
        left.pattern, NodeIn(node_ids), replace_existing=True
    )
    rederived = execute_pattern(restricted, left.graph)
    return {row.node_id: row for row in rederived.rows}


def etable_union(left: ETable, right: ETable) -> ETable:
    """Rows of either table, left rows first, then right-only rows.

    Right-only rows keep the right table's cells for columns both tables
    share; participating columns exclusive to the left pattern are
    re-derived by executing the left pattern restricted to those nodes
    (rows that never matched the left pattern get empty cells there);
    neighbor columns are recomputed.
    """
    _check_compatible(left, right)
    left_ids = {row.node_id for row in left.rows}
    rows = [_clone_row(row) for row in left.rows]
    left_keys = {column.key for column in left.columns}
    right_keys = {column.key for column in right.columns}
    right_only = [row for row in right.rows if row.node_id not in left_ids]
    exclusive = [
        column for column in left.participating_columns()
        if column.key not in right_keys
    ]
    rederived = (
        _rederive_left_rows(left, (row.node_id for row in right_only))
        if right_only and exclusive else {}
    )
    scaffold = ETable(left.pattern, left.columns, [], left.graph)
    for row in right_only:
        transplanted = ETableRow(
            node_id=row.node_id,
            attributes=dict(row.attributes),
            cells={},
        )
        for key, refs in row.cells.items():
            if key in left_keys:
                transplanted.cells[key] = list(refs)
        for column in left.participating_columns():
            if column.key in transplanted.cells:
                continue
            source = rederived.get(row.node_id)
            transplanted.cells[column.key] = (
                list(source.refs(column.key)) if source else []
            )
        _rebuild_neighbor_cells(scaffold, transplanted)
        rows.append(transplanted)
    result = ETable(left.pattern, list(left.columns), rows, left.graph)
    result.hidden_columns = set(left.hidden_columns)
    return result


def etable_intersection(left: ETable, right: ETable) -> ETable:
    """Left rows whose primary node also appears in the right table."""
    _check_compatible(left, right)
    right_ids = {row.node_id for row in right.rows}
    rows = [_clone_row(row) for row in left.rows if row.node_id in right_ids]
    result = ETable(left.pattern, list(left.columns), rows, left.graph)
    result.hidden_columns = set(left.hidden_columns)
    return result


def etable_difference(left: ETable, right: ETable) -> ETable:
    """Left rows whose primary node does not appear in the right table."""
    _check_compatible(left, right)
    right_ids = {row.node_id for row in right.rows}
    rows = [
        _clone_row(row) for row in left.rows if row.node_id not in right_ids
    ]
    result = ETable(left.pattern, list(left.columns), rows, left.graph)
    result.hidden_columns = set(left.hidden_columns)
    return result
