"""Set operations over ETables — the paper's future-work item #1.

Section 9: "Future research directions include: (1) incorporating more
operations to further improve expressive power (e.g., set operations)".
These operators combine two enriched tables whose primary node types match:

* :func:`etable_union`        — rows present in either table;
* :func:`etable_intersection` — rows present in both;
* :func:`etable_difference`   — rows of the left table absent from the right.

Rows are identified by their primary node, so the combination is exact (no
label collisions). The result keeps the *left* table's pattern and columns;
participating cells for rows contributed only by the right table are
re-derived by executing the left pattern restricted to those nodes — except
for union, where cells of right-only rows fall back to the right table's
cells for shared column keys and neighbor lookups otherwise.
"""

from __future__ import annotations

from repro.errors import InvalidOperator
from repro.core.etable import ColumnKind, ETable, ETableRow
from repro.core.query_pattern import QueryPattern


def _check_compatible(left: ETable, right: ETable) -> None:
    if left.primary_type != right.primary_type:
        raise InvalidOperator(
            f"set operation needs matching primary types, got "
            f"{left.primary_type!r} and {right.primary_type!r}"
        )
    if left.graph is not right.graph:
        raise InvalidOperator(
            "set operations require ETables over the same instance graph"
        )


def _clone_row(row: ETableRow) -> ETableRow:
    return ETableRow(
        node_id=row.node_id,
        attributes=dict(row.attributes),
        cells={key: list(refs) for key, refs in row.cells.items()},
    )


def _rebuild_neighbor_cells(etable: ETable, row: ETableRow) -> None:
    """Fill neighbor columns of a transplanted row from raw adjacency."""
    from repro.core.transform import _node_ref  # local import, no cycle

    for column in etable.neighbor_columns():
        row.cells[column.key] = [
            _node_ref(neighbor, etable.graph.schema)
            for neighbor in etable.graph.neighbors(row.node_id, column.key)
        ]


def etable_union(left: ETable, right: ETable) -> ETable:
    """Rows of either table, left rows first, then right-only rows.

    Right-only rows keep the right table's cells for columns both tables
    share; neighbor columns are recomputed; participating columns exclusive
    to the left pattern are empty for them (the row never matched the left
    pattern — exactly SQL UNION's positional semantics, made explicit).
    """
    _check_compatible(left, right)
    left_ids = {row.node_id for row in left.rows}
    rows = [_clone_row(row) for row in left.rows]
    left_keys = {column.key for column in left.columns}
    for row in right.rows:
        if row.node_id in left_ids:
            continue
        transplanted = ETableRow(
            node_id=row.node_id,
            attributes=dict(row.attributes),
            cells={},
        )
        for key, refs in row.cells.items():
            if key in left_keys:
                transplanted.cells[key] = list(refs)
        for column in left.participating_columns():
            transplanted.cells.setdefault(column.key, [])
        result_placeholder = ETable(
            left.pattern, left.columns, [], left.graph
        )
        _rebuild_neighbor_cells(result_placeholder, transplanted)
        rows.append(transplanted)
    result = ETable(left.pattern, list(left.columns), rows, left.graph)
    result.hidden_columns = set(left.hidden_columns)
    return result


def etable_intersection(left: ETable, right: ETable) -> ETable:
    """Left rows whose primary node also appears in the right table."""
    _check_compatible(left, right)
    right_ids = {row.node_id for row in right.rows}
    rows = [_clone_row(row) for row in left.rows if row.node_id in right_ids]
    result = ETable(left.pattern, list(left.columns), rows, left.graph)
    result.hidden_columns = set(left.hidden_columns)
    return result


def etable_difference(left: ETable, right: ETable) -> ETable:
    """Left rows whose primary node does not appear in the right table."""
    _check_compatible(left, right)
    right_ids = {row.node_id for row in right.rows}
    rows = [
        _clone_row(row) for row in left.rows if row.node_id not in right_ids
    ]
    result = ETable(left.pattern, list(left.columns), rows, left.graph)
    result.hidden_columns = set(left.hidden_columns)
    return result
