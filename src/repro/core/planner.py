"""Cost-based planning for instance matching (Definition 4, Section 5.4.1).

The reference matcher (:func:`repro.core.matching.match`) evaluates the
pattern in BFS order from the primary node — correct, but oblivious to how
selective each pattern node is. This module adds the machinery the paper's
interactivity claim (Section 7) and its future-work item #2 (Section 9,
"accelerating the execution speed of updated queries") call for:

* **selectivity estimation** over :class:`~repro.tgm.instance_graph.GraphStatistics`
  (per-type cardinalities, per-edge degree histograms, per-attribute
  distinct counts) — the statistics layer of the engine;
* **index-backed candidate enumeration**: equality and identity conditions
  become hash-index probes (``InstanceGraph.attribute_index``) instead of
  full type scans — the secondary-index layer;
* a **greedy join-order planner** that starts from the most selective
  pattern node and repeatedly joins the frontier node with the smallest
  estimated result growth, emitting an inspectable :class:`Plan` with
  per-step cost estimates (the REPL's ``plan`` command prints it);
* **semi-join pruning** (a Yannakakis-style full reducer over the pattern
  tree): candidate sets are reduced leaf-to-root and root-to-leaf before
  any materializing join, so dangling tuples are never materialized —
  matching is over an acyclic (tree) pattern, where this is exact;
* **prefix-level reuse** hooks: every intermediate relation corresponds to
  a connected subpattern; :class:`PrefixStore` keys them canonically so a
  pattern extended by one node re-executes only the delta join (the paper's
  future-work item #2 realized — see ``repro.core.cache``).

The planner's output is *bit-identical* to the reference matcher: after
executing in selectivity order, :func:`restore_reference_order` re-sorts
the result into the exact attribute and tuple order the BFS pipeline would
have produced, so every downstream consumer (format transformation, SQL
equivalence tests, figures) sees the same ETable.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence
from weakref import WeakKeyDictionary

from repro.analysis.runtime import assert_locked
from repro.errors import InvalidQueryPattern, TgmError
from repro.tgm.conditions import (
    AndCondition,
    AttributeCompare,
    AttributeIn,
    AttributeLike,
    Condition,
    ConditionMemo,
    LabelLike,
    NeighborSatisfies,
    NodeIn,
    NodeIs,
    NotCondition,
    OrCondition,
    conjoin_conditions,
)
from repro.tgm.graph_relation import GraphAttribute, GraphRelation
from repro.tgm.instance_graph import GraphStatistics, InstanceGraph
from repro.core.query_pattern import PatternEdge, QueryPattern

# Heuristic selectivity defaults for predicates without usable statistics.
_LIKE_SELECTIVITY = 0.25
_RANGE_SELECTIVITY = 0.33
_DEFAULT_SELECTIVITY = 0.5


# ----------------------------------------------------------------------
# Selectivity estimation
# ----------------------------------------------------------------------
def estimate_selectivity(
    condition: Condition | None,
    type_name: str,
    stats: GraphStatistics,
) -> float:
    """Estimated fraction of ``type_name`` nodes satisfying ``condition``."""
    if condition is None:
        return 1.0
    cardinality = max(1, stats.cardinality(type_name))
    if isinstance(condition, AndCondition):
        product = 1.0
        for operand in condition.operands:
            product *= estimate_selectivity(operand, type_name, stats)
        return product
    if isinstance(condition, OrCondition):
        product = 1.0
        for operand in condition.operands:
            product *= 1.0 - estimate_selectivity(operand, type_name, stats)
        return 1.0 - product
    if isinstance(condition, NotCondition):
        return 1.0 - estimate_selectivity(condition.operand, type_name, stats)
    if isinstance(condition, NodeIs):
        return 1.0 / cardinality
    if isinstance(condition, NodeIn):
        return min(1.0, len(condition.node_ids) / cardinality)
    if isinstance(condition, AttributeCompare):
        # Per-bucket refinement: equality selectivity comes from the exact
        # attribute-index bucket size, not the 1/distinct uniform average —
        # skewed categorical values (one country holding half the nodes)
        # estimate exactly instead of optimistically.
        if condition.op == "=":
            return stats.equality_fraction(
                type_name, condition.attribute, condition.value
            )
        if condition.op == "!=":
            return 1.0 - stats.equality_fraction(
                type_name, condition.attribute, condition.value
            )
        return _RANGE_SELECTIVITY
    if isinstance(condition, AttributeIn):
        fraction = 0.0
        for value in set(condition.values):
            fraction += stats.equality_fraction(
                type_name, condition.attribute, value
            )
        return min(1.0, fraction)
    if isinstance(condition, AttributeLike):
        return 1.0 - _LIKE_SELECTIVITY if condition.negate else _LIKE_SELECTIVITY
    if isinstance(condition, LabelLike):
        return _LIKE_SELECTIVITY
    if isinstance(condition, NeighborSatisfies):
        edge_stats = stats.edge_type_stats(condition.edge_type)
        participation = min(1.0, edge_stats.sources / cardinality)
        schema = stats.graph.schema
        if schema.has_edge_type(condition.edge_type):
            inner_type = schema.edge_type(condition.edge_type).target
            inner_selectivity = estimate_selectivity(
                condition.inner, inner_type, stats
            )
        else:
            inner_selectivity = _DEFAULT_SELECTIVITY
        # Histogram refinement: P(≥1 matching neighbor) over the exact
        # degree histogram, not min(1, avg_degree × s) — the average form
        # overstates matches for the many low-degree nodes of skewed edges.
        return participation * stats.neighbor_match_probability(
            condition.edge_type, inner_selectivity
        )
    return _DEFAULT_SELECTIVITY


# ----------------------------------------------------------------------
# Candidate enumeration (index probes instead of type scans)
# ----------------------------------------------------------------------
def candidate_ids(
    graph: InstanceGraph,
    type_name: str,
    condition: Condition | None,
    memo: ConditionMemo | None = None,
) -> list[int]:
    """Node ids of ``type_name`` satisfying ``condition``.

    Identity probes (``NodeIs``/``NodeIn``) and attribute-equality probes
    (via the graph's hash indexes) narrow the candidate pool before the
    residual condition is evaluated, turning ``σ`` into index lookups.
    """
    if condition is None:
        return graph.node_ids_of_type(type_name)
    pool: Iterable[int] | None = None
    node_probes = condition.node_probes()
    if node_probes is not None:
        pool = [
            node_id
            for node_id in node_probes
            if graph.has_node(node_id)
            and graph.node(node_id).type_name == type_name
        ]
    else:
        probes = condition.index_probes()
        if probes:
            # Use the narrowest probe; the residual filter below applies the
            # full condition anyway, so any sound probe is safe.
            best: list[int] | None = None
            for attribute, values in probes:
                ids: list[int] = []
                for value in values:
                    ids.extend(
                        graph.find_ids_by_attribute(type_name, attribute, value)
                    )
                if best is None or len(ids) < len(best):
                    best = ids
            pool = sorted(set(best or ()))
    if pool is None:
        pool = graph.node_ids_of_type(type_name)
    if memo is not None:
        return [
            node_id
            for node_id in pool
            if memo.matches(condition, graph.node(node_id), graph)
        ]
    return [
        node_id
        for node_id in pool
        if condition.matches(graph.node(node_id), graph)
    ]


# ----------------------------------------------------------------------
# Plan representation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlanStep:
    """One step of a :class:`Plan`: a base scan or a materializing join."""

    kind: str  # "scan" | "join"
    key: str  # pattern-node key this step produces
    est_rows: float  # estimated result cardinality *after* this step
    detail: str  # human-readable access-path / fanout note
    edge_type: str | None = None  # traversal edge (join steps only)
    left_key: str | None = None  # prefix attribute the join probes from

    def describe(self) -> str:
        if self.kind == "scan":
            return f"scan {self.key}: {self.detail} (est {self.est_rows:.1f} rows)"
        return (
            f"join {self.left_key} -[{self.edge_type}]-> {self.key}: "
            f"{self.detail} (est {self.est_rows:.1f} rows)"
        )


@dataclass
class Plan:
    """An inspectable execution plan for one query pattern.

    ``steps[0]`` is always a scan of the most selective node; each later
    step joins one more pattern node onto the connected prefix. ``explain``
    renders the plan the way the REPL's ``plan`` command shows it.
    """

    pattern: QueryPattern
    steps: list[PlanStep]
    semijoin: bool = True
    node_estimates: dict[str, float] = field(default_factory=dict)

    @property
    def order(self) -> list[str]:
        return [step.key for step in self.steps]

    def explain(self) -> str:
        lines = ["Execution plan (selectivity-ordered):"]
        for number, step in enumerate(self.steps, start=1):
            lines.append(f"  {number}. {step.describe()}")
        if self.semijoin and len(self.steps) > 1:
            lines.append(
                "  semi-join reduction: candidate sets pruned leaf-to-root "
                "and root-to-leaf before materializing joins"
            )
        return "\n".join(lines)


def build_plan(
    pattern: QueryPattern,
    graph: InstanceGraph,
    stats: GraphStatistics | None = None,
    semijoin: bool = True,
) -> Plan:
    """Greedy selectivity-ordered join plan over the pattern tree.

    Starts from the pattern node with the smallest estimated post-selection
    cardinality, then repeatedly picks the frontier node minimizing the
    estimated result growth ``rows × fanout(edge) × selectivity(node)``.
    Directions without an adjacency index (an edge type lacking its reverse
    twin) are never chosen.
    """
    stats = stats or graph.statistics()
    estimates: dict[str, float] = {}
    selectivities: dict[str, float] = {}
    for node in pattern.nodes:
        condition = conjoin_conditions(node.conditions)
        selectivity = estimate_selectivity(condition, node.type_name, stats)
        selectivities[node.key] = selectivity
        estimates[node.key] = stats.cardinality(node.type_name) * selectivity

    start_key = min(estimates, key=lambda key: (estimates[key], _index_of(pattern, key)))
    start_node = pattern.node(start_key)
    steps = [
        PlanStep(
            kind="scan",
            key=start_key,
            est_rows=estimates[start_key],
            detail=_scan_detail(start_node, graph),
        )
    ]
    covered = {start_key}
    est_rows = max(estimates[start_key], 0.0)
    while len(covered) < len(pattern.nodes):
        best: tuple[float, int, str, PatternEdge, str, str] | None = None
        for edge in pattern.edges:
            for left_key, new_key in (
                (edge.source_key, edge.target_key),
                (edge.target_key, edge.source_key),
            ):
                if left_key not in covered or new_key in covered:
                    continue
                traversal = _traversal_edge_name(graph, edge, new_key)
                if traversal is None:
                    continue
                left_type = pattern.node(left_key).type_name
                new_type = pattern.node(new_key).type_name
                fanout = stats.avg_fanout(traversal, left_type)
                growth = est_rows * fanout * selectivities[new_key]
                candidate = (
                    growth,
                    _index_of(pattern, new_key),
                    new_key,
                    edge,
                    left_key,
                    traversal,
                )
                if best is None or candidate[:2] < best[:2]:
                    best = candidate
        if best is None:
            raise InvalidQueryPattern(
                "pattern is not connected (or an edge lacks a traversable "
                "direction)"
            )
        growth, _, new_key, edge, left_key, traversal = best
        est_rows = growth
        left_type = pattern.node(left_key).type_name
        steps.append(
            PlanStep(
                kind="join",
                key=new_key,
                est_rows=est_rows,
                detail=(
                    f"probe adjacency (avg fanout "
                    f"{stats.avg_fanout(traversal, left_type):.2f}, node "
                    f"selectivity {selectivities[new_key]:.3f})"
                ),
                edge_type=traversal,
                left_key=left_key,
            )
        )
        covered.add(new_key)
    return Plan(
        pattern=pattern,
        steps=steps,
        semijoin=semijoin and len(pattern.nodes) > 1,
        node_estimates=estimates,
    )


def _index_of(pattern: QueryPattern, key: str) -> int:
    for index, node in enumerate(pattern.nodes):
        if node.key == key:
            return index
    return len(pattern.nodes)


def _scan_detail(node, graph: InstanceGraph) -> str:
    condition = conjoin_conditions(node.conditions)
    if condition is None:
        return f"full {node.type_name} scan"
    if condition.node_probes() is not None:
        return "identity probe"
    probes = condition.index_probes()
    if probes:
        attribute = probes[0][0]
        return f"hash-index probe on {node.type_name}.{attribute}"
    return f"filtered {node.type_name} scan"


def _traversal_edge_name(
    graph: InstanceGraph, edge: PatternEdge, toward_key: str
) -> str | None:
    """Adjacency-indexed edge-type name for traversing ``edge`` toward
    ``toward_key``; None when that direction has no index."""
    if toward_key == edge.target_key:
        return edge.edge_type
    schema_edge = graph.schema.edge_type(edge.edge_type)
    return schema_edge.reverse_name


# ----------------------------------------------------------------------
# Pattern normalization: constants lifted into a parameter vector
# ----------------------------------------------------------------------
@dataclass(frozen=True, repr=False)
class PlanParameter:
    """Placeholder for one constant lifted out of a normalized pattern.

    Renders as ``?`` (index-free) so the canonical key of ``year = 2006``
    and ``year = 2010`` is the same string — two users filtering on
    different constants share one compiled plan. The index survives on the
    placeholder itself so :meth:`NormalizedPattern.bind` can put every
    constant back exactly where it came from.
    """

    index: int

    def __repr__(self) -> str:
        return "?"

    def __str__(self) -> str:
        return "?"


def _lift_condition(condition: Condition, params: list) -> Condition:
    """Replace comparison / ``IN`` / ``LIKE`` constants with placeholders.

    Appends each lifted constant to ``params`` (depth-first, structural
    order) and returns the templated condition. Identity conditions
    (``NodeIs`` / ``NodeIn``) stay structural: a Single/SeeAll action's node
    id *is* the query shape, and lifting it would make unrelated drill-downs
    share a plan keyed only on "some identity probe".
    """
    if isinstance(condition, AttributeCompare):
        params.append(condition.value)
        return replace(condition, value=PlanParameter(len(params) - 1))
    if isinstance(condition, AttributeIn):
        # The whole value tuple is one parameter, so the canonical key is
        # arity-independent: ``year in (2006, 2007)`` and a three-year IN
        # share the same compiled plan.
        params.append(tuple(condition.values))
        return replace(condition, values=(PlanParameter(len(params) - 1),))
    if isinstance(condition, AttributeLike):
        params.append(condition.pattern)
        return replace(condition, pattern=PlanParameter(len(params) - 1))
    if isinstance(condition, LabelLike):
        params.append(condition.pattern)
        return replace(condition, pattern=PlanParameter(len(params) - 1))
    if isinstance(condition, NeighborSatisfies):
        return replace(condition, inner=_lift_condition(condition.inner, params))
    if isinstance(condition, (AndCondition, OrCondition)):
        return replace(
            condition,
            operands=tuple(
                _lift_condition(operand, params) for operand in condition.operands
            ),
        )
    if isinstance(condition, NotCondition):
        return replace(condition, operand=_lift_condition(condition.operand, params))
    return condition


def _bind_condition(condition: Condition, params: Sequence) -> Condition:
    """Exact inverse of :func:`_lift_condition` for one templated condition."""
    if isinstance(condition, AttributeCompare):
        if isinstance(condition.value, PlanParameter):
            return replace(condition, value=params[condition.value.index])
        return condition
    if isinstance(condition, AttributeIn):
        if len(condition.values) == 1 and isinstance(
            condition.values[0], PlanParameter
        ):
            return replace(
                condition, values=tuple(params[condition.values[0].index])
            )
        return condition
    if isinstance(condition, AttributeLike):
        if isinstance(condition.pattern, PlanParameter):
            return replace(condition, pattern=params[condition.pattern.index])
        return condition
    if isinstance(condition, LabelLike):
        if isinstance(condition.pattern, PlanParameter):
            return replace(condition, pattern=params[condition.pattern.index])
        return condition
    if isinstance(condition, NeighborSatisfies):
        return replace(condition, inner=_bind_condition(condition.inner, params))
    if isinstance(condition, (AndCondition, OrCondition)):
        return replace(
            condition,
            operands=tuple(
                _bind_condition(operand, params) for operand in condition.operands
            ),
        )
    if isinstance(condition, NotCondition):
        return replace(condition, operand=_bind_condition(condition.operand, params))
    return condition


def canonical_condition_token(condition: Condition) -> str:
    """``cache_token()`` with commutative combinator operands sorted.

    ``AndCondition((a, b))`` and ``AndCondition((b, a))`` select the same
    rows but render different ``cache_token()`` strings (operand order is
    preserved there); sorting the operand tokens recursively makes the
    rendering canonical, so semantically equal conditions share cache keys.
    """
    if isinstance(condition, AndCondition):
        return " & ".join(
            sorted(canonical_condition_token(o) for o in condition.operands)
        )
    if isinstance(condition, OrCondition):
        return " | ".join(
            sorted(f"({canonical_condition_token(o)})" for o in condition.operands)
        )
    if isinstance(condition, NotCondition):
        return f"not ({canonical_condition_token(condition.operand)})"
    if isinstance(condition, NeighborSatisfies):
        return (
            f"any {condition.edge_type} "
            f"({canonical_condition_token(condition.inner)})"
        )
    return condition.cache_token()


def canonical_pattern_key(pattern: QueryPattern) -> tuple:
    """Canonical, hashable, full-fidelity rendering of a pattern.

    Node order is normalized by key, per-node condition tokens are sorted,
    and commutative combinators render canonically (see
    :func:`canonical_condition_token`) — logically identical patterns built
    in different orders share one key, constants included.
    """
    nodes = tuple(
        (
            node.key,
            node.type_name,
            tuple(sorted(canonical_condition_token(c) for c in node.conditions)),
        )
        for node in sorted(pattern.nodes, key=lambda n: n.key)
    )
    edges = tuple(
        sorted((e.edge_type, e.source_key, e.target_key) for e in pattern.edges)
    )
    return (pattern.primary_key, nodes, edges)


@dataclass(frozen=True)
class NormalizedPattern:
    """A pattern with its filter constants lifted out (edgedb-style).

    ``key`` is the canonical constant-free cache key: patterns differing
    only in comparison / ``IN`` / ``LIKE`` constants — or in node /
    condition / combinator-operand order — share it, so a compiled plan
    built for one serves them all. ``template`` preserves the *original*
    structural order with :class:`PlanParameter` placeholders where the
    constants were; ``params`` holds the lifted constants, indexed by
    placeholder. ``bind()`` is the exact inverse of
    :func:`normalize_pattern`.
    """

    key: tuple
    template: QueryPattern
    params: tuple

    def bind(self, params: Sequence | None = None) -> QueryPattern:
        """The template with constants substituted back in.

        With no argument, rebinds this normalization's own constants —
        ``normalize_pattern(p).bind() == p`` exactly. Pass another
        pattern's parameter vector (same normalized key) to transplant its
        constants into this shape.
        """
        values = self.params if params is None else tuple(params)
        nodes = tuple(
            replace(
                node,
                conditions=tuple(
                    _bind_condition(c, values) for c in node.conditions
                ),
            )
            for node in self.template.nodes
        )
        return replace(self.template, nodes=nodes)


def normalize_pattern(pattern: QueryPattern) -> NormalizedPattern:
    """Lift constants out of ``pattern`` into a parameter vector.

    The parameter order is the depth-first structural order of the original
    pattern (nodes, then each node's conditions, then combinator operands),
    so binding is position-exact regardless of how the canonical key sorts
    things for cache identity.
    """
    params: list = []
    nodes = tuple(
        replace(
            node,
            conditions=tuple(
                _lift_condition(c, params) for c in node.conditions
            ),
        )
        for node in pattern.nodes
    )
    template = replace(pattern, nodes=nodes)
    return NormalizedPattern(
        key=canonical_pattern_key(template),
        template=template,
        params=tuple(params),
    )


# ----------------------------------------------------------------------
# Prefix store: canonical subpattern keys -> intermediate relations
# ----------------------------------------------------------------------
def subpattern_key(pattern: QueryPattern, keys: frozenset[str]) -> tuple:
    """Canonical, primary-independent key of the induced subpattern.

    Two patterns that share a connected subpattern (same node keys, types,
    conditions, and induced edges) map to the same key, regardless of node
    insertion order or which node is primary — so an intermediate computed
    for one pattern is reusable by any extension of it.
    """
    nodes = tuple(
        sorted(
            (
                node.key,
                node.type_name,
                tuple(sorted(c.cache_token() for c in node.conditions)),
            )
            for node in pattern.nodes
            if node.key in keys
        )
    )
    edges = tuple(
        sorted(
            (edge.edge_type, edge.source_key, edge.target_key)
            for edge in pattern.edges
            if edge.source_key in keys and edge.target_key in keys
        )
    )
    return (nodes, edges)


def relation_cells(relation: GraphRelation) -> int:
    """The size of a graph relation in cells (rows × attributes).

    Used as the eviction weight of cached intermediates: a relation's memory
    footprint is proportional to its cell count (each cell is one node id),
    so budgeting by cells keeps the cache's *memory* bounded instead of its
    entry count. Empty relations still weigh one cell so every entry has a
    positive weight.
    """
    return max(1, len(relation) * max(1, len(relation.attributes)))


# Rough per-cell memory cost: a node id held in a Python list costs one
# 8-byte pointer plus (usually shared) int objects; 8 bytes is the floor and
# keeps the reported byte counters conservative and platform-independent.
_BYTES_PER_CELL = 8


class PrefixStore:
    """Size-weighted LRU store of intermediate relations keyed by canonical
    subpattern.

    Every entry is semantically *exact*: the full selection+join of its
    subpattern (no cross-subpattern pruning), so any pattern containing the
    subpattern may start from it and only execute the delta joins.

    Eviction is weighted by relation size (rows × attributes, via
    :func:`relation_cells`), not entry count alone: with ``max_cells`` set,
    inserting entries evicts least-recently-used ones until the total cell
    budget is respected, and a single relation larger than the whole budget
    is refused outright — one huge intermediate can neither pin the cache
    nor wipe it.

    With a ``graph``, every lookup checks the graph's mutation-version
    counter and drops the whole store when it changed: cached relations are
    only valid for the graph snapshot they were computed over, and a store
    that outlives a mutation must never serve stale tuples.
    """

    def __init__(self, max_entries: int = 512,
                 max_cells: int | None = None,
                 graph: InstanceGraph | None = None) -> None:
        self.max_entries = max_entries
        self.max_cells = max_cells
        self._graph = graph
        self._graph_version = graph.version if graph is not None else None
        self._store: OrderedDict[tuple, GraphRelation] = OrderedDict()
        self._weights: dict[tuple, int] = {}
        self.total_cells = 0
        self.evictions = 0
        self.evicted_cells = 0
        self.rejected = 0
        self.lookups = 0
        self.hits = 0
        self.invalidations = 0

    def check_version(self) -> bool:
        """Drop everything if the bound graph mutated; True when dropped."""
        if self._graph is None or self._graph.version == self._graph_version:
            return False
        self.clear()
        self._graph_version = self._graph.version
        self.invalidations += 1
        return True

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: tuple) -> bool:
        self.check_version()
        return key in self._store

    @property
    def hit_rate(self) -> float:
        """Lookup hit rate; 0.0 on a cold store (never a ZeroDivisionError)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def get(self, key: tuple) -> GraphRelation | None:
        self.check_version()
        self.lookups += 1
        relation = self._store.get(key)
        if relation is not None:
            self.hits += 1
            self._store.move_to_end(key)
        return relation

    def put(self, key: tuple, relation: GraphRelation) -> None:
        self.check_version()
        weight = relation_cells(relation)
        if self.max_cells is not None and weight > self.max_cells:
            # Admission policy: a relation larger than the entire budget
            # would evict everything else and then sit unevictable until
            # the next put. Refuse it; recomputing one giant intermediate
            # is cheaper than losing the whole working set.
            self.rejected += 1
            self._store.pop(key, None)
            self.total_cells -= self._weights.pop(key, 0)
            return
        if key in self._store:
            self._store.move_to_end(key)
            self.total_cells -= self._weights[key]
        self._store[key] = relation
        self._weights[key] = weight
        self.total_cells += weight
        while len(self._store) > 1 and (
            len(self._store) > self.max_entries
            or (self.max_cells is not None
                and self.total_cells > self.max_cells)
        ):
            evicted_key, _ = self._store.popitem(last=False)
            evicted_weight = self._weights.pop(evicted_key)
            self.total_cells -= evicted_weight
            self.evictions += 1
            self.evicted_cells += evicted_weight

    def stats(self) -> dict[str, int | float | None]:
        """Bytes-weighted occupancy, lookup, and eviction counters.

        Safe to call on a cold store: the hit rate is guarded, so a health
        probe hitting a just-booted service never trips a division by zero.
        """
        return {
            "entries": len(self._store),
            "cells": self.total_cells,
            "approx_bytes": self.total_cells * _BYTES_PER_CELL,
            "max_entries": self.max_entries,
            "max_cells": self.max_cells,
            "lookups": self.lookups,
            "hits": self.hits,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "evicted_cells": self.evicted_cells,
            "rejected": self.rejected,
            "invalidations": self.invalidations,
        }

    def clear(self) -> None:
        self._store.clear()
        self._weights.clear()
        self.total_cells = 0


# How many candidate subpatterns the reuse lookup may inspect before giving
# up; incremental sessions hit at distance 0 or 1, so this is generous.
_MAX_PREFIX_CANDIDATES = 64


def find_cached_base(
    pattern: QueryPattern, store: PrefixStore
) -> tuple[frozenset[str], GraphRelation] | None:
    """Largest cached subpattern of ``pattern``, by leaf-removal BFS.

    Explores subpatterns in order of how many nodes were removed (0 = the
    whole pattern), always removing tree leaves so every candidate stays
    connected. Capped at ``_MAX_PREFIX_CANDIDATES`` inspections.
    """
    all_keys = frozenset(node.key for node in pattern.nodes)
    queue: deque[frozenset[str]] = deque([all_keys])
    seen: set[frozenset[str]] = {all_keys}
    inspected = 0
    while queue and inspected < _MAX_PREFIX_CANDIDATES:
        keys = queue.popleft()
        inspected += 1
        cached = store.get(subpattern_key(pattern, keys))
        if cached is not None:
            return keys, cached
        if len(keys) == 1:
            continue
        degree: dict[str, int] = {key: 0 for key in keys}
        for edge in pattern.edges:
            if edge.source_key in keys and edge.target_key in keys:
                degree[edge.source_key] += 1
                degree[edge.target_key] += 1
        for key, count in degree.items():
            if count <= 1:  # a leaf of the induced tree: removal stays connected
                smaller = keys - {key}
                if smaller not in seen:
                    seen.add(smaller)
                    queue.append(smaller)
    return None


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
@dataclass
class ExecutionReport:
    """What actually happened while executing a plan (for cache stats)."""

    reused_nodes: int = 0
    delta_joins: int = 0
    semijoin_pruned: int = 0
    parallel_joins: int = 0
    serial_fallbacks: int = 0
    pushdown_joins: int = 0


# ----------------------------------------------------------------------
# Parallel partition execution (ROADMAP: "parallel partition execution")
# ----------------------------------------------------------------------
# Below this many prefix tuples a delta join runs serially: shipping the
# partitions to worker processes costs more than the join itself, and small
# interactive steps must never pay process overhead.
DEFAULT_MIN_PARTITION_ROWS = 2048


@dataclass(frozen=True)
class PartitionJoinTask:
    """The picklable worker payload: one partition of one delta join.

    Workers are pure functions of this payload — no graph, no globals, no
    start-method assumptions. ``columns`` is the partition's slice of the
    prefix relation; ``adjacency`` is the slice of the graph's adjacency
    index covering exactly the distinct source ids that appear in the
    partition's probe column; ``candidates`` is the (shared) candidate set
    of the pattern node being joined on.
    """

    columns: tuple[tuple[int, ...], ...]
    left_position: int
    adjacency: dict[int, Sequence[int]]
    candidates: frozenset[int] | None


def execute_partition_join(
    task: PartitionJoinTask,
) -> tuple[float, list[list[int]]]:
    """Run one partition's delta join; returns (seconds, output columns).

    The loop is the exact serial :func:`_delta_join` kernel over the
    shipped slices, so concatenating partition outputs in partition order
    reproduces the serial result row-for-row. ``candidates=None`` means
    the joined pattern node is unconditioned: every adjacency neighbor
    qualifies (adjacency lists are type-homogeneous by construction).
    """
    start = time.perf_counter()
    columns = task.columns
    source_column = columns[task.left_position]
    adjacency = task.adjacency
    candidates = task.candidates
    selected: list[int] = []
    new_column: list[int] = []
    for index in range(len(source_column)):
        neighbors = adjacency.get(source_column[index])
        if not neighbors:
            continue
        for neighbor_id in neighbors:
            if candidates is None or neighbor_id in candidates:
                selected.append(index)
                new_column.append(neighbor_id)
    out = [[column[index] for index in selected] for column in columns]
    out.append(new_column)
    return time.perf_counter() - start, out


def resolve_workers(workers: int | None) -> int:
    """``None`` means auto: ``REPRO_PARALLEL_WORKERS`` or the CPU count."""
    if workers is None:
        env = os.environ.get("REPRO_PARALLEL_WORKERS")
        workers = int(env) if env else (os.cpu_count() or 1)
    return max(1, int(workers))


class ParallelContext:
    """A persistent worker pool for partitioned delta joins.

    One context owns one lazily-created ``ProcessPoolExecutor`` plus the
    partitioning policy (worker count, serial-fallback threshold) and the
    observability counters the service's ``stats_payload`` exposes. The
    pool is created on the first join that clears the threshold and reused
    for every later one, so process startup is paid once per context, not
    once per action. Contexts are thread-safe: many sessions may submit
    through one context concurrently (``ProcessPoolExecutor`` queues are
    thread-safe; the counters are guarded by the context lock).

    With ``adaptive=True`` the serial-fallback threshold is re-derived from
    *observed* latencies instead of the static default: every parallel join
    records its process round-trip overhead (wall time minus the slowest
    worker kernel), every serial fallback records its rows/second, and the
    effective threshold becomes the row count where the serial join would
    cost twice the round-trip — so a 1-core container (round-trip ≈ 2-3 ms)
    raises the bar and stops shipping joins that parallelism cannot repay,
    while a fast multicore pool lowers it. Cold-pool joins (worker startup
    in the window) are excluded from the overhead observations, and one in
    every ``_PROBE_EVERY`` joins that clear the static threshold still runs
    parallel so the estimate keeps tracking reality.
    """

    def __init__(
        self,
        workers: int | None = None,
        min_partition_rows: int = DEFAULT_MIN_PARTITION_ROWS,
        adaptive: bool = False,
    ) -> None:
        self.workers = resolve_workers(workers)
        self.min_partition_rows = max(0, int(min_partition_rows))
        self.adaptive = bool(adaptive)
        self._pool: ProcessPoolExecutor | None = None  # guarded-by: self._lock
        self._lock = threading.Lock()
        self.parallel_joins = 0  # guarded-by: self._lock
        self.serial_fallbacks = 0  # guarded-by: self._lock
        self.partitions_executed = 0  # guarded-by: self._lock
        # Adaptive-threshold observations (EMA-smoothed; seconds and rows/s).
        self._overhead_ema: float | None = None  # guarded-by: self._lock
        self._serial_rate_ema: float | None = None  # guarded-by: self._lock
        self._adaptive_rows = self.min_partition_rows  # guarded-by: self._lock
        self._probe_countdown = self._PROBE_EVERY  # guarded-by: self._lock
        # Per-partition timings of the most recent parallel joins (bounded;
        # exposed through CachingExecutor.stats_payload / the REPL's plan).
        self.last_timings: list[dict] = []  # guarded-by: self._lock
        self._max_timings = 32

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                # Never bare-fork: the pool is created lazily, typically
                # from a request thread of the multi-threaded service, and
                # forking a multi-threaded process can deadlock children on
                # locks held mid-fork. forkserver forks from a clean
                # single-threaded helper; tasks are pure picklable
                # payloads, so any start method works.
                methods = multiprocessing.get_all_start_methods()
                context = multiprocessing.get_context(
                    "forkserver" if "forkserver" in methods else "spawn"
                )
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=context
                )
            return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent; the context stays usable —
        the next parallel join starts a fresh pool)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ParallelContext":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # Under an adaptive threshold, every Nth join that clears the *static*
    # threshold but not the adaptive one still goes parallel as a probe:
    # overhead is only observable on parallel joins, so without probing a
    # once-inflated estimate could disable parallelism permanently.
    _PROBE_EVERY = 32

    # ------------------------------------------------------------------
    def effective_min_partition_rows(self) -> int:
        """The live serial-fallback threshold (adaptive or static)."""
        with self._lock:
            return (
                self._adaptive_rows if self.adaptive
                else self.min_partition_rows
            )

    def should_parallelize(self, rows: int) -> bool:
        """Serial below the partition-size threshold: a process round-trip
        on a small prefix costs more than the join it would offload."""
        if self.workers <= 1:
            return False
        if not self.adaptive:
            return rows >= self.min_partition_rows
        # One lock scope for the whole adaptive decision: reading
        # _adaptive_rows and decrementing _probe_countdown in separate
        # steps let a concurrent _update_adaptive_threshold interleave
        # between them (the unguarded read RPA101 originally flagged).
        with self._lock:
            if rows >= self._adaptive_rows:
                return True
            if rows >= self.min_partition_rows:
                # Static policy would have parallelized this join; run one
                # in every _PROBE_EVERY such joins parallel anyway so the
                # overhead estimate keeps tracking reality (pools get
                # faster after warm-up, machines get quieter) instead of
                # freezing at its worst observation.
                self._probe_countdown -= 1
                if self._probe_countdown <= 0:
                    self._probe_countdown = self._PROBE_EVERY
                    return True
        return False

    def record(self, timing: dict, partitions: int,
               wall_seconds: float | None = None) -> None:
        with self._lock:
            self.parallel_joins += 1
            self.partitions_executed += partitions
            self.last_timings.append(timing)
            if len(self.last_timings) > self._max_timings:
                del self.last_timings[: -self._max_timings]
            if wall_seconds is not None and timing.get("partition_ms"):
                # Round-trip overhead = everything the workers did not do:
                # pickling, queueing, and pool latency beyond the slowest
                # kernel. This is the fixed per-join tax parallelism must
                # repay before it helps.
                kernel = max(timing["partition_ms"]) / 1000.0
                overhead = max(0.0, wall_seconds - kernel)
                self._overhead_ema = (
                    overhead if self._overhead_ema is None
                    else 0.7 * self._overhead_ema + 0.3 * overhead
                )
                self._update_adaptive_threshold()

    def record_fallback(self) -> None:
        with self._lock:
            self.serial_fallbacks += 1

    def record_serial(self, rows: int, seconds: float) -> None:
        """Feed one serial delta join's throughput into the adaptive model."""
        if rows <= 0 or seconds <= 0.0:
            return
        rate = rows / seconds
        with self._lock:
            self._serial_rate_ema = (
                rate if self._serial_rate_ema is None
                else 0.7 * self._serial_rate_ema + 0.3 * rate
            )
            self._update_adaptive_threshold()

    # Adaptive threshold bounds: never drop below a few cache lines of rows
    # (the round-trip can only be *under*-observed), never climb past 2^20
    # (at that point the measurement itself is suspect).
    _ADAPTIVE_FLOOR = 64
    _ADAPTIVE_CEILING = 1 << 20

    def _update_adaptive_threshold(self) -> None:  # requires-lock
        """Re-derive the threshold from observations (caller holds lock).

        Break-even: a serial join of ``rows`` costs ``rows / serial_rate``
        seconds; parallelism pays a fixed ``overhead`` round-trip. The
        threshold is set at 2× the break-even row count, so joins only go
        parallel when the offloaded work clearly dominates the shipping.
        """
        assert_locked(self._lock, "ParallelContext._lock")
        if not self.adaptive:
            return
        if self._overhead_ema is None or self._serial_rate_ema is None:
            return
        breakeven = self._overhead_ema * self._serial_rate_ema
        self._adaptive_rows = int(
            min(self._ADAPTIVE_CEILING,
                max(self._ADAPTIVE_FLOOR, 2.0 * breakeven))
        )

    def stats_payload(self) -> dict:
        """JSON-able counters + recent per-partition timings."""
        with self._lock:
            return {
                "workers": self.workers,
                "min_partition_rows": self.min_partition_rows,
                "adaptive": self.adaptive,
                # Inlined rather than calling effective_min_partition_rows():
                # that method takes this (non-reentrant) lock itself.
                "effective_min_partition_rows": (
                    self._adaptive_rows if self.adaptive
                    else self.min_partition_rows
                ),
                "observed_overhead_ms": (
                    round(self._overhead_ema * 1000, 3)
                    if self._overhead_ema is not None else None
                ),
                "observed_serial_rows_per_s": (
                    round(self._serial_rate_ema, 1)
                    if self._serial_rate_ema is not None else None
                ),
                "parallel_joins": self.parallel_joins,
                "serial_fallbacks": self.serial_fallbacks,
                "partitions_executed": self.partitions_executed,
                "pool_live": self._pool is not None,
                "last_timings": [dict(t) for t in self.last_timings],
            }


# Process-wide shared contexts, one per configuration: sessions and
# executors asking for the same worker count share one pool instead of
# forking a fresh pool (and leaking it) per session.
_CONTEXTS: dict[tuple[int, int, bool], ParallelContext] = {}
_CONTEXTS_LOCK = threading.Lock()


def parallel_context(
    workers: int | None = None,
    min_partition_rows: int = DEFAULT_MIN_PARTITION_ROWS,
    adaptive: bool = False,
) -> ParallelContext:
    """The shared :class:`ParallelContext` for one configuration.

    ``workers=None`` means "auto" (``REPRO_PARALLEL_WORKERS`` or the CPU
    count) and is resolved *before* the registry lookup, so "auto" and an
    explicit matching count share one pool. Contexts returned here live
    for the process; callers that need a private, closeable pool
    (benchmarks sweeping worker counts) should construct
    :class:`ParallelContext` directly.
    """
    key = (resolve_workers(workers), min_partition_rows, bool(adaptive))
    with _CONTEXTS_LOCK:
        context = _CONTEXTS.get(key)
        if context is None:
            context = ParallelContext(
                workers=workers, min_partition_rows=min_partition_rows,
                adaptive=adaptive,
            )
            _CONTEXTS[key] = context
        return context


def _delta_join_parallel(
    relation: GraphRelation,
    graph: InstanceGraph,
    left_key: str,
    traversal_edge: str,
    new_key: str,
    new_type: str,
    candidate_set: dict[int, None] | frozenset[int] | None,
    context: ParallelContext,
) -> GraphRelation:
    """Shard the prefix relation and run the delta join across workers.

    The prefix is split into contiguous row partitions (one per worker);
    each worker gets the partition's columns, the adjacency slice for the
    source ids it will probe, and the candidate set, and runs the exact
    serial join kernel. Partial relations are concatenated in partition
    order, so the merged output is bit-identical to the serial join — the
    reference-order restoration downstream never knows the difference.
    """
    # Pool startup is a one-time cost, not per-join overhead: create it
    # outside the timed window, and skip the overhead observation entirely
    # on a cold pool (workers may still fork lazily inside the first map,
    # and seeding the EMA with fork latency would inflate the adaptive
    # threshold by orders of magnitude).
    pool_was_cold = context._pool is None
    context._ensure_pool()
    wall_start = time.perf_counter()
    partitions = relation.split(context.workers)
    left_position = relation.position(left_key)
    adjacency = graph._adjacency
    candidates = (
        frozenset(candidate_set) if candidate_set is not None else None
    )
    tasks = []
    for part in partitions:
        part_columns = part.columns_view()
        slice_: dict[int, Sequence[int]] = {}
        for source_id in part_columns[left_position]:
            if source_id not in slice_:
                neighbors = adjacency.get((source_id, traversal_edge))
                if neighbors:
                    slice_[source_id] = neighbors
        tasks.append(
            PartitionJoinTask(
                columns=tuple(tuple(column) for column in part_columns),
                left_position=left_position,
                adjacency=slice_,
                candidates=candidates,
            )
        )
    try:
        outputs = list(context._ensure_pool().map(execute_partition_join, tasks))
    except RuntimeError:
        # A concurrent close() can shut the pool down between _ensure_pool
        # and map ("cannot schedule new futures after shutdown"); close()
        # promises the context stays usable, so start a fresh pool once.
        outputs = list(context._ensure_pool().map(execute_partition_join, tasks))
    attributes = list(relation.attributes) + [GraphAttribute(new_key, new_type)]
    merged = GraphRelation.concat(
        [
            GraphRelation.from_columns(attributes, columns)
            for _, columns in outputs
        ]
    )
    context.record(
        {
            "edge": traversal_edge,
            "new_key": new_key,
            "rows_in": len(relation),
            "rows_out": len(merged),
            "partitions": len(tasks),
            "partition_ms": [
                round(elapsed * 1000, 3) for elapsed, _ in outputs
            ],
        },
        partitions=len(tasks),
        wall_seconds=(None if pool_was_cold
                      else time.perf_counter() - wall_start),
    )
    return merged


def execute_plan(
    plan: Plan,
    graph: InstanceGraph,
    memo: ConditionMemo | None = None,
    store: PrefixStore | None = None,
    report: ExecutionReport | None = None,
    parallel: ParallelContext | None = None,
    pushdown: "PushdownContext | None" = None,
) -> GraphRelation:
    """Run a plan; result tuples are in *engine order* (see
    :func:`restore_reference_order` for the reference ordering).

    Without a ``store``: candidate sets are computed per node, reduced with
    the Yannakakis semi-join passes (when ``plan.semijoin``), then joined in
    plan order — the fastest single-shot strategy.

    With a ``store``: the executor first looks for the largest cached
    subpattern and only executes the delta joins, recording every new
    intermediate under its canonical subpattern key. Cross-subpattern
    semi-join reduction is skipped so every cached intermediate stays exact
    for its own subpattern (reusable by *any* extension).

    With a ``parallel`` context: each delta join over a prefix at least
    ``min_partition_rows`` tall is sharded by contiguous prefix-tuple
    partitions across the context's worker processes and merged back in
    partition order — bit-identical output, including under a ``store``
    (the merged relation is what gets cached, so partitioned results
    compose with prefix reuse transparently).

    With a ``pushdown`` context
    (:class:`repro.relational.backends.pushdown.PushdownContext`): each
    delta join whose estimated intermediate clears the context's cost rule
    is routed to the SQL backend over the four-table storage instead of the
    Python kernel — also bit-identical (the SQL reproduces the adjacency
    probe order exactly), so pushed joins compose with a ``store`` the same
    way partitioned ones do. The pushdown decision is evaluated before the
    parallel one: a join big enough for SQL is answered there outright.
    """
    pattern = plan.pattern
    report = report if report is not None else ExecutionReport()
    conditions = {
        node.key: conjoin_conditions(node.conditions) for node in pattern.nodes
    }
    types = {node.key: node.type_name for node in pattern.nodes}

    covered: frozenset[str]
    relation: GraphRelation
    if store is not None:
        base = find_cached_base(pattern, store)
    else:
        base = None

    candidates: dict[str, dict[int, None]] = {}

    def candidate_set(key: str) -> dict[int, None]:
        cached = candidates.get(key)
        if cached is None:
            cached = dict.fromkeys(
                candidate_ids(graph, types[key], conditions[key], memo)
            )
            candidates[key] = cached
        return cached

    if base is not None:
        covered, relation = base
        report.reused_nodes = len(covered)
    else:
        start_key = plan.steps[0].key
        if store is None and plan.semijoin:
            for key in types:
                candidate_set(key)
            report.semijoin_pruned = _semijoin_reduce(
                pattern, graph, candidates, plan.steps[0].key
            )
        start_ids = list(candidate_set(start_key))
        relation = GraphRelation.from_columns(
            [GraphAttribute(start_key, types[start_key])], [start_ids]
        )
        covered = frozenset([start_key])
        if store is not None:
            store.put(subpattern_key(pattern, covered), relation)

    # Delta joins: follow the plan order, skipping already-covered nodes;
    # when the cached base doesn't match the plan prefix, fall back to any
    # traversable frontier edge (the greedy order is a heuristic, coverage
    # correctness only needs connectivity).
    remaining = [step for step in plan.steps if step.key not in covered]
    pending = deque(remaining)
    stuck_guard = 0
    while pending:
        step = pending.popleft()
        join_info = _frontier_join(pattern, graph, covered, step.key)
        if join_info is None:
            pending.append(step)  # not adjacent to covered set yet
            stuck_guard += 1
            if stuck_guard > len(pending) + 1:
                raise TgmError(
                    f"cannot reach pattern node {step.key!r} from the "
                    f"covered set {sorted(covered)!r}"
                )
            continue
        stuck_guard = 0
        left_key, traversal = join_info
        if pushdown is not None and pushdown.should_push(len(relation), traversal):
            relation = pushdown.delta_join(
                relation,
                left_key,
                traversal,
                step.key,
                types[step.key],
                candidate_set(step.key),
            )
            report.pushdown_joins += 1
        elif parallel is not None and parallel.should_parallelize(len(relation)):
            relation = _delta_join_parallel(
                relation,
                graph,
                left_key,
                traversal,
                step.key,
                types[step.key],
                candidate_set(step.key),
                parallel,
            )
            report.parallel_joins += 1
        else:
            if parallel is not None:
                parallel.record_fallback()
                report.serial_fallbacks += 1
            if parallel is not None and parallel.adaptive:
                # Time serial joins only for an adaptive context: the
                # threshold needs the observed serial rows/second to know
                # where parallelism starts paying off. Static contexts
                # skip the timing (and the extra lock) entirely.
                serial_start = time.perf_counter()
                rows_in = len(relation)
                relation = _delta_join(
                    relation,
                    graph,
                    left_key,
                    traversal,
                    step.key,
                    types[step.key],
                    candidate_set(step.key),
                )
                parallel.record_serial(
                    rows_in, time.perf_counter() - serial_start
                )
            else:
                relation = _delta_join(
                    relation,
                    graph,
                    left_key,
                    traversal,
                    step.key,
                    types[step.key],
                    candidate_set(step.key),
                )
        report.delta_joins += 1
        covered = covered | {step.key}
        if store is not None:
            store.put(subpattern_key(pattern, covered), relation)
    return relation


def _frontier_join(
    pattern: QueryPattern,
    graph: InstanceGraph,
    covered: frozenset[str],
    new_key: str,
) -> tuple[str, str] | None:
    """(left key, traversal edge name) connecting ``new_key`` to ``covered``."""
    for edge in pattern.edges_touching(new_key):
        other = (
            edge.target_key if edge.source_key == new_key else edge.source_key
        )
        if other not in covered:
            continue
        traversal = _traversal_edge_name(graph, edge, new_key)
        if traversal is not None:
            return other, traversal
    return None


def _delta_join(
    relation: GraphRelation,
    graph: InstanceGraph,
    left_key: str,
    traversal_edge: str,
    new_key: str,
    new_type: str,
    candidate_set: dict[int, None] | frozenset[int] | None,
) -> GraphRelation:
    """Join one new pattern node onto the prefix by probing adjacency.

    Dangling prefix tuples (no neighbor inside the candidate set) are
    dropped without materializing anything — the semi-join check and the
    join share one pass. ``candidate_set=None`` means the new node is
    unconditioned: every adjacency neighbor qualifies (adjacency lists are
    type-homogeneous), so no candidate enumeration is needed at all —
    this keeps the incremental engine's pivot deltas O(|prefix| × fanout)
    instead of O(|node type|).
    """
    left_position = relation.position(left_key)
    columns = relation.columns_view()
    source_column = columns[left_position]
    adjacency = graph._adjacency
    # First pass collects (prefix row index, neighbor) pairs; the output
    # columns are then materialized column-wise, which is much faster than
    # per-output-row appends across every column.
    selected: list[int] = []
    new_column: list[int] = []
    if candidate_set is None:
        for index in range(len(relation)):
            neighbors = adjacency.get((source_column[index], traversal_edge))
            if not neighbors:
                continue
            for neighbor_id in neighbors:
                selected.append(index)
                new_column.append(neighbor_id)
    else:
        for index in range(len(relation)):
            neighbors = adjacency.get((source_column[index], traversal_edge))
            if not neighbors:
                continue
            for neighbor_id in neighbors:
                if neighbor_id in candidate_set:
                    selected.append(index)
                    new_column.append(neighbor_id)
    out = [[column[index] for index in selected] for column in columns]
    out.append(new_column)
    attributes = list(relation.attributes) + [GraphAttribute(new_key, new_type)]
    return GraphRelation.from_columns(attributes, out)


def _semijoin_reduce(
    pattern: QueryPattern,
    graph: InstanceGraph,
    candidates: dict[str, dict[int, None]],
    root_key: str,
) -> int:
    """Yannakakis-style full reduction of per-node candidate sets.

    Leaf-to-root then root-to-leaf semi-join passes over the pattern tree
    rooted at the plan's start node. After both passes, every surviving
    candidate participates in at least one full match, so the materializing
    joins never produce dangling tuples. Returns how many candidates were
    pruned. Exact because the pattern is a tree (Definition 3).
    """
    order = _tree_order(pattern, root_key)
    pruned = 0
    # Leaf-to-root: parent keeps nodes with >= 1 neighbor in the child set.
    for child_key, parent_key, edge in reversed(order):
        pruned += _semijoin_filter(
            pattern, graph, candidates, parent_key, child_key, edge
        )
    # Root-to-leaf: child keeps nodes with >= 1 neighbor in the parent set.
    for child_key, parent_key, edge in order:
        pruned += _semijoin_filter(
            pattern, graph, candidates, child_key, parent_key, edge
        )
    return pruned


def _tree_order(
    pattern: QueryPattern, root_key: str
) -> list[tuple[str, str, PatternEdge]]:
    """BFS (child, parent, edge) triples of the pattern tree from ``root``."""
    order: list[tuple[str, str, PatternEdge]] = []
    seen = {root_key}
    queue = deque([root_key])
    while queue:
        current = queue.popleft()
        for edge in pattern.edges_touching(current):
            other = (
                edge.target_key
                if edge.source_key == current
                else edge.source_key
            )
            if other in seen:
                continue
            seen.add(other)
            order.append((other, current, edge))
            queue.append(other)
    return order


def _semijoin_filter(
    pattern: QueryPattern,
    graph: InstanceGraph,
    candidates: dict[str, dict[int, None]],
    keep_key: str,
    against_key: str,
    edge: PatternEdge,
) -> int:
    """Drop ``keep_key`` candidates with no ``edge`` neighbor among the
    ``against_key`` candidates; returns the number pruned."""
    # Traverse from the keep side toward the against side.
    traversal = _traversal_edge_name(graph, edge, toward_key=against_key)
    if traversal is None:
        return 0  # direction not indexed; reduction is optional
    keep = candidates[keep_key]
    against = candidates[against_key]
    adjacency = graph._adjacency
    survivors = {
        node_id: None
        for node_id in keep
        if any(
            neighbor in against
            for neighbor in adjacency.get((node_id, traversal), ())
        )
    }
    pruned = len(keep) - len(survivors)
    if pruned:
        candidates[keep_key] = survivors
    return pruned


# ----------------------------------------------------------------------
# Reference-order restoration
# ----------------------------------------------------------------------
# Adjacency-rank dictionaries are pure functions of the (immutable during a
# session) adjacency lists, so they are shared across restorations of one
# graph; the version guard drops them after a mutation.
_RANK_CACHES: "WeakKeyDictionary[InstanceGraph, tuple[int, dict]]" = (
    WeakKeyDictionary()
)


def _graph_rank_cache(graph: InstanceGraph) -> dict[tuple[int, str], dict[int, int]]:
    entry = _RANK_CACHES.get(graph)
    if entry is None or entry[0] != graph.version:
        entry = (graph.version, {})
        _RANK_CACHES[graph] = entry
    return entry[1]


def restore_reference_order(
    pattern: QueryPattern,
    relation: GraphRelation,
    graph: InstanceGraph,
) -> GraphRelation:
    """Re-order a planner result into the reference matcher's exact output.

    The reference pipeline joins in BFS order from the primary node and
    iterates base relations in node-insertion order and adjacency lists in
    edge-insertion order, which makes its tuple order lexicographic in
    per-position ranks: the primary's insertion rank first, then — for each
    later BFS position — the rank of the node within its *parent's*
    adjacency list. Sorting by that key (and permuting attributes into BFS
    order) reproduces the reference output bit-for-bit, so ETable row order
    and cell order are preserved no matter what order the planner joined in.
    """
    order = pattern.traversal_order()
    positions = [relation.position(key) for key, _ in order]
    columns = relation.columns_view()
    rank_cache = _graph_rank_cache(graph)
    primary_type = pattern.node(order[0][0]).type_name
    root_rank = rank_cache.get(("type", primary_type))
    if root_rank is None:
        root_rank = {
            node_id: rank
            for rank, node_id in enumerate(graph.node_ids_of_type(primary_type))
        }
        rank_cache[("type", primary_type)] = root_rank
    parents: list[tuple[int, str]] = []
    for key, edge in order[1:]:
        assert edge is not None
        if edge.target_key == key:
            traversal = edge.edge_type
            parent_key = edge.source_key
        else:
            traversal = graph.schema.reverse_of(edge.edge_type).name
            parent_key = edge.target_key
        parents.append((relation.position(parent_key), traversal))

    def ranks_of(parent_id: int, traversal: str) -> dict[int, int]:
        cache_key = (parent_id, traversal)
        ranks = rank_cache.get(cache_key)
        if ranks is None:
            ranks = {}
            for index, neighbor in enumerate(
                graph.neighbors_view(parent_id, traversal)
            ):
                if neighbor not in ranks:
                    ranks[neighbor] = index
            rank_cache[cache_key] = ranks
        return ranks

    # One composite integer key per row, accumulated column-wise: each BFS
    # position contributes its rank scaled into its own digit range (the
    # per-edge max degree bounds adjacency ranks), so integer comparison
    # equals the positional lexicographic comparison the reference's nested
    # loops produce — and sorts much faster than tuple keys.
    size = len(relation)
    stats = graph.statistics()
    root_column = columns[positions[0]]
    sort_keys = [root_rank[node_id] for node_id in root_column]
    for (parent_position, traversal), position in zip(parents, positions[1:]):
        radix = stats.edge_type_stats(traversal).max_degree + 1
        parent_column = columns[parent_position]
        child_column = columns[position]
        for index in range(size):
            rank = ranks_of(parent_column[index], traversal)[child_column[index]]
            sort_keys[index] = sort_keys[index] * radix + rank
    permutation = sorted(range(size), key=sort_keys.__getitem__)
    attributes = [relation.attributes[position] for position in positions]
    out = [
        [columns[position][index] for index in permutation]
        for position in positions
    ]
    return GraphRelation.from_columns(attributes, out)


# ----------------------------------------------------------------------
# Incremental action-delta planning (the session refinement fast path)
# ----------------------------------------------------------------------
# A browsing session is a chain of small refinements: almost every action
# produces a pattern that is a *monotone delta* of the previous one — the
# same tree with one more condition (filter / nfilter), one more node and
# edge (pivot / see-all), or just another primary (shift). The DeltaPlanner
# recognizes those shapes and answers them from the previous materialized
# relation, so per-action cost scales with |current ETable| instead of
# |database|. Only non-monotone actions (condition relaxation or removal,
# a different table, a rewired edge) fall back to the full planner.


@dataclass(frozen=True)
class DeltaPlan:
    """One classified refinement delta between two consecutive patterns.

    ``kind`` is the delta taxonomy:

    * ``replay``        — identical pattern (e.g. a revert re-executing the
                          current step): the previous relation *is* the
                          answer, untouched;
    * ``reorder``       — same tree, different primary (a ``shift`` pivot):
                          same tuple set, re-ranked into the new reference
                          order — zero joins, zero selections;
    * ``select``        — conditions were appended to already-bound nodes
                          (filter / nfilter): a pure row-selection over the
                          previous relation, no joins at all;
    * ``extend``        — exactly one new node + connecting edge (a
                          neighbor pivot): one delta join using the previous
                          relation as the prefix;
    * ``select+extend`` — both at once (see-all: select the clicked row,
                          then add/shift the column's edge).
    """

    kind: str
    selections: tuple[tuple[str, Condition], ...] = ()
    extension: tuple[str, str, str] | None = None  # (left key, traversal, new key)
    order_preserved: bool = False

    def describe(self) -> str:
        if self.kind == "replay":
            return "replay (previous relation returned unchanged)"
        if self.kind == "reorder":
            return "reorder (primary shifted; previous relation re-ranked)"
        parts = []
        if self.selections:
            keys = sorted({key for key, _ in self.selections})
            parts.append(
                f"row-select {len(self.selections)} new condition(s) "
                f"on {', '.join(keys)}"
            )
        if self.extension is not None:
            left_key, traversal, new_key = self.extension
            parts.append(f"delta join {left_key} -[{traversal}]-> {new_key}")
        return f"{self.kind}: " + "; ".join(parts)


def classify_delta(
    previous: QueryPattern,
    pattern: QueryPattern,
    graph: InstanceGraph,
) -> DeltaPlan | None:
    """Classify ``pattern`` as a monotone delta of ``previous`` (or None).

    Monotone means the new pattern's matches are derivable from the old
    pattern's full relation without re-matching: every old node keeps its
    type and its exact condition list as a prefix (new conditions may only
    be *appended* — that is how ``operators.select`` accretes filters), no
    node or edge disappears, and at most one new node arrives, connected to
    the old tree by exactly one traversable edge. Anything else — condition
    relaxation, a different table, a rewired edge — returns None and the
    caller replans from scratch.
    """
    prev_nodes = {node.key: node for node in previous.nodes}
    new_keys = {node.key for node in pattern.nodes}
    if any(key not in new_keys for key in prev_nodes):
        return None  # a node was removed: shrinking is not monotone
    added = [node for node in pattern.nodes if node.key not in prev_nodes]
    if len(added) > 1:
        return None  # more than one action's worth of growth
    prev_edges = {
        (edge.edge_type, edge.source_key, edge.target_key)
        for edge in previous.edges
    }
    added_edges = [
        edge
        for edge in pattern.edges
        if (edge.edge_type, edge.source_key, edge.target_key) not in prev_edges
    ]
    if len(pattern.edges) - len(added_edges) != len(previous.edges):
        return None  # an edge was removed or rewired
    selections: list[tuple[str, Condition]] = []
    for node in pattern.nodes:
        old = prev_nodes.get(node.key)
        if old is None:
            continue
        if node.type_name != old.type_name:
            return None
        old_tokens = [c.cache_token() for c in old.conditions]
        new_tokens = [c.cache_token() for c in node.conditions]
        if new_tokens[: len(old_tokens)] != old_tokens:
            return None  # a condition changed or was relaxed
        selections.extend(
            (node.key, condition)
            for condition in node.conditions[len(old.conditions):]
        )
    extension: tuple[str, str, str] | None = None
    if added:
        if len(added_edges) != 1:
            return None
        node = added[0]
        edge = added_edges[0]
        if edge.source_key == node.key and edge.target_key in prev_nodes:
            left_key = edge.target_key
        elif edge.target_key == node.key and edge.source_key in prev_nodes:
            left_key = edge.source_key
        else:
            return None
        traversal = _traversal_edge_name(graph, edge, toward_key=node.key)
        if traversal is None:
            return None  # direction not adjacency-indexed
        extension = (left_key, traversal, node.key)
    elif added_edges:
        return None  # a new edge between existing nodes would cycle the tree
    if extension is None and not selections:
        kind = (
            "replay"
            if pattern.primary_key == previous.primary_key
            else "reorder"
        )
    elif extension is None:
        kind = "select"
    elif not selections:
        kind = "extend"
    else:
        kind = "select+extend"
    # A pure selection over a reference-ordered relation stays reference-
    # ordered (filtering preserves relative order, and the rank key is a
    # function of primary + edges, which did not change); everything else
    # needs a restore_reference_order pass.
    order_preserved = (
        kind in ("replay", "select")
        and pattern.primary_key == previous.primary_key
    )
    return DeltaPlan(
        kind=kind,
        selections=tuple(selections),
        extension=extension,
        order_preserved=order_preserved,
    )


def _enumeration_cost(node, stats: GraphStatistics) -> float:
    """Estimated rows the full planner must touch to enumerate one node's
    candidate set: identity probes are O(probes), index probes O(bucket),
    everything else is a full type scan."""
    condition = conjoin_conditions(node.conditions)
    cardinality = float(stats.cardinality(node.type_name))
    if condition is None:
        return cardinality
    node_probes = condition.node_probes()
    if node_probes is not None:
        return float(len(node_probes))
    if condition.index_probes():
        return max(
            1.0,
            cardinality
            * estimate_selectivity(condition, node.type_name, stats),
        )
    return cardinality


def estimate_replan_cost(
    pattern: QueryPattern,
    graph: InstanceGraph,
    stats: GraphStatistics | None = None,
) -> float:
    """Estimated rows the full planner touches executing ``pattern``:
    candidate enumeration per node plus the per-step join growth. Uses the
    per-bucket equality selectivities, so a super-selective new filter (an
    identity click, an indexed equality) is priced exactly."""
    stats = stats or graph.statistics()
    cost = sum(_enumeration_cost(node, stats) for node in pattern.nodes)
    if len(pattern.nodes) > 1:
        plan = build_plan(pattern, graph, stats=stats, semijoin=False)
        cost += sum(
            step.est_rows for step in plan.steps if step.kind == "join"
        )
    return max(1.0, cost)


def estimate_delta_cost(
    delta: DeltaPlan,
    prev_rows: int,
    pattern: QueryPattern,
    graph: InstanceGraph,
    stats: GraphStatistics | None = None,
) -> float:
    """Estimated rows the delta path touches: each appended selection scans
    the (shrinking, but conservatively: full) previous relation; an
    extension probes each prefix row's adjacency; a lost reference order
    costs one more pass for the restoration sort."""
    stats = stats or graph.statistics()
    cost = 0.0
    if delta.selections:
        cost += float(prev_rows) * len(delta.selections)
    if delta.extension is not None:
        _, traversal, new_key = delta.extension
        fanout = max(1.0, stats.edge_type_stats(traversal).avg_degree)
        cost += prev_rows * fanout
        node = pattern.node(new_key)
        if node.conditions:
            cost += _enumeration_cost(node, stats)
    if not delta.order_preserved:
        cost += float(prev_rows)
    return max(1.0, cost)


# Condition types whose per-node evaluation is expensive enough to be worth
# the memo's (condition, node) bookkeeping: semijoins scan neighbor lists,
# and combinators recurse. Plain attribute predicates are a dict get plus a
# comparison — cheaper to just evaluate than to hash into the memo.
_MEMO_WORTHY = (NeighborSatisfies, AndCondition, OrCondition, NotCondition)


def _delta_select(
    relation: GraphRelation,
    key: str,
    condition: Condition,
    graph: InstanceGraph,
    memo: ConditionMemo | None = None,
) -> GraphRelation:
    """``σ`` over one attribute of a materialized relation, delta-tuned.

    Unlike the generic :func:`repro.tgm.graph_relation.selection` (which
    evaluates per *row*), the condition is evaluated once per **distinct**
    node id of the column and rows are then kept by set membership — on a
    joined relation the same primary node appears once per join partner,
    and re-evaluating a LIKE regex per duplicate is pure waste. Expensive
    conditions (semijoins, combinators) go through the shared memo;
    plain attribute predicates are evaluated directly.
    """
    position = relation.position(key)
    columns = relation.columns_view()
    column = columns[position]
    node_of = graph.node
    matching: set[int] = set()
    if memo is not None and isinstance(condition, _MEMO_WORTHY):
        for node_id in dict.fromkeys(column):
            if memo.matches(condition, node_of(node_id), graph):
                matching.add(node_id)
    else:
        for node_id in dict.fromkeys(column):
            if condition.matches(node_of(node_id), graph):
                matching.add(node_id)
    kept = [
        index for index, node_id in enumerate(column) if node_id in matching
    ]
    if len(kept) == len(column):
        return relation
    out = [[col[index] for index in kept] for col in columns]
    return GraphRelation.from_columns(list(relation.attributes), out)


@dataclass(frozen=True)
class RowIdentities:
    """Which primary-node rows an executed delta added, dropped, or kept.

    Node ids are distinct primary-column ids in relation order — exactly the
    identities the ETable keys its rows by, so a delta-frame builder can use
    them without re-deriving anything. ``cells_stable`` is the load-bearing
    bit: True guarantees every retained row's *presented* cells (attributes,
    participating refs, neighbor previews) are byte-identical to the previous
    ETable, which holds only when the delta touched nothing but the primary
    node's own condition list (rows are kept or dropped whole, so each
    survivor keeps exactly its old join partners). A selection on a
    non-primary node can thin a retained row's participating refs, and an
    extension or primary shift changes the column set outright — those set
    ``cells_stable`` False and consumers must diff retained rows.
    """

    added: tuple[int, ...] = ()
    dropped: tuple[int, ...] = ()
    retained: tuple[int, ...] = ()
    cells_stable: bool = False


@dataclass
class DeltaReport:
    """What one delta execution actually did (for incremental stats)."""

    kind: str = ""
    rows_in: int = 0
    rows_out: int = 0
    rows_touched: int = 0
    parallel_join: bool = False
    pushdown_join: bool = False
    identities: RowIdentities | None = None


def _row_identities(
    delta: DeltaPlan,
    prev_relation: GraphRelation,
    relation: GraphRelation,
    primary_key: str,
) -> RowIdentities:
    """Diff the distinct primary ids of the two relations (O(rows) dict
    probes over int columns — noise next to the delta join/select itself)."""
    new_ids = relation.distinct_column(primary_key)
    try:
        prev_ids = prev_relation.distinct_column(primary_key)
    except TgmError:
        # The primary is the freshly joined node (a pivot): every presented
        # row is new and nothing from the previous table survives by id.
        return RowIdentities(added=tuple(new_ids))
    prev_set = set(prev_ids)
    new_set = set(new_ids)
    # order_preserved doubles as "same primary as before": a reorder keeps
    # the id set but re-derives every cell under the new reference node.
    cells_stable = (
        delta.order_preserved
        and delta.extension is None
        and all(key == primary_key for key, _ in delta.selections)
    )
    return RowIdentities(
        added=tuple(i for i in new_ids if i not in prev_set),
        dropped=tuple(i for i in prev_ids if i not in new_set),
        retained=tuple(i for i in new_ids if i in prev_set),
        cells_stable=cells_stable,
    )


def execute_delta(
    delta: DeltaPlan,
    prev_relation: GraphRelation,
    pattern: QueryPattern,
    graph: InstanceGraph,
    memo: ConditionMemo | None = None,
    parallel: ParallelContext | None = None,
    pushdown: "PushdownContext | None" = None,
) -> tuple[GraphRelation, DeltaReport]:
    """Derive ``m(pattern)`` from the previous pattern's full relation.

    Selections filter the relation row-wise (sharing the executor's
    condition memo); an extension runs exactly one delta join — through the
    SQL pushdown path when a context is attached and the join clears its
    cost rule, or the parallel partition path when that context's threshold
    clears instead, so ``engine="incremental"`` composes with both
    ``engine="pushdown"`` and ``engine="parallel"``. The output is in
    engine order unless ``delta.order_preserved``; callers restore the
    reference order exactly as the full planner does.
    """
    report = DeltaReport(kind=delta.kind, rows_in=len(prev_relation))
    relation = prev_relation
    for key, condition in delta.selections:
        report.rows_touched += len(relation)
        relation = _delta_select(relation, key, condition, graph, memo)
    if delta.extension is not None:
        left_key, traversal, new_key = delta.extension
        node = pattern.node(new_key)
        condition = conjoin_conditions(node.conditions)
        candidate_set: dict[int, None] | None = None
        if condition is not None:
            candidate_set = dict.fromkeys(
                candidate_ids(graph, node.type_name, condition, memo)
            )
        report.rows_touched += len(relation)
        if pushdown is not None and pushdown.should_push(
            len(relation), traversal
        ):
            relation = pushdown.delta_join(
                relation, left_key, traversal, new_key,
                node.type_name, candidate_set,
            )
            report.pushdown_join = True
        elif parallel is not None and parallel.should_parallelize(len(relation)):
            relation = _delta_join_parallel(
                relation, graph, left_key, traversal, new_key,
                node.type_name, candidate_set, parallel,
            )
            report.parallel_join = True
        else:
            if parallel is not None:
                parallel.record_fallback()
            if parallel is not None and parallel.adaptive:
                serial_start = time.perf_counter()
                rows_in = len(relation)
                relation = _delta_join(
                    relation, graph, left_key, traversal, new_key,
                    node.type_name, candidate_set,
                )
                parallel.record_serial(
                    rows_in, time.perf_counter() - serial_start
                )
            else:
                relation = _delta_join(
                    relation, graph, left_key, traversal, new_key,
                    node.type_name, candidate_set,
                )
    report.rows_out = len(relation)
    report.identities = _row_identities(
        delta, prev_relation, relation, pattern.primary_key
    )
    return relation, report


class DeltaPlanner:
    """Plans refinement actions as deltas over the previous result.

    ``plan`` classifies the new pattern against the previous one and gates
    the delta behind the cost model: when the full planner is estimated
    strictly cheaper (e.g. the previous relation is huge and the new filter
    is an indexed identity probe), it returns ``(None, reason)`` and the
    caller replans — both paths are exact, so the gate is purely a
    performance decision. ``execute`` runs the chosen delta.
    """

    # The replan estimate must undercut the delta estimate by this factor
    # before the planner abandons the delta: both estimates count *rows*,
    # but a replanned row is much more expensive than a delta row (fresh
    # candidate enumeration with per-node condition evaluation, full joins,
    # and the restoration sort, versus memoized dict probes over an
    # already-materialized relation). The gate exists for the pathological
    # order-of-magnitude cases — a huge previous relation against an
    # indexed identity probe — not for coin-flip margins.
    REPLAN_BIAS = 4.0

    def __init__(self, graph: InstanceGraph) -> None:
        self.graph = graph

    def plan(
        self,
        previous: QueryPattern | None,
        prev_rows: int,
        pattern: QueryPattern,
    ) -> tuple[DeltaPlan | None, str | None]:
        """(delta, fallback reason) — ``delta is None`` means replan."""
        if previous is None:
            return None, "no previous result to delta from"
        delta = classify_delta(previous, pattern, self.graph)
        if delta is None:
            return None, "non-monotone action (condition relaxed, node/edge removed, or new table)"
        stats = self.graph.statistics()
        delta_cost = estimate_delta_cost(
            delta, prev_rows, pattern, self.graph, stats
        )
        replan_cost = estimate_replan_cost(pattern, self.graph, stats)
        if replan_cost * self.REPLAN_BIAS < delta_cost:
            return None, (
                f"cost model preferred replan "
                f"(est {replan_cost:.0f} rows vs delta {delta_cost:.0f})"
            )
        return delta, None

    def execute(
        self,
        delta: DeltaPlan,
        prev_relation: GraphRelation,
        pattern: QueryPattern,
        memo: ConditionMemo | None = None,
        parallel: ParallelContext | None = None,
        pushdown: "PushdownContext | None" = None,
    ) -> tuple[GraphRelation, DeltaReport]:
        return execute_delta(
            delta, prev_relation, pattern, self.graph,
            memo=memo, parallel=parallel, pushdown=pushdown,
        )
