"""A command-driven front end for ETable sessions.

The paper's prototype is a web application; this module provides the same
interaction vocabulary as a line-oriented interface so the full system is
usable from a terminal (see ``examples/interactive_cli.py``) and — more
importantly for a library — so the whole action surface is drivable and
testable through plain strings.

The REPL is a *thin client of the wire protocol*: every session action is
parsed into JSON params and dispatched through
:func:`repro.service.protocol.apply_action` — the same entry point the
HTTP service and the action journal use — so the CLI exercises exactly the
code path a remote client would.

Commands (one per line)::

    tables                          list entity types to open
    open <Type>                     open a table               (U1)
    filter <attr> <op> <value>      filter rows; op: = != < <= > >= like (U3)
    nfilter <column> <attr> <op> <value>
                                    filter by a neighbor column (subquery)
    pivot <column>                  pivot on a reference column (U4)
    seeall <row#> <column>          expand one cell             (U2)
    single <row#> <column> [<n>]    follow the n-th reference in a cell
    sort <column> [desc]            sort rows
    hide <column> | show <column>   column visibility
    rank [k]                        keep the k best columns (future work #3)
    revert <step#>                  return to a history step
    rows [n]                        print the current table
    export [history]                dump the ETable (+history) as JSON
    plan                            show the execution plan + cache stats
    columns | schema | history | sql
    help | quit
"""

from __future__ import annotations

import json
import shlex
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import InvalidAction, ReproError
from repro.tgm.conditions import AttributeCompare, AttributeLike, Condition
from repro.tgm.instance_graph import InstanceGraph
from repro.tgm.schema_graph import SchemaGraph
from repro.core.render import render_etable
from repro.core.session import EtableSession

_OPS = {"=", "!=", "<", "<=", ">", ">="}


@dataclass(frozen=True)
class Command:
    name: str
    args: tuple[str, ...]


def parse_command(line: str) -> Command | None:
    """Tokenize one input line; None for blank lines and comments."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    try:
        parts = shlex.split(stripped)
    except ValueError as error:
        raise InvalidAction(f"cannot parse command: {error}") from None
    return Command(parts[0].lower(), tuple(parts[1:]))


def parse_value(text: str) -> Any:
    """Literal inference: int, float, bool, else string."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def build_condition(attribute: str, op: str, raw_value: str) -> Condition:
    if op.lower() == "like":
        return AttributeLike(attribute, raw_value)
    if op not in _OPS:
        raise InvalidAction(
            f"unknown operator {op!r}; use one of {sorted(_OPS)} or 'like'"
        )
    return AttributeCompare(attribute, op, parse_value(raw_value))


class Repl:
    """Executes command lines against an :class:`EtableSession`.

    Every command returns its textual output, so the class is a pure
    string-to-string machine around the session — trivially scriptable.
    """

    def __init__(
        self,
        schema: SchemaGraph,
        graph: InstanceGraph,
        mapping=None,
        use_cache: bool = True,
        max_rows: int = 10,
        engine: str = "planned",
        workers: int | None = None,
    ) -> None:
        # engine="parallel" shards big delta joins across worker processes
        # (the `plan` command then shows per-partition timings);
        # engine="incremental" answers refinement actions from the previous
        # ETable's relation (the `plan` command then shows the chosen delta
        # kind and the session's delta-hit rate); engine="pushdown" routes
        # oversized delta joins to an indexed SQLite image of the graph.
        if engine not in ("naive", "planned", "parallel", "incremental", "pushdown"):  # repro: engine-surface all
            raise InvalidAction(
                f"unknown engine {engine!r}; the REPL speaks 'naive', "
                f"'planned', 'parallel', 'incremental', and 'pushdown'"
            )
        self.session = EtableSession(schema, graph, use_cache=use_cache,
                                     engine=engine, workers=workers)
        self.mapping = mapping  # TranslationMap, enables the 'sql' command
        self.max_rows = max_rows
        self.done = False
        self._handlers: dict[str, Callable[[tuple[str, ...]], str]] = {
            "tables": self._cmd_tables,
            "open": self._cmd_open,
            "filter": self._cmd_filter,
            "nfilter": self._cmd_nfilter,
            "pivot": self._cmd_pivot,
            "seeall": self._cmd_seeall,
            "single": self._cmd_single,
            "sort": self._cmd_sort,
            "hide": self._cmd_hide,
            "show": self._cmd_show,
            "rank": self._cmd_rank,
            "revert": self._cmd_revert,
            "rows": self._cmd_rows,
            "export": self._cmd_export,
            "plan": self._cmd_plan,
            "columns": self._cmd_columns,
            "schema": self._cmd_schema,
            "history": self._cmd_history,
            "sql": self._cmd_sql,
            "help": self._cmd_help,
            "quit": self._cmd_quit,
            "exit": self._cmd_quit,
        }

    # ------------------------------------------------------------------
    def execute_line(self, line: str) -> str:
        command = parse_command(line)
        if command is None:
            return ""
        handler = self._handlers.get(command.name)
        if handler is None:
            return f"unknown command {command.name!r}; try 'help'"
        try:
            return handler(command.args)
        except ReproError as error:
            return f"error: {error}"

    def run_script(self, text: str) -> list[str]:
        """Execute many lines; returns the per-line outputs."""
        outputs = []
        for line in text.splitlines():
            outputs.append(self.execute_line(line))
            if self.done:
                break
        return outputs

    def _dispatch(self, action: str, params: dict[str, Any]) -> dict[str, Any]:
        """One protocol round trip against the local session.

        Everything a remote client could do goes through the same
        :func:`repro.service.protocol.apply_action` dispatch — the REPL
        only parses text and renders results. Imported lazily so the core
        package never depends on the service layer at import time (the
        service imports core, not the other way around).
        """
        from repro.service import protocol as wire

        return wire.apply_action(self.session, action, params)

    @staticmethod
    def _condition_payload(condition: Condition) -> dict[str, Any]:
        from repro.service import protocol as wire

        return wire.condition_to_json(condition)

    # ------------------------------------------------------------------
    # Command handlers
    # ------------------------------------------------------------------
    def _cmd_tables(self, args: tuple[str, ...]) -> str:
        names = self._dispatch("tables", {})["tables"]
        return "tables: " + ", ".join(names)

    def _cmd_open(self, args: tuple[str, ...]) -> str:
        _require(args, 1, "open <Type>")
        self._dispatch("open", {"type": args[0]})
        return self._table_text()

    def _cmd_filter(self, args: tuple[str, ...]) -> str:
        _require(args, 3, "filter <attr> <op> <value>")
        condition = build_condition(args[0], args[1], " ".join(args[2:]))
        self._dispatch("filter",
                       {"condition": self._condition_payload(condition)})
        return self._table_text()

    def _cmd_nfilter(self, args: tuple[str, ...]) -> str:
        if len(args) < 4:
            raise InvalidAction("usage: nfilter <column> <attr> <op> <value>")
        condition = build_condition(args[1], args[2], " ".join(args[3:]))
        self._dispatch("nfilter", {
            "column": args[0],
            "condition": self._condition_payload(condition),
        })
        return self._table_text()

    def _cmd_pivot(self, args: tuple[str, ...]) -> str:
        _require(args, 1, "pivot <column>")
        self._dispatch("pivot", {"column": " ".join(args)})
        return self._table_text()

    def _cmd_seeall(self, args: tuple[str, ...]) -> str:
        if len(args) < 2:
            raise InvalidAction("usage: seeall <row#> <column>")
        self._dispatch("seeall", {
            "row": self._row_index(args[0]),
            "column": " ".join(args[1:]),
        })
        return self._table_text()

    def _cmd_single(self, args: tuple[str, ...]) -> str:
        if len(args) < 2:
            raise InvalidAction("usage: single <row#> <column> [<ref#>]")
        row_index = self._row_index(args[0])
        etable = self.session.current
        assert etable is not None
        # The full tail is tried as a column name first so display names
        # that end in a digit (e.g. "Top 10") resolve; only when that fails
        # is a trailing integer treated as the reference index.
        index = 0
        try:
            column = etable.column_by_display(" ".join(args[1:]))
        except InvalidAction:
            if not (len(args) > 2 and args[-1].isdigit()):
                raise
            try:
                column = etable.column_by_display(" ".join(args[1:-1]))
            except InvalidAction:
                raise InvalidAction(
                    f"no ETable column titled {' '.join(args[1:])!r} "
                    f"or {' '.join(args[1:-1])!r}"
                ) from None
            index = int(args[-1])
        self._dispatch("single", {
            "row": row_index, "column": column.key, "ref": index,
        })
        return self._table_text()

    def _cmd_sort(self, args: tuple[str, ...]) -> str:
        if not args:
            raise InvalidAction("usage: sort <column> [desc]")
        descending = args[-1].lower() == "desc"
        column = " ".join(args[:-1]) if descending else " ".join(args)
        self._dispatch("sort", {"column": column, "descending": descending})
        return self._table_text()

    def _cmd_hide(self, args: tuple[str, ...]) -> str:
        _require(args, 1, "hide <column>")
        self._dispatch("hide", {"column": " ".join(args)})
        return self._table_text()

    def _cmd_show(self, args: tuple[str, ...]) -> str:
        _require(args, 1, "show <column>")
        self._dispatch("show", {"column": " ".join(args)})
        return self._table_text()

    def _cmd_rank(self, args: tuple[str, ...]) -> str:
        self._require_table()
        keep = _int_arg(args[0], "rank [k]") if args else 8
        result = self._dispatch("rank", {"keep": keep})
        lines = [item["explain"] for item in result["ranking"][:keep]]
        return "\n".join(lines + ["", self._table_text()])

    def _cmd_revert(self, args: tuple[str, ...]) -> str:
        _require(args, 1, "revert <step#>")
        step = _int_arg(args[0], "revert <step#>")  # history is shown 1-based
        self._dispatch("revert", {"index": step - 1})
        return self._table_text()

    def _cmd_rows(self, args: tuple[str, ...]) -> str:
        count = _int_arg(args[0], "rows [n]") if args else self.max_rows
        return self._table_text(max_rows=count)

    def _cmd_export(self, args: tuple[str, ...]) -> str:
        """Dump the current ETable (optionally plus history) as JSON.

        The payload comes from the wire protocol's ETable serializer, so a
        CLI export is byte-compatible with what the HTTP service returns.
        """
        self._require_table()
        include_history = False
        if args:
            if len(args) > 1 or args[0].lower() != "history":
                raise InvalidAction("usage: export [history]")
            include_history = True
        result = self._dispatch(
            "export", {"include_history": include_history}
        )
        return json.dumps(result, indent=2, default=str)

    def _cmd_plan(self, args: tuple[str, ...]) -> str:
        self._require_table()
        return self._dispatch("plan", {})["text"]

    def _cmd_columns(self, args: tuple[str, ...]) -> str:
        etable = self._require_table()
        lines = []
        for column in etable.columns:
            hidden = " (hidden)" if column.key in etable.hidden_columns else ""
            lines.append(
                f"  {column.display:32s} [{column.kind.value}]{hidden}"
            )
        return "\n".join(lines)

    def _cmd_schema(self, args: tuple[str, ...]) -> str:
        etable = self._require_table()
        return etable.pattern.to_ascii()

    def _cmd_history(self, args: tuple[str, ...]) -> str:
        lines = self._dispatch("history", {})["lines"]
        return "\n".join(lines) if lines else "(empty)"

    def _cmd_sql(self, args: tuple[str, ...]) -> str:
        etable = self._require_table()
        if self.mapping is None:
            raise InvalidAction(
                "this session has no translation map; construct the Repl "
                "with mapping=<TranslationMap> to enable SQL export"
            )
        from repro.core.sql_translation import pattern_to_sql

        translation = pattern_to_sql(
            etable.pattern, self.session.schema, self.mapping,
            self.session.graph,
        )
        return translation.sql

    def _cmd_help(self, args: tuple[str, ...]) -> str:
        return __doc__.split("Commands (one per line)::", 1)[1].strip()

    def _cmd_quit(self, args: tuple[str, ...]) -> str:
        self.done = True
        return "bye"

    # ------------------------------------------------------------------
    def _require_table(self):
        if self.session.current is None:
            raise InvalidAction("no table open; use 'open <Type>' first")
        return self.session.current

    def _row_index(self, text: str) -> int:
        etable = self._require_table()
        try:
            index = int(text)
        except ValueError:
            raise InvalidAction(f"expected a row number, got {text!r}") from None
        etable.row(index)  # validate now, so usage errors precede dispatch
        return index

    def _table_text(self, max_rows: int | None = None) -> str:
        etable = self._require_table()
        return render_etable(etable, max_rows=max_rows or self.max_rows,
                             max_refs=3, label_width=12)


def _require(args: tuple[str, ...], count: int, usage: str) -> None:
    if len(args) < count:
        raise InvalidAction(f"usage: {usage}")


def _int_arg(text: str, usage: str, minimum: int = 1) -> int:
    """Parse an integer command argument, reporting a usage error (not a
    raw ``ValueError``) for non-numbers and out-of-range values."""
    try:
        value = int(text)
    except ValueError:
        raise InvalidAction(
            f"expected an integer, got {text!r}; usage: {usage}"
        ) from None
    if value < minimum:
        raise InvalidAction(
            f"expected an integer >= {minimum}, got {text}; usage: {usage}"
        )
    return value
