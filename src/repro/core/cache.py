"""Reuse of intermediate results — the paper's future-work item #2.

Section 9: "(2) accelerating the execution speed of updated queries (e.g.,
by reusing intermediate results)". Incremental query building makes this
especially effective: the user's next pattern usually *extends* the current
one, so prefix results recur constantly (every revert re-executes an old
pattern verbatim).

:class:`CachingExecutor` layers two caches over the planning engine
(``repro.core.planner``):

* a **whole-pattern cache** keyed by :func:`pattern_cache_key` holding the
  final, reference-ordered graph relation (exact repeats — e.g. reverts —
  return it untouched);
* a **prefix store** keyed by canonical *subpattern* holding every
  intermediate relation the engine materializes. Extending a pattern by one
  node finds the previous pattern's full result as a cached prefix and
  executes only the delta join — the future-work item realized at the
  granularity the paper asks for.

A shared :class:`~repro.tgm.conditions.ConditionMemo` additionally memoizes
per-(condition, node) verdicts, so expensive ``NeighborSatisfies`` semijoin
conditions never re-scan a node's neighbors twice in one session.

Because patterns, conditions, and the instance graph are immutable during a
browsing session, cached graph relations stay valid; the format
transformation (which also builds neighbor columns) is re-run per call so
presentation state never leaks between hits.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, replace

from repro.analysis.runtime import assert_locked
from repro.tgm.conditions import ConditionMemo
from repro.tgm.graph_relation import GraphRelation
from repro.tgm.instance_graph import InstanceGraph
from repro.core.etable import ETable
from repro.core.planner import (
    DeltaPlan,
    DeltaPlanner,
    DeltaReport,
    ExecutionReport,
    ParallelContext,
    Plan,
    PrefixStore,
    build_plan,
    canonical_pattern_key,
    normalize_pattern,
    parallel_context,
    restore_reference_order,
    execute_plan,
)
from repro.core.query_pattern import QueryPattern
from repro.core.transform import transform


def pattern_cache_key(pattern: QueryPattern) -> tuple:
    """A canonical, hashable rendering of a pattern.

    Node order is normalized by key and commutative combinators render
    canonically (see :func:`repro.core.planner.canonical_pattern_key`), so
    logically identical patterns built in different orders — including an
    ``AndCondition`` with reordered operands — share cache entries.
    Condition tokens build on ``cache_token()`` strings (deterministic for
    all condition types, and — unlike ``describe()`` — never dropping
    discriminating detail such as a ``NodeIs`` node id behind a shared
    display label).
    """
    return canonical_pattern_key(pattern)


class CompiledPlanCache:
    """Fleet-wide LRU of compiled :class:`~repro.core.planner.Plan` objects
    keyed by *normalized* pattern (constants lifted out).

    Two users filtering the same shape on different years — or the same
    user refiltering — share one compiled plan: the cache key is
    :attr:`~repro.core.planner.NormalizedPattern.key`, and on a hit the
    cached plan is rebound to the caller's concrete pattern, which is how
    constants are "bound at execution" (the join order and step structure
    are shape-properties; the conditions executed come from the live
    pattern, never the cached one). Per-step ``est_rows`` annotations keep
    the estimates of the pattern that first compiled the plan — cosmetic
    for ``explain``, irrelevant for execution.

    Entries are valid only for the graph snapshot they were planned over:
    every access checks the graph's mutation version and drops the whole
    cache when it moved (statistics — and therefore join order — may have
    changed). Thread-safe behind one lock, like the executor that owns it.
    """

    def __init__(self, graph: InstanceGraph, max_entries: int = 512) -> None:
        self._graph = graph
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._plans: OrderedDict[tuple, Plan] = OrderedDict()  # guarded-by: self._lock
        self._graph_version = graph.version  # guarded-by: self._lock
        self.hits = 0  # guarded-by: self._lock
        self.misses = 0  # guarded-by: self._lock
        self.evictions = 0  # guarded-by: self._lock
        self.invalidations = 0  # guarded-by: self._lock

    def _check_version(self) -> None:  # requires-lock
        assert_locked(self._lock, "CompiledPlanCache._lock")
        if self._graph_version != self._graph.version:
            self._plans.clear()
            self._graph_version = self._graph.version
            self.invalidations += 1

    def get(self, key: tuple, pattern: QueryPattern) -> Plan | None:
        """The cached plan for ``key``, rebound to ``pattern`` — or None.

        The returned plan shares its (immutable) steps with the cached
        one; only the ``pattern`` field is swapped, so execution evaluates
        the caller's own conditions in the cached join order.
        """
        with self._lock:
            self._check_version()
            plan = self._plans.get(key)
            if plan is None:
                self.misses += 1
                return None
            self.hits += 1
            self._plans.move_to_end(key)
            return replace(plan, pattern=pattern)

    def put(self, key: tuple, plan: Plan) -> None:
        with self._lock:
            self._check_version()
            self._plans[key] = plan
            self._plans.move_to_end(key)
            while len(self._plans) > self.max_entries:
                self._plans.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()

    def stats(self) -> dict:
        """Counters for ``stats_payload()["plan_cache"]`` (JSON-able)."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "entries": len(self._plans),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / lookups if lookups else 0.0,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    # Prefix-level reuse: misses that still started from a cached subpattern
    # and how many already-joined pattern nodes they skipped re-executing.
    prefix_hits: int = 0
    reused_nodes: int = 0
    delta_joins: int = 0
    pushdown_joins: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ResultLineage(PrefixStore):
    """Per-session store of the reference-ordered relation chain a session's
    history panel implies.

    Every executed action's full relation is retained under its canonical
    pattern key, so revert-heavy browsing is O(1): the history entry's
    pattern looks its relation straight back up instead of re-matching.
    Shares :class:`~repro.core.planner.PrefixStore`'s size-weighted LRU
    eviction accounting (cells = rows × attributes, admission cap) and its
    mutation-version invalidation — a lineage must never serve a relation
    computed over a graph snapshot that no longer exists.
    """

    def __init__(self, graph: InstanceGraph, max_entries: int = 64,
                 max_cells: int | None = 2_000_000) -> None:
        super().__init__(max_entries=max_entries, max_cells=max_cells,
                         graph=graph)


class IncrementalStats:
    """Counters for the incremental engine (thread-safe; JSON-able).

    ``delta_actions`` answered from the previous relation (by kind),
    ``replays`` answered straight from the lineage, ``replans`` that fell
    back to the full planner (and why), plus the rows the delta kernels
    actually touched — the number that should scale with |current ETable|,
    not |database|.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.delta_actions = 0  # guarded-by: self._lock
        self.replays = 0  # guarded-by: self._lock
        self.replans = 0  # guarded-by: self._lock
        self.cost_replans = 0  # guarded-by: self._lock
        self.rows_touched = 0  # guarded-by: self._lock
        self.by_kind: dict[str, int] = {}  # guarded-by: self._lock

    def note_delta(self, kind: str, rows_touched: int) -> None:
        with self._lock:
            self.delta_actions += 1
            self.rows_touched += rows_touched
            self.by_kind[kind] = self.by_kind.get(kind, 0) + 1

    def note_replay(self) -> None:
        with self._lock:
            self.replays += 1
            self.by_kind["replay"] = self.by_kind.get("replay", 0) + 1

    def note_replan(self, cost_gated: bool) -> None:
        with self._lock:
            self.replans += 1
            if cost_gated:
                self.cost_replans += 1

    @property
    def actions(self) -> int:
        with self._lock:
            return self.delta_actions + self.replays + self.replans

    @property
    def delta_hit_rate(self) -> float:
        """Fraction of executed actions answered without replanning."""
        # One lock scope for numerator and denominator: reading them in
        # two steps can interleave with a note_* increment and report a
        # rate above 1.0 (the unguarded read RPA101 originally flagged).
        with self._lock:
            total = self.delta_actions + self.replays + self.replans
            answered = self.delta_actions + self.replays
            return answered / total if total else 0.0

    def payload(self) -> dict:
        with self._lock:
            total = self.delta_actions + self.replays + self.replans
            answered = self.delta_actions + self.replays
            return {
                "delta_actions": self.delta_actions,
                "replays": self.replays,
                "replans": self.replans,
                "cost_replans": self.cost_replans,
                "rows_touched": self.rows_touched,
                "delta_hit_rate": answered / total if total else 0.0,
                "by_kind": dict(self.by_kind),
            }


class CachingExecutor:
    """Memoizes ``match()`` per pattern — and per pattern *prefix* — over
    one instance graph.

    The executor is safe to share across threads (and therefore across the
    concurrent sessions of ``repro.service``): ``match()`` runs under one
    re-entrant lock, so the caches and counters stay consistent while the
    format transformation — which carries per-session presentation state —
    still runs concurrently outside it. Sharing one executor between many
    sessions is exactly the cross-session reuse the service layer wants:
    one user's prefix work becomes another user's cache hit.

    Cache capacity is budgeted by relation *size* (rows × attributes cells,
    see :func:`repro.core.planner.relation_cells`), not just entry count, so
    one huge intermediate cannot pin — or flush — the working set.
    """

    def __init__(
        self,
        graph: InstanceGraph,
        max_entries: int = 256,
        max_prefix_entries: int = 512,
        max_cells: int | None = 4_000_000,
        max_prefix_cells: int | None = 4_000_000,
        parallel: ParallelContext | None = None,
        workers: int | None = None,
        pushdown: "PushdownContext | None" = None,
        max_plans: int = 512,
    ) -> None:
        self.graph = graph
        self.max_entries = max_entries
        # Partitioned delta joins compose with prefix reuse: the executor
        # merges each sharded join back into one ordinary GraphRelation
        # before it is cached, so cached intermediates are identical whether
        # they were computed serially or across worker processes. ``workers``
        # is sugar for the process-wide shared context of that size.
        if parallel is None and workers is not None:
            parallel = parallel_context(workers)
        self.parallel = parallel
        # SQL pushdown of oversized delta joins (``engine="pushdown"``):
        # like the parallel path, pushed joins are merged back into ordinary
        # GraphRelations before caching, so they compose with prefix reuse.
        self.pushdown = pushdown
        # Compiled plans are shared across every session this executor
        # serves — the fleet-wide normalized plan cache of ROADMAP item 3.
        self.plans = CompiledPlanCache(graph, max_entries=max_plans)
        self.stats = CacheStats()  # guarded-by: self._lock
        self.memo = ConditionMemo()  # guarded-by: self._lock
        # Aggregated counters of every IncrementalExecutor layered over this
        # executor (the service shares one base across all sessions, so this
        # is the fleet-wide incremental picture).
        self.incremental = IncrementalStats()
        # Both stores are graph-bound: a mutation-version bump drops them on
        # the next lookup, so a mutated graph can never serve stale tuples.
        self.prefixes = PrefixStore(max_entries=max_prefix_entries,  # guarded-by: self._lock
                                    max_cells=max_prefix_cells,
                                    graph=graph)
        # Whole-pattern results share the PrefixStore LRU mechanics (a hit
        # refreshes the entry so hot patterns survive eviction pressure) but
        # live in their own store: their keys include the primary node and
        # their relations are reference-ordered.
        self._store = PrefixStore(max_entries=max_entries,  # guarded-by: self._lock
                                  max_cells=max_cells,
                                  graph=graph)
        self._graph_version = graph.version  # guarded-by: self._lock
        self._lock = threading.RLock()

    def _check_graph_version(self) -> None:  # requires-lock
        """Drop the condition memo after a graph mutation (caller holds the
        lock). The relation stores self-invalidate; the memo holds
        per-(condition, node) verdicts that mutation can flip (e.g. a
        ``NeighborSatisfies`` after an edge was added)."""
        assert_locked(self._lock, "CachingExecutor._lock")
        if self._graph_version != self.graph.version:
            self.memo.clear()
            self._graph_version = self.graph.version

    def match(self, pattern: QueryPattern) -> GraphRelation:
        with self._lock:
            self._check_graph_version()
            key = pattern_cache_key(pattern)
            cached = self._store.get(key)
            if cached is not None:
                self.stats.hits += 1
                return cached
            self.stats.misses += 1
            pattern.validate(self.graph.schema)
            # Consult the compiled-plan cache before planning: patterns
            # sharing a normalized shape (same structure, any constants)
            # reuse one plan, with this pattern's constants bound at
            # execution by the rebind inside ``CompiledPlanCache.get``.
            normalized = normalize_pattern(pattern)
            plan = self.plans.get(normalized.key, pattern)
            if plan is None:
                plan = build_plan(pattern, self.graph, semijoin=False)
                self.plans.put(normalized.key, plan)
            report = ExecutionReport()
            relation = execute_plan(
                plan,
                self.graph,
                memo=self.memo,
                store=self.prefixes,
                report=report,
                parallel=self.parallel,
                pushdown=self.pushdown,
            )
            if report.reused_nodes:
                self.stats.prefix_hits += 1
                self.stats.reused_nodes += report.reused_nodes
            self.stats.delta_joins += report.delta_joins
            self.stats.pushdown_joins += report.pushdown_joins
            result = restore_reference_order(pattern, relation, self.graph)
            self._store.put(key, result)
            return result

    def execute(
        self, pattern: QueryPattern, row_limit: int | None = None
    ) -> ETable:
        """Cached counterpart of :func:`repro.core.transform.execute_pattern`."""
        matched = self.match(pattern)
        return transform(pattern, matched, self.graph, row_limit=row_limit)

    def adopt_result(self, pattern: QueryPattern,
                     relation: GraphRelation,
                     key: tuple | None = None) -> None:
        """Insert an externally-computed exact result (reference-ordered full
        match of ``pattern``) into the whole-pattern cache.

        This is how the incremental engine feeds its delta-derived relations
        back to the shared executor: one session's delta becomes every other
        session's whole-pattern hit. Thread-safe; the caller vouches for
        exactness (the session fuzzer replays shared-executor sessions in
        lockstep, so a wrong adoption diverges immediately).
        """
        with self._lock:
            self._check_graph_version()
            self._store.put(key or pattern_cache_key(pattern), relation)

    def stats_payload(self) -> dict:  # repro: noqa-RPA101 — lock-free by design, see docstring
        """All cache counters as one JSON-able dict (service ``/v1/stats``).

        Deliberately lock-free: every value is a monotonic counter or a
        point-in-time gauge, and a health probe must not queue behind an
        expensive in-flight ``match()``. Numbers may be a step stale while
        a query executes — fine for introspection.
        """
        # Every ratio below is guarded against a cold cache (zero lookups /
        # zero misses): health probes hit /v1/stats before the first query.
        misses = self.stats.misses
        return {
            "hits": self.stats.hits,
            "misses": misses,
            "hit_rate": self.stats.hit_rate,
            "prefix_hits": self.stats.prefix_hits,
            "prefix_hit_rate": (
                self.stats.prefix_hits / misses if misses else 0.0
            ),
            "reused_nodes": self.stats.reused_nodes,
            "delta_joins": self.stats.delta_joins,
            "pushdown_joins": self.stats.pushdown_joins,
            "results": self._store.stats(),
            "prefixes": self.prefixes.stats(),
            "plan_cache": self.plans.stats(),
            "incremental": self.incremental.payload(),
            "parallel": (
                self.parallel.stats_payload()
                if self.parallel is not None else None
            ),
            "pushdown": (
                self.pushdown.stats_payload()
                if self.pushdown is not None else None
            ),
        }

    def invalidate(self) -> None:
        """Drop everything (call after mutating the instance graph)."""
        with self._lock:
            self._store.clear()
            self.prefixes.clear()
            self.memo.clear()
            self.plans.clear()


class IncrementalExecutor:
    """Per-session incremental engine: ``engine="incremental"``.

    Layers the :class:`~repro.core.planner.DeltaPlanner` over a (shareable)
    :class:`CachingExecutor`. Each ``match`` first consults the session's
    :class:`ResultLineage` (reverts and exact repeats are O(1) lookups),
    then tries to classify the pattern as a monotone delta of the *previous
    action's* relation — a filter becomes a row-selection, a pivot one
    delta join, a shift a re-rank — and only falls back to the base
    executor's full planner for non-monotone actions or when the cost model
    says replanning is cheaper — a fall-back that consults the base's
    :class:`CompiledPlanCache` before planning, so even replans reuse
    normalized compiled plans. Every result (delta or replan) is recorded
    in the lineage and adopted into the base's whole-pattern cache, so
    cross-session reuse still compounds. Delta joins ride the base's
    pushdown context when one is attached, so ``incremental`` layers over
    ``pushdown`` transparently too.

    The instance is **per-session** (the lineage and previous-relation
    pointer are a session's private chain); the base executor may be shared
    by many sessions, exactly like the multi-user service shares one
    ``CachingExecutor``. Delta joins ride the base's parallel context when
    one is attached, so ``incremental`` layers over ``planned`` *or*
    ``parallel`` transparently.
    """

    def __init__(
        self,
        base: CachingExecutor,
        max_lineage_entries: int = 64,
        max_lineage_cells: int | None = 2_000_000,
    ) -> None:
        self.base = base
        self.graph = base.graph
        self.planner = DeltaPlanner(base.graph)
        self.lineage = ResultLineage(base.graph,
                                     max_entries=max_lineage_entries,
                                     max_cells=max_lineage_cells)
        self.stats = IncrementalStats()
        self.last_delta: DeltaPlan | None = None
        self.last_report: DeltaReport | None = None
        self.last_outcome: str = ""
        self._previous: tuple[QueryPattern, GraphRelation] | None = None
        self._previous_version = base.graph.version

    @property
    def parallel(self) -> ParallelContext | None:
        return self.base.parallel

    @property
    def pushdown(self) -> "PushdownContext | None":
        return self.base.pushdown

    def _remember(self, pattern: QueryPattern, relation: GraphRelation,
                  key: tuple) -> None:
        self._previous = (pattern, relation)
        self._previous_version = self.graph.version
        self.lineage.put(key, relation)

    def match(self, pattern: QueryPattern) -> GraphRelation:
        if self._previous is not None and (
            self._previous_version != self.graph.version
        ):
            # The graph mutated under the session: the previous relation
            # describes a snapshot that no longer exists (the lineage
            # version guard clears itself on the next lookup).
            self._previous = None
        key = pattern_cache_key(pattern)
        cached = self.lineage.get(key)
        if cached is not None:
            self.stats.note_replay()
            self.base.incremental.note_replay()
            self.last_delta = None
            self.last_report = None
            self.last_outcome = "replay: lineage hit (retained history relation)"
            self._remember(pattern, cached, key)
            return cached
        previous = self._previous
        delta, reason = self.planner.plan(
            previous[0] if previous is not None else None,
            len(previous[1]) if previous is not None else 0,
            pattern,
        )
        if delta is None:
            relation = self.base.match(pattern)
            cost_gated = reason is not None and reason.startswith("cost model")
            self.stats.note_replan(cost_gated)
            self.base.incremental.note_replan(cost_gated)
            self.last_delta = None
            self.last_report = None
            self.last_outcome = f"replan: {reason}"
        else:
            pattern.validate(self.graph.schema)
            assert previous is not None
            relation, report = self.planner.execute(
                delta, previous[1], pattern,
                memo=self.base.memo, parallel=self.base.parallel,
                pushdown=self.base.pushdown,
            )
            if not delta.order_preserved:
                relation = restore_reference_order(
                    pattern, relation, self.graph
                )
            self.stats.note_delta(delta.kind, report.rows_touched)
            self.base.incremental.note_delta(delta.kind, report.rows_touched)
            self.last_delta = delta
            self.last_report = report
            self.last_outcome = (
                f"{delta.describe()} "
                f"[{report.rows_in} -> {report.rows_out} rows, "
                f"{report.rows_touched} touched"
                + (", partitioned" if report.parallel_join else "")
                + (", pushed to SQL" if report.pushdown_join else "")
                + "]"
            )
            # Feed the exact result back to the shared whole-pattern cache.
            self.base.adopt_result(pattern, relation, key=key)
        self._remember(pattern, relation, key)
        return relation

    def execute(
        self, pattern: QueryPattern, row_limit: int | None = None
    ) -> ETable:
        """Incremental counterpart of :meth:`CachingExecutor.execute`."""
        matched = self.match(pattern)
        return transform(pattern, matched, self.graph, row_limit=row_limit)

    def stats_payload(self) -> dict:
        """The base executor's payload plus this session's delta counters."""
        payload = self.base.stats_payload()
        payload["incremental_session"] = self.stats.payload()
        payload["lineage"] = self.lineage.stats()
        return payload

    def invalidate(self) -> None:
        """Drop the session chain (the base executor is invalidated by its
        owner — it may be shared)."""
        self.lineage.clear()
        self._previous = None
