"""Reuse of intermediate results — the paper's future-work item #2.

Section 9: "(2) accelerating the execution speed of updated queries (e.g.,
by reusing intermediate results)". Incremental query building makes this
especially effective: the user's next pattern usually *extends* the current
one, so prefix results recur constantly (every revert re-executes an old
pattern verbatim).

:class:`CachingExecutor` memoizes instance-matching results keyed by a
canonical pattern serialization. Because patterns, conditions, and the
instance graph are immutable during a browsing session, cached graph
relations stay valid; the format transformation (which also builds neighbor
columns) is re-run per call so presentation state never leaks between hits.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from repro.tgm.graph_relation import GraphRelation
from repro.tgm.instance_graph import InstanceGraph
from repro.core.etable import ETable
from repro.core.matching import match
from repro.core.query_pattern import QueryPattern
from repro.core.transform import transform


def pattern_cache_key(pattern: QueryPattern) -> tuple:
    """A canonical, hashable rendering of a pattern.

    Node order is normalized by key so that logically identical patterns
    built in different orders share cache entries; conditions use their
    ``describe()`` strings (deterministic for all condition types).
    """
    nodes = tuple(
        (node.key, node.type_name,
         tuple(sorted(c.describe() for c in node.conditions)))
        for node in sorted(pattern.nodes, key=lambda n: n.key)
    )
    edges = tuple(
        sorted((e.edge_type, e.source_key, e.target_key) for e in pattern.edges)
    )
    return (pattern.primary_key, nodes, edges)


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CachingExecutor:
    """Memoizes ``match()`` per pattern over one instance graph."""

    def __init__(self, graph: InstanceGraph, max_entries: int = 256) -> None:
        self.graph = graph
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._store: OrderedDict[tuple, GraphRelation] = OrderedDict()

    def match(self, pattern: QueryPattern) -> GraphRelation:
        key = pattern_cache_key(pattern)
        cached = self._store.get(key)
        if cached is not None:
            self.stats.hits += 1
            # LRU: a hit refreshes the entry so hot prefix patterns (re-hit
            # on every incremental extension) survive eviction pressure.
            self._store.move_to_end(key)
            return cached
        self.stats.misses += 1
        result = match(pattern, self.graph)
        if len(self._store) >= self.max_entries:
            self._store.popitem(last=False)  # least recently used
        self._store[key] = result
        return result

    def execute(
        self, pattern: QueryPattern, row_limit: int | None = None
    ) -> ETable:
        """Cached counterpart of :func:`repro.core.transform.execute_pattern`."""
        matched = self.match(pattern)
        return transform(pattern, matched, self.graph, row_limit=row_limit)

    def invalidate(self) -> None:
        """Drop everything (call after mutating the instance graph)."""
        self._store.clear()
