"""Reuse of intermediate results — the paper's future-work item #2.

Section 9: "(2) accelerating the execution speed of updated queries (e.g.,
by reusing intermediate results)". Incremental query building makes this
especially effective: the user's next pattern usually *extends* the current
one, so prefix results recur constantly (every revert re-executes an old
pattern verbatim).

:class:`CachingExecutor` layers two caches over the planning engine
(``repro.core.planner``):

* a **whole-pattern cache** keyed by :func:`pattern_cache_key` holding the
  final, reference-ordered graph relation (exact repeats — e.g. reverts —
  return it untouched);
* a **prefix store** keyed by canonical *subpattern* holding every
  intermediate relation the engine materializes. Extending a pattern by one
  node finds the previous pattern's full result as a cached prefix and
  executes only the delta join — the future-work item realized at the
  granularity the paper asks for.

A shared :class:`~repro.tgm.conditions.ConditionMemo` additionally memoizes
per-(condition, node) verdicts, so expensive ``NeighborSatisfies`` semijoin
conditions never re-scan a node's neighbors twice in one session.

Because patterns, conditions, and the instance graph are immutable during a
browsing session, cached graph relations stay valid; the format
transformation (which also builds neighbor columns) is re-run per call so
presentation state never leaks between hits.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.tgm.conditions import ConditionMemo
from repro.tgm.graph_relation import GraphRelation
from repro.tgm.instance_graph import InstanceGraph
from repro.core.etable import ETable
from repro.core.planner import (
    ExecutionReport,
    ParallelContext,
    PrefixStore,
    build_plan,
    parallel_context,
    restore_reference_order,
    execute_plan,
)
from repro.core.query_pattern import QueryPattern
from repro.core.transform import transform


def pattern_cache_key(pattern: QueryPattern) -> tuple:
    """A canonical, hashable rendering of a pattern.

    Node order is normalized by key so that logically identical patterns
    built in different orders share cache entries; conditions use their
    ``cache_token()`` strings (deterministic for all condition types, and —
    unlike ``describe()`` — never dropping discriminating detail such as a
    ``NodeIs`` node id behind a shared display label).
    """
    nodes = tuple(
        (node.key, node.type_name,
         tuple(sorted(c.cache_token() for c in node.conditions)))
        for node in sorted(pattern.nodes, key=lambda n: n.key)
    )
    edges = tuple(
        sorted((e.edge_type, e.source_key, e.target_key) for e in pattern.edges)
    )
    return (pattern.primary_key, nodes, edges)


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    # Prefix-level reuse: misses that still started from a cached subpattern
    # and how many already-joined pattern nodes they skipped re-executing.
    prefix_hits: int = 0
    reused_nodes: int = 0
    delta_joins: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CachingExecutor:
    """Memoizes ``match()`` per pattern — and per pattern *prefix* — over
    one instance graph.

    The executor is safe to share across threads (and therefore across the
    concurrent sessions of ``repro.service``): ``match()`` runs under one
    re-entrant lock, so the caches and counters stay consistent while the
    format transformation — which carries per-session presentation state —
    still runs concurrently outside it. Sharing one executor between many
    sessions is exactly the cross-session reuse the service layer wants:
    one user's prefix work becomes another user's cache hit.

    Cache capacity is budgeted by relation *size* (rows × attributes cells,
    see :func:`repro.core.planner.relation_cells`), not just entry count, so
    one huge intermediate cannot pin — or flush — the working set.
    """

    def __init__(
        self,
        graph: InstanceGraph,
        max_entries: int = 256,
        max_prefix_entries: int = 512,
        max_cells: int | None = 4_000_000,
        max_prefix_cells: int | None = 4_000_000,
        parallel: ParallelContext | None = None,
        workers: int | None = None,
    ) -> None:
        self.graph = graph
        self.max_entries = max_entries
        # Partitioned delta joins compose with prefix reuse: the executor
        # merges each sharded join back into one ordinary GraphRelation
        # before it is cached, so cached intermediates are identical whether
        # they were computed serially or across worker processes. ``workers``
        # is sugar for the process-wide shared context of that size.
        if parallel is None and workers is not None:
            parallel = parallel_context(workers)
        self.parallel = parallel
        self.stats = CacheStats()
        self.memo = ConditionMemo()
        self.prefixes = PrefixStore(max_entries=max_prefix_entries,
                                    max_cells=max_prefix_cells)
        # Whole-pattern results share the PrefixStore LRU mechanics (a hit
        # refreshes the entry so hot patterns survive eviction pressure) but
        # live in their own store: their keys include the primary node and
        # their relations are reference-ordered.
        self._store = PrefixStore(max_entries=max_entries,
                                  max_cells=max_cells)
        self._lock = threading.RLock()

    def match(self, pattern: QueryPattern) -> GraphRelation:
        with self._lock:
            key = pattern_cache_key(pattern)
            cached = self._store.get(key)
            if cached is not None:
                self.stats.hits += 1
                return cached
            self.stats.misses += 1
            pattern.validate(self.graph.schema)
            plan = build_plan(pattern, self.graph, semijoin=False)
            report = ExecutionReport()
            relation = execute_plan(
                plan,
                self.graph,
                memo=self.memo,
                store=self.prefixes,
                report=report,
                parallel=self.parallel,
            )
            if report.reused_nodes:
                self.stats.prefix_hits += 1
                self.stats.reused_nodes += report.reused_nodes
            self.stats.delta_joins += report.delta_joins
            result = restore_reference_order(pattern, relation, self.graph)
            self._store.put(key, result)
            return result

    def execute(
        self, pattern: QueryPattern, row_limit: int | None = None
    ) -> ETable:
        """Cached counterpart of :func:`repro.core.transform.execute_pattern`."""
        matched = self.match(pattern)
        return transform(pattern, matched, self.graph, row_limit=row_limit)

    def stats_payload(self) -> dict:
        """All cache counters as one JSON-able dict (service ``/v1/stats``).

        Deliberately lock-free: every value is a monotonic counter or a
        point-in-time gauge, and a health probe must not queue behind an
        expensive in-flight ``match()``. Numbers may be a step stale while
        a query executes — fine for introspection.
        """
        # Every ratio below is guarded against a cold cache (zero lookups /
        # zero misses): health probes hit /v1/stats before the first query.
        misses = self.stats.misses
        return {
            "hits": self.stats.hits,
            "misses": misses,
            "hit_rate": self.stats.hit_rate,
            "prefix_hits": self.stats.prefix_hits,
            "prefix_hit_rate": (
                self.stats.prefix_hits / misses if misses else 0.0
            ),
            "reused_nodes": self.stats.reused_nodes,
            "delta_joins": self.stats.delta_joins,
            "results": self._store.stats(),
            "prefixes": self.prefixes.stats(),
            "parallel": (
                self.parallel.stats_payload()
                if self.parallel is not None else None
            ),
        }

    def invalidate(self) -> None:
        """Drop everything (call after mutating the instance graph)."""
        with self._lock:
            self._store.clear()
            self.prefixes.clear()
            self.memo.clear()
