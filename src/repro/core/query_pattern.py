"""ETable query patterns (Definition 3 of the paper).

A query pattern ``Q = (τa, T, P, C)`` is represented as a tree of *pattern
nodes*. Each pattern node references a schema node type and carries its own
conjunction of selection conditions; pattern edges reference schema edge
types. Using pattern nodes (rather than bare node types) implements the
paper's remark that "a node type in the schema graph can exist multiple
times in the participating node types" — e.g. a self-join on Papers through
the citation relationship.

Patterns are immutable: the primitive operators of Section 5.3 return new
patterns, which is what makes the history view's revert operation a simple
snapshot restore.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable

from repro.errors import InvalidQueryPattern
from repro.tgm.conditions import Condition, conjoin_conditions
from repro.tgm.schema_graph import SchemaGraph


@dataclass(frozen=True)
class PatternNode:
    """One occurrence of a node type in a pattern, with its conditions."""

    key: str
    type_name: str
    conditions: tuple[Condition, ...] = ()

    def describe_conditions(self) -> str:
        condition = conjoin_conditions(self.conditions)
        return condition.describe() if condition is not None else ""


@dataclass(frozen=True)
class PatternEdge:
    """One participating edge type, oriented as in the schema graph."""

    edge_type: str
    source_key: str
    target_key: str


@dataclass(frozen=True)
class QueryPattern:
    """An immutable query pattern; validate against a schema before use."""

    primary_key: str
    nodes: tuple[PatternNode, ...]
    edges: tuple[PatternEdge, ...] = ()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def node(self, key: str) -> PatternNode:
        for node in self.nodes:
            if node.key == key:
                return node
        raise InvalidQueryPattern(f"no pattern node with key {key!r}")

    def has_node(self, key: str) -> bool:
        return any(node.key == key for node in self.nodes)

    @property
    def primary(self) -> PatternNode:
        return self.node(self.primary_key)

    @property
    def participating_keys(self) -> list[str]:
        """Keys of all non-primary pattern nodes, in insertion order.

        These are exactly the participating node columns ``At`` of the
        resulting ETable (Section 5.4.2)."""
        return [node.key for node in self.nodes if node.key != self.primary_key]

    def edges_touching(self, key: str) -> list[PatternEdge]:
        return [
            edge
            for edge in self.edges
            if edge.source_key == key or edge.target_key == key
        ]

    def fresh_key(self, type_name: str) -> str:
        """A unique pattern-node key derived from a type name."""
        if not self.has_node(type_name):
            return type_name
        counter = 2
        while self.has_node(f"{type_name}#{counter}"):
            counter += 1
        return f"{type_name}#{counter}"

    # ------------------------------------------------------------------
    # Functional updates (used by the primitive operators)
    # ------------------------------------------------------------------
    def with_conditions(self, key: str, conditions: Iterable[Condition],
                        replace_existing: bool = False) -> "QueryPattern":
        new_conditions = tuple(conditions)
        nodes = tuple(
            replace(
                node,
                conditions=(
                    new_conditions
                    if replace_existing
                    else node.conditions + new_conditions
                ),
            )
            if node.key == key
            else node
            for node in self.nodes
        )
        if not any(node.key == key for node in self.nodes):
            raise InvalidQueryPattern(f"no pattern node with key {key!r}")
        return replace(self, nodes=nodes)

    def with_node(self, node: PatternNode, edge: PatternEdge,
                  new_primary: str | None = None) -> "QueryPattern":
        if self.has_node(node.key):
            raise InvalidQueryPattern(f"pattern node key {node.key!r} already used")
        return replace(
            self,
            nodes=self.nodes + (node,),
            edges=self.edges + (edge,),
            primary_key=new_primary or self.primary_key,
        )

    def with_primary(self, key: str) -> "QueryPattern":
        self.node(key)  # validates
        return replace(self, primary_key=key)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, schema: SchemaGraph) -> None:
        """Check Definition 3's structural requirements.

        The pattern must be a connected acyclic graph (a tree) containing
        the primary node; every edge must match its endpoints' node types
        in the schema graph.
        """
        if not self.nodes:
            raise InvalidQueryPattern("a pattern needs at least one node")
        keys = [node.key for node in self.nodes]
        if len(set(keys)) != len(keys):
            raise InvalidQueryPattern(f"duplicate pattern node keys in {keys!r}")
        if not self.has_node(self.primary_key):
            raise InvalidQueryPattern(
                f"primary key {self.primary_key!r} is not a pattern node"
            )
        for node in self.nodes:
            schema.node_type(node.type_name)  # raises UnknownNodeType
        key_set = set(keys)
        for edge in self.edges:
            if edge.source_key not in key_set or edge.target_key not in key_set:
                raise InvalidQueryPattern(
                    f"edge {edge.edge_type!r} references unknown pattern nodes"
                )
            edge_type = schema.edge_type(edge.edge_type)
            source = self.node(edge.source_key)
            target = self.node(edge.target_key)
            if source.type_name != edge_type.source:
                raise InvalidQueryPattern(
                    f"edge {edge.edge_type!r} expects source type "
                    f"{edge_type.source!r}, pattern has {source.type_name!r}"
                )
            if target.type_name != edge_type.target:
                raise InvalidQueryPattern(
                    f"edge {edge.edge_type!r} expects target type "
                    f"{edge_type.target!r}, pattern has {target.type_name!r}"
                )
        # Tree check: connected and exactly n-1 edges.
        if len(self.edges) != len(self.nodes) - 1:
            raise InvalidQueryPattern(
                f"pattern must be a tree: {len(self.nodes)} nodes need "
                f"{len(self.nodes) - 1} edges, found {len(self.edges)}"
            )
        if self.nodes and not self._is_connected():
            raise InvalidQueryPattern("pattern graph is not connected")

    def _is_connected(self) -> bool:
        adjacency: dict[str, list[str]] = {node.key: [] for node in self.nodes}
        for edge in self.edges:
            adjacency[edge.source_key].append(edge.target_key)
            adjacency[edge.target_key].append(edge.source_key)
        seen = {self.primary_key}
        frontier = [self.primary_key]
        while frontier:
            current = frontier.pop()
            for neighbor in adjacency[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return len(seen) == len(self.nodes)

    # ------------------------------------------------------------------
    # Traversal helpers used by matching and SQL translation
    # ------------------------------------------------------------------
    def traversal_order(self) -> list[tuple[str, PatternEdge | None]]:
        """BFS order from the primary node: ``(node key, connecting edge)``.

        The first entry is the primary with no edge; each later entry's edge
        links it to an earlier node. This is the ``t1 ... tn`` ordering that
        Definition 4's matching function needs.
        """
        adjacency: dict[str, list[PatternEdge]] = {
            node.key: [] for node in self.nodes
        }
        for edge in self.edges:
            adjacency[edge.source_key].append(edge)
            adjacency[edge.target_key].append(edge)
        order: list[tuple[str, PatternEdge | None]] = [(self.primary_key, None)]
        seen = {self.primary_key}
        queue = [self.primary_key]
        while queue:
            current = queue.pop(0)
            for edge in adjacency[current]:
                other = (
                    edge.target_key
                    if edge.source_key == current
                    else edge.source_key
                )
                if other in seen:
                    continue
                seen.add(other)
                order.append((other, edge))
                queue.append(other)
        return order

    def children_of(self, key: str, parent: str | None) -> list[tuple[str, PatternEdge]]:
        """Tree children of ``key`` given its ``parent`` (None for the root)."""
        out: list[tuple[str, PatternEdge]] = []
        for edge in self.edges_touching(key):
            other = (
                edge.target_key if edge.source_key == key else edge.source_key
            )
            if other != parent:
                out.append((other, edge))
        return out

    # ------------------------------------------------------------------
    # Rendering (Figure 6)
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line description, e.g. for the history panel."""
        parts = []
        for node in self.nodes:
            marker = "*" if node.key == self.primary_key else ""
            conditions = node.describe_conditions()
            if conditions:
                parts.append(f"{marker}{node.key}[{conditions}]")
            else:
                parts.append(f"{marker}{node.key}")
        return " — ".join(parts)

    def to_ascii(self) -> str:
        """A diagrammatic rendering in the spirit of Figure 6."""
        lines = ["Query pattern (primary marked with *):"]
        for node in self.nodes:
            marker = "*" if node.key == self.primary_key else " "
            conditions = node.describe_conditions()
            suffix = f"   {{{conditions}}}" if conditions else ""
            lines.append(f"  {marker}[{node.key}:{node.type_name}]{suffix}")
        for edge in self.edges:
            lines.append(
                f"   [{edge.source_key}] --{edge.edge_type}--> [{edge.target_key}]"
            )
        return "\n".join(lines)


def single_node_pattern(schema: SchemaGraph, type_name: str) -> QueryPattern:
    """The pattern produced by Initiate(τk): one node, no edges."""
    schema.node_type(type_name)
    node = PatternNode(key=type_name, type_name=type_name)
    return QueryPattern(primary_key=type_name, nodes=(node,))
