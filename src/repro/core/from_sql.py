"""SQL join query → ETable query (the Section 8 expressiveness argument).

The paper shows that any FK–PK join query over a schema satisfying the
Appendix A assumptions translates into an equivalent ETable query in three
steps:

1. the FROM list and join conditions become node types joined by edge types
   (junction and multivalued-attribute tables fold into edges/value nodes);
2. the WHERE selection conditions attach to the matching node types;
3. the GROUP BY attribute (if any) picks the primary node type — otherwise
   one is chosen arbitrarily (we pick the first entity in the FROM list).

The resulting pattern can be executed on the typed graph database and —
modulo presentation — returns the same information as the SQL query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import TranslationError
from repro.relational.database import Database
from repro.relational.sql.ast_nodes import (
    AndNode,
    BinaryNode,
    ColumnNode,
    ExprNode,
    InListNode,
    LikeNode,
    LiteralNode,
    NotNode,
    OrNode,
    SelectStatement,
)
from repro.relational.sql.parser import parse_select
from repro.relational.sql.planner import split_conjuncts
from repro.tgm.conditions import (
    AttributeCompare,
    AttributeIn,
    AttributeLike,
    Condition,
    NotCondition,
    OrCondition,
)
from repro.tgm.schema_graph import SchemaGraph
from repro.translate.schema_translator import TranslationMap
from repro.core.query_pattern import PatternEdge, PatternNode, QueryPattern


@dataclass
class _EdgeIndex:
    """Reverse lookups from relational artifacts to schema edge types."""

    fk: dict[tuple[str, str], str] = field(default_factory=dict)
    junction: dict[str, dict[str, str]] = field(default_factory=dict)
    attr_table: dict[str, dict[str, str]] = field(default_factory=dict)

    @classmethod
    def build(cls, mapping: TranslationMap) -> "_EdgeIndex":
        index = cls()
        for name, entry in mapping.edges.items():
            if entry.kind == "fk_forward":
                index.fk[(entry.data["owner_table"], entry.data["fk_column"])] = name
            elif entry.kind == "mn_forward":
                index.junction[entry.data["junction_table"]] = {
                    "edge": name, **entry.data
                }
            elif entry.kind == "mv_forward":
                index.attr_table[entry.data["attr_table"]] = {
                    "edge": name, **entry.data
                }
        return index


def sql_to_pattern(
    sql: str,
    database: Database,
    schema: SchemaGraph,
    mapping: TranslationMap,
) -> QueryPattern:
    """Translate one FK–PK join SELECT into an ETable query pattern."""
    statement = parse_select(sql)
    return statement_to_pattern(statement, database, schema, mapping)


def statement_to_pattern(
    statement: SelectStatement,
    database: Database,
    schema: SchemaGraph,
    mapping: TranslationMap,
) -> QueryPattern:
    index = _EdgeIndex.build(mapping)
    refs = list(statement.from_tables) + [j.table for j in statement.joins]

    # Classify every FROM item.
    alias_to_table: dict[str, str] = {}
    entity_aliases: list[str] = []
    junction_aliases: list[str] = []
    attr_aliases: list[str] = []
    for ref in refs:
        alias = ref.qualifier
        if alias in alias_to_table:
            raise TranslationError(f"duplicate alias {alias!r}")
        alias_to_table[alias] = ref.name
        if ref.name in mapping.entity_table_to_node_type:
            entity_aliases.append(alias)
        elif ref.name in index.junction:
            junction_aliases.append(alias)
        elif ref.name in index.attr_table:
            attr_aliases.append(alias)
        else:
            raise TranslationError(
                f"table {ref.name!r} is not part of the translated schema"
            )
    if not entity_aliases and not attr_aliases:
        raise TranslationError("the query references no entity relations")

    conjuncts: list[ExprNode] = split_conjuncts(statement.where)
    for join in statement.joins:
        conjuncts.extend(split_conjuncts(join.condition))

    equalities: list[tuple[str, str, str, str]] = []  # (alias_a, col_a, alias_b, col_b)
    residual: list[ExprNode] = []
    for conjunct in conjuncts:
        pair = _column_equality(conjunct)
        if pair is not None:
            left, right = pair
            equalities.append((left.qualifier or _sole(alias_to_table, left),
                               left.name,
                               right.qualifier or _sole(alias_to_table, right),
                               right.name))
        else:
            residual.append(conjunct)

    builder = _PatternBuilder(alias_to_table, mapping, index, database)
    for alias in entity_aliases:
        builder.ensure_entity_node(alias)
    for alias, column, other_alias, other_column in _fk_equalities(
        equalities, alias_to_table, junction_aliases, attr_aliases, index
    ):
        builder.link_fk(alias, column, other_alias, other_column)
    for alias in junction_aliases:
        builder.link_junction(alias, equalities)
    for alias in attr_aliases:
        builder.link_attr_table(alias, equalities)

    for conjunct in residual:
        alias, condition = _convert_condition(conjunct, alias_to_table, builder)
        builder.add_condition(alias, condition)

    primary = _choose_primary(statement, builder, entity_aliases, attr_aliases)
    return builder.build(primary)


def _sole(alias_to_table: dict[str, str], column: ColumnNode) -> str:
    raise TranslationError(
        f"column {column.name!r} must be table-qualified in a join query"
    )


def _column_equality(node: ExprNode) -> tuple[ColumnNode, ColumnNode] | None:
    if (
        isinstance(node, BinaryNode)
        and node.op == "="
        and isinstance(node.left, ColumnNode)
        and isinstance(node.right, ColumnNode)
    ):
        return node.left, node.right
    return None


def _fk_equalities(
    equalities: list[tuple[str, str, str, str]],
    alias_to_table: dict[str, str],
    junction_aliases: list[str],
    attr_aliases: list[str],
    index: _EdgeIndex,
) -> list[tuple[str, str, str, str]]:
    """Equality pairs that are plain FK joins between two entity aliases."""
    special = set(junction_aliases) | set(attr_aliases)
    out = []
    for alias_a, col_a, alias_b, col_b in equalities:
        if alias_a in special or alias_b in special:
            continue
        out.append((alias_a, col_a, alias_b, col_b))
    return out


class _PatternBuilder:
    def __init__(
        self,
        alias_to_table: dict[str, str],
        mapping: TranslationMap,
        index: _EdgeIndex,
        database: Database,
    ) -> None:
        self.alias_to_table = alias_to_table
        self.mapping = mapping
        self.index = index
        self.database = database
        self.nodes: dict[str, PatternNode] = {}
        self.edges: list[PatternEdge] = []
        self.conditions: dict[str, list[Condition]] = {}

    def ensure_entity_node(self, alias: str) -> None:
        if alias in self.nodes:
            return
        table = self.alias_to_table[alias]
        type_name = self.mapping.entity_table_to_node_type[table]
        self.nodes[alias] = PatternNode(key=alias, type_name=type_name)
        self.conditions.setdefault(alias, [])

    def link_fk(
        self, alias_a: str, col_a: str, alias_b: str, col_b: str
    ) -> None:
        table_a = self.alias_to_table[alias_a]
        table_b = self.alias_to_table[alias_b]
        if (table_a, col_a) in self.index.fk:
            owner_alias, ref_alias = alias_a, alias_b
            edge = self.index.fk[(table_a, col_a)]
        elif (table_b, col_b) in self.index.fk:
            owner_alias, ref_alias = alias_b, alias_a
            edge = self.index.fk[(table_b, col_b)]
        else:
            raise TranslationError(
                f"equality {alias_a}.{col_a} = {alias_b}.{col_b} does not "
                "follow a declared foreign key"
            )
        self.edges.append(
            PatternEdge(edge_type=edge, source_key=owner_alias,
                        target_key=ref_alias)
        )

    def link_junction(
        self, alias: str, equalities: list[tuple[str, str, str, str]]
    ) -> None:
        info = self.index.junction[self.alias_to_table[alias]]
        source_alias = target_alias = None
        for alias_a, col_a, alias_b, col_b in equalities:
            for junction_alias, junction_col, other_alias in (
                (alias_a, col_a, alias_b), (alias_b, col_b, alias_a)
            ):
                if junction_alias != alias:
                    continue
                if junction_col == info["source_fk"]:
                    source_alias = other_alias
                elif junction_col == info["target_fk"]:
                    target_alias = other_alias
        if source_alias is None or target_alias is None:
            raise TranslationError(
                f"junction {alias!r} must join both of its foreign keys"
            )
        self.edges.append(
            PatternEdge(
                edge_type=info["edge"],
                source_key=source_alias,
                target_key=target_alias,
            )
        )

    def link_attr_table(
        self, alias: str, equalities: list[tuple[str, str, str, str]]
    ) -> None:
        info = self.index.attr_table[self.alias_to_table[alias]]
        owner_alias = None
        for alias_a, col_a, alias_b, col_b in equalities:
            for attr_alias, attr_col, other_alias in (
                (alias_a, col_a, alias_b), (alias_b, col_b, alias_a)
            ):
                if attr_alias == alias and attr_col == info["owner_fk"]:
                    owner_alias = other_alias
        if owner_alias is None:
            raise TranslationError(
                f"multivalued table {alias!r} must join its owner foreign key"
            )
        type_name = f"{self.alias_to_table[alias]}: {info['value_column']}"
        self.nodes[alias] = PatternNode(key=alias, type_name=type_name)
        self.conditions.setdefault(alias, [])
        self.edges.append(
            PatternEdge(
                edge_type=info["edge"],
                source_key=owner_alias,
                target_key=alias,
            )
        )

    def add_condition(self, alias: str, condition: Condition) -> None:
        if alias not in self.nodes:
            raise TranslationError(
                f"condition references alias {alias!r} which is not an "
                "entity or multivalued relation"
            )
        self.conditions[alias].append(condition)

    def attr_value_column(self, alias: str) -> str | None:
        table = self.alias_to_table.get(alias)
        info = self.index.attr_table.get(table or "")
        return info["value_column"] if info else None

    def build(self, primary: str) -> QueryPattern:
        nodes = tuple(
            PatternNode(
                key=node.key,
                type_name=node.type_name,
                conditions=tuple(self.conditions.get(node.key, [])),
            )
            for node in self.nodes.values()
        )
        return QueryPattern(
            primary_key=primary, nodes=nodes, edges=tuple(self.edges)
        )


def _convert_condition(
    node: ExprNode,
    alias_to_table: dict[str, str],
    builder: _PatternBuilder,
) -> tuple[str, Condition]:
    """AST condition → (alias, TGM condition)."""
    if isinstance(node, BinaryNode):
        column, value = _column_and_literal(node)
        alias = _require_alias(column, alias_to_table)
        attribute = _attribute_for(builder, alias, column.name)
        return alias, AttributeCompare(attribute, node.op, value)
    if isinstance(node, LikeNode):
        if not isinstance(node.operand, ColumnNode):
            raise TranslationError("LIKE must apply to a column")
        alias = _require_alias(node.operand, alias_to_table)
        attribute = _attribute_for(builder, alias, node.operand.name)
        return alias, AttributeLike(attribute, node.pattern, node.negate)
    if isinstance(node, InListNode):
        if not isinstance(node.operand, ColumnNode):
            raise TranslationError("IN must apply to a column")
        alias = _require_alias(node.operand, alias_to_table)
        attribute = _attribute_for(builder, alias, node.operand.name)
        condition: Condition = AttributeIn(attribute, node.values)
        if node.negate:
            condition = NotCondition(condition)
        return alias, condition
    if isinstance(node, NotNode):
        alias, inner = _convert_condition(node.operand, alias_to_table, builder)
        return alias, NotCondition(inner)
    if isinstance(node, (OrNode, AndNode)):
        converted = [
            _convert_condition(operand, alias_to_table, builder)
            for operand in node.operands
        ]
        aliases = {alias for alias, _ in converted}
        if len(aliases) != 1:
            raise TranslationError(
                "OR/AND groups must reference a single relation to map onto "
                "one node type's conditions"
            )
        alias = next(iter(aliases))
        if isinstance(node, OrNode):
            return alias, OrCondition(tuple(c for _, c in converted))
        # Plain conjunction: fold into one And via multiple conditions.
        from repro.tgm.conditions import AndCondition

        return alias, AndCondition(tuple(c for _, c in converted))
    raise TranslationError(
        f"cannot translate condition {type(node).__name__} to an ETable query"
    )


def _column_and_literal(node: BinaryNode) -> tuple[ColumnNode, Any]:
    if isinstance(node.left, ColumnNode) and isinstance(node.right, LiteralNode):
        return node.left, node.right.value
    if isinstance(node.right, ColumnNode) and isinstance(node.left, LiteralNode):
        # Normalize ``literal op column`` by flipping the comparison.
        flips = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}
        flipped = BinaryNode(flips[node.op], node.right, node.left)
        return flipped.left, node.left.value  # type: ignore[union-attr]
    raise TranslationError(
        "selection conditions must compare a column with a literal"
    )


def _require_alias(column: ColumnNode, alias_to_table: dict[str, str]) -> str:
    if column.qualifier is None:
        matches = [
            alias
            for alias in alias_to_table
            if True  # unqualified columns are resolved by the caller's schema
        ]
        raise TranslationError(
            f"column {column.name!r} must be table-qualified "
            f"(candidates: {sorted(matches)!r})"
        )
    return column.qualifier


def _attribute_for(builder: _PatternBuilder, alias: str, column: str) -> str:
    """Multivalued aliases expose their value column as the node attribute."""
    value_column = builder.attr_value_column(alias)
    if value_column is not None and column == value_column:
        return value_column
    return column


def _choose_primary(
    statement: SelectStatement,
    builder: _PatternBuilder,
    entity_aliases: list[str],
    attr_aliases: list[str],
) -> str:
    if statement.group_by:
        expr = statement.group_by[0]
        if isinstance(expr, ColumnNode) and expr.qualifier in builder.nodes:
            return expr.qualifier
        raise TranslationError(
            "GROUP BY must reference a joined relation's key to choose the "
            "primary node type"
        )
    for alias in entity_aliases + attr_aliases:
        if alias in builder.nodes:
            return alias
    raise TranslationError("no candidate primary node type")  # pragma: no cover
