"""Executing ETable queries through the relational engine (Section 6.2).

The paper's server translates a query pattern into SQL and notes: "To
efficiently perform queries, we partition a long SQL query into multiple
queries consisting of a fewer number of relations to be joined (i.e., each
for a single entity-reference column) and merge them." Both strategies are
implemented here:

* **monolithic** — one big join with ``ENT_LIST`` aggregates and a GROUP BY
  on the primary key (the Section 8 general pattern, verbatim);
* **partitioned** — one row-set query plus one two-column query per
  entity-reference column. Each per-column query joins only the pattern
  *path* from the primary to that column's node; subtrees hanging off the
  path are preserved as semijoin ``EXISTS`` clauses so the strategy returns
  exactly the same cells as the monolithic query (Yannakakis-style tree
  reduction).

Both produce a :class:`PatternSqlResult`, comparable with the pure-graph
execution via :func:`graph_result_summary` — the cross-validation used by
the integration tests and the ablation bench.

Both strategies run on any :class:`~repro.relational.backends.SqlBackend`
via their ``backend`` argument (an instance, or a registry name such as
``"sqlite"``); the default is the in-memory engine, byte-compatible with
the pre-backend behaviour. Emitted SQL is adapted to the backend's dialect
with :func:`repro.core.sql_translation.adapt_sql`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import EtableError
from repro.relational.backends import (
    MemoryBackend,
    SqlBackend,
    backend_class,
    create_backend,
)
from repro.relational.database import Database
from repro.tgm.instance_graph import InstanceGraph
from repro.tgm.schema_graph import SchemaGraph
from repro.translate.schema_translator import TranslationMap
from repro.core.etable import ColumnKind, ETable
from repro.core.query_pattern import PatternEdge, QueryPattern
from repro.core.sql_translation import (
    _Translator,
    adapt_sql,
    correlate_pattern_edge,
    pattern_to_sql,
)
from repro.core.transform import execute_pattern

BackendSpec = SqlBackend | str | None


def _resolve_backend(backend: BackendSpec, database: Database) -> SqlBackend:
    """Normalize the ``backend`` argument of the execution strategies.

    ``None`` keeps the historical behaviour (the in-memory engine); a string
    instantiates a registered backend and loads ``database`` into it; an
    instance is used as-is (loading it on first use). Passing a backend
    already loaded with a *different* database is almost certainly a bug, so
    it is rejected rather than silently cross-queried.
    """
    if backend is None:
        return MemoryBackend(database)
    if isinstance(backend, str):
        return create_backend(backend, database)
    if not backend.is_loaded:
        backend.load(database)
    elif backend.database is not database:
        raise EtableError(
            f"backend {backend.name!r} is loaded with a different Database "
            f"instance ({backend.database.name!r}); pass that database, or "
            f"reload the backend with load({database.name!r})"
        )
    return backend


def _dialect_of(backend: BackendSpec) -> str:
    if backend is None:
        return "memory"
    if isinstance(backend, str):
        return backend_class(backend).capabilities.dialect
    return backend.capabilities.dialect


@dataclass
class PatternSqlResult:
    """Execution result in a representation-independent shape.

    ``primary_keys`` are relational keys (not graph node ids) so results
    from SQL and graph execution can be compared directly. ``cells`` maps
    primary key → participating pattern key → frozenset of related keys.
    """

    primary_keys: list[Any]
    cells: dict[Any, dict[str, frozenset]]
    queries: list[str] = field(default_factory=list)

    def as_comparable(self) -> dict[Any, dict[str, frozenset]]:
        return self.cells

    def key_set(self) -> frozenset:
        return frozenset(self.primary_keys)


def execute_monolithic(
    database: Database,
    pattern: QueryPattern,
    schema: SchemaGraph,
    mapping: TranslationMap,
    graph: InstanceGraph | None = None,
    backend: BackendSpec = None,
) -> PatternSqlResult:
    """Run the single-query strategy on ``backend`` (default: in-memory)."""
    engine = _resolve_backend(backend, database)
    try:
        if not engine.capabilities.ent_list:
            raise EtableError(
                f"backend {engine.name!r} has no ENT_LIST aggregate; use "
                "the partitioned strategy"
            )
        translation = pattern_to_sql(pattern, schema, mapping, graph)
        sql = adapt_sql(translation.sql, engine.capabilities.dialect)
        relation = engine.execute(sql)
    finally:
        if engine is not backend:  # a one-shot engine we created: clean up
            engine.close()
    key_position = relation.column_position(translation.primary_key_alias)
    ref_positions = {
        key: relation.column_position(output)
        for key, output in translation.participating_aliases.items()
    }
    primary_keys: list[Any] = []
    cells: dict[Any, dict[str, frozenset]] = {}
    for row in relation.rows:
        primary = row[key_position]
        primary_keys.append(primary)
        cells[primary] = {
            key: frozenset(row[position])
            for key, position in ref_positions.items()
        }
    return PatternSqlResult(primary_keys, cells, queries=[sql])


def execute_partitioned(
    database: Database,
    pattern: QueryPattern,
    schema: SchemaGraph,
    mapping: TranslationMap,
    graph: InstanceGraph | None = None,
    backend: BackendSpec = None,
) -> PatternSqlResult:
    """Run the per-column strategy of Section 6.2 on ``backend``."""
    engine = _resolve_backend(backend, database)
    try:
        queries = build_partitioned_queries(pattern, schema, mapping, graph,
                                            backend=engine)
        row_relation = engine.execute(queries.row_sql)
        key_position = row_relation.column_position("etable_key")
        primary_keys = [row[key_position] for row in row_relation.rows]
        key_set = set(primary_keys)
        cells: dict[Any, dict[str, frozenset]] = {
            key: {} for key in primary_keys
        }
        executed = [queries.row_sql]
        for participating_key, column_sql in queries.column_sql.items():
            relation = engine.execute(column_sql)
            primary_position = relation.column_position("etable_key")
            ref_position = relation.column_position("ref")
            collected: dict[Any, set] = {}
            for row in relation.rows:
                primary = row[primary_position]
                if primary not in key_set:
                    continue  # pragma: no cover - semijoins prevent this
                collected.setdefault(primary, set()).add(row[ref_position])
            for key in primary_keys:
                cells[key][participating_key] = frozenset(
                    collected.get(key, ())
                )
            executed.append(column_sql)
    finally:
        if engine is not backend:  # a one-shot engine we created: clean up
            engine.close()
    return PatternSqlResult(primary_keys, cells, queries=executed)


@dataclass
class PartitionedQueries:
    row_sql: str
    column_sql: dict[str, str]


def build_partitioned_queries(
    pattern: QueryPattern,
    schema: SchemaGraph,
    mapping: TranslationMap,
    graph: InstanceGraph | None = None,
    backend: BackendSpec = None,
) -> PartitionedQueries:
    """Emit the row-set query and one query per entity-reference column.

    When ``backend`` is given (instance or registry name) the emitted SQL is
    adapted to that backend's dialect; the default is the canonical memory
    dialect, byte-identical to what this function always produced.
    """
    dialect = _dialect_of(backend)
    base = _Translator(pattern, schema, mapping, graph)
    translation = base.translate()
    primary_expr = base.bindings[pattern.primary_key].key_expr
    from_clause = ", ".join(f"{t} {a}" for t, a in translation.from_items)
    row_sql = f"SELECT DISTINCT {primary_expr} AS etable_key FROM {from_clause}"
    if translation.conditions:
        row_sql += f" WHERE {' AND '.join(translation.conditions)}"

    parents = _parent_map(pattern)
    column_sql: dict[str, str] = {}
    for offset, participating_key in enumerate(pattern.participating_keys):
        column_sql[participating_key] = adapt_sql(_column_query(
            pattern, schema, mapping, graph, parents, participating_key,
            alias_offset=(offset + 1) * 200,
        ), dialect)
    return PartitionedQueries(adapt_sql(row_sql, dialect), column_sql)


def _parent_map(pattern: QueryPattern) -> dict[str, tuple[str, PatternEdge] | None]:
    parents: dict[str, tuple[str, PatternEdge] | None] = {
        pattern.primary_key: None
    }
    for key, edge in pattern.traversal_order():
        if edge is None:
            continue
        other = edge.source_key if edge.target_key == key else edge.target_key
        parents[key] = (other, edge)
    return parents


def _path_to_primary(
    parents: dict[str, tuple[str, PatternEdge] | None], key: str
) -> tuple[list[str], list[PatternEdge]]:
    nodes = [key]
    edges: list[PatternEdge] = []
    current = key
    while parents[current] is not None:
        parent, edge = parents[current]  # type: ignore[misc]
        nodes.append(parent)
        edges.append(edge)
        current = parent
    nodes.reverse()
    edges.reverse()
    return nodes, edges


def _column_query(
    pattern: QueryPattern,
    schema: SchemaGraph,
    mapping: TranslationMap,
    graph: InstanceGraph | None,
    parents: dict[str, tuple[str, PatternEdge] | None],
    participating_key: str,
    alias_offset: int,
) -> str:
    path_nodes, path_edges = _path_to_primary(parents, participating_key)
    chain = QueryPattern(
        primary_key=pattern.primary_key,
        nodes=tuple(pattern.node(key) for key in path_nodes),
        edges=tuple(path_edges),
    )
    translator = _Translator(chain, schema, mapping, graph)
    translator._alias_counter = alias_offset
    translation = translator.translate()

    # Semijoin-reduce every path node by its hanging subtrees.
    on_path = set(path_nodes)
    exists_offset = alias_offset + 50
    for path_key in path_nodes:
        for edge in pattern.edges_touching(path_key):
            other = (
                edge.target_key
                if edge.source_key == path_key
                else edge.source_key
            )
            if other in on_path:
                continue
            clause = _subtree_exists(
                pattern, schema, mapping, graph, path_key,
                translator.bindings[path_key], edge, other, exists_offset,
            )
            translator.conditions.append(clause)
            exists_offset += 50

    primary_expr = translator.bindings[pattern.primary_key].key_expr
    ref_expr = translator.bindings[participating_key].key_expr
    from_clause = ", ".join(f"{t} {a}" for t, a in translator.from_items)
    sql = (
        f"SELECT DISTINCT {primary_expr} AS etable_key, {ref_expr} AS ref "
        f"FROM {from_clause}"
    )
    if translator.conditions:
        sql += f" WHERE {' AND '.join(translator.conditions)}"
    return sql


def _subtree_exists(
    pattern: QueryPattern,
    schema: SchemaGraph,
    mapping: TranslationMap,
    graph: InstanceGraph | None,
    outer_key: str,
    outer_binding,
    edge: PatternEdge,
    subtree_root: str,
    alias_offset: int,
) -> str:
    subtree_keys = _collect_subtree(pattern, subtree_root, avoid=outer_key)
    subtree = QueryPattern(
        primary_key=subtree_root,
        nodes=tuple(pattern.node(key) for key in subtree_keys),
        edges=tuple(
            pattern_edge
            for pattern_edge in pattern.edges
            if pattern_edge.source_key in subtree_keys
            and pattern_edge.target_key in subtree_keys
        ),
    )
    sub = _Translator(subtree, schema, mapping, graph)
    sub._alias_counter = alias_offset
    sub_translation = sub.translate()
    entry = mapping.edges[edge.edge_type]
    correlation = correlate_pattern_edge(
        edge, entry.kind, entry.data, outer_key, outer_binding,
        sub.bindings[subtree_root], sub,
    )
    from_clause = ", ".join(f"{t} {a}" for t, a in sub.from_items)
    conditions = sub_translation.conditions + correlation
    return (
        f"EXISTS (SELECT 1 FROM {from_clause} "
        f"WHERE {' AND '.join(conditions)})"
    )


def _collect_subtree(pattern: QueryPattern, root: str, avoid: str) -> list[str]:
    seen = [root]
    frontier = [root]
    while frontier:
        current = frontier.pop()
        for edge in pattern.edges_touching(current):
            other = (
                edge.target_key
                if edge.source_key == current
                else edge.source_key
            )
            if other == avoid or other in seen:
                continue
            seen.append(other)
            frontier.append(other)
    return seen


def graph_result_summary(
    source: ETable | QueryPattern,
    graph: InstanceGraph | None = None,
) -> PatternSqlResult:
    """The pure-graph execution, reshaped for comparison with SQL results.

    Accepts an executed :class:`ETable` or a pattern (which is executed).
    Keys are the nodes' relational source keys.
    """
    if isinstance(source, QueryPattern):
        if graph is None:
            raise EtableError("graph_result_summary(pattern) needs the graph")
        etable = execute_pattern(source, graph)
    else:
        etable = source
    graph = etable.graph
    participating = [
        column.key for column in etable.participating_columns()
    ]
    primary_keys: list[Any] = []
    cells: dict[Any, dict[str, frozenset]] = {}
    for row in etable.rows:
        key = graph.node(row.node_id).source_key
        primary_keys.append(key)
        cells[key] = {
            column_key: frozenset(
                graph.node(ref.node_id).source_key
                for ref in row.refs(column_key)
            )
            for column_key in participating
        }
    return PatternSqlResult(primary_keys, cells)


def results_equal(left: PatternSqlResult, right: PatternSqlResult) -> bool:
    """Order-insensitive equality of rows and cells."""
    return left.key_set() == right.key_set() and left.cells == right.cells
