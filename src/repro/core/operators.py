"""The four primitive operators of Section 5.3.

Every ETable query is built by chaining these operators:

* ``initiate(τk)``          — start a fresh single-node pattern;
* ``select(Ck, Q)``         — add a selection condition to the primary node;
* ``add(ρk, Q)``            — join a new node type reachable from the primary
                              via edge type ρk; the primary shifts to it
                              (this matches the P2→P8 trace of Figure 7);
* ``shift(τk, Q)``          — re-focus the primary on another participating
                              pattern node ("represent the current join
                              result from a different angle").

The user-level actions of Section 6.1 (:mod:`repro.core.actions`) compile
down to these operators, exactly as Figure 7 illustrates.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import InvalidOperator
from repro.tgm.conditions import Condition
from repro.tgm.schema_graph import SchemaGraph
from repro.core.query_pattern import (
    PatternEdge,
    PatternNode,
    QueryPattern,
    single_node_pattern,
)


def initiate(schema: SchemaGraph, type_name: str) -> QueryPattern:
    """``Initiate(τk)``: a new pattern listing all nodes of one type."""
    return single_node_pattern(schema, type_name)


def select(
    pattern: QueryPattern,
    condition: Condition | Iterable[Condition],
    replace_existing: bool = False,
) -> QueryPattern:
    """``Select(Ck, Q)``: filter the rows of the current ETable.

    The condition applies to the *primary* pattern node. By default the new
    predicate is conjoined with existing ones (the paper's UI accumulates
    filters, cf. the history in Figure 1); ``replace_existing=True`` gives
    the literal Definition behaviour ``C'a = Ck``.
    """
    if isinstance(condition, Condition):
        conditions: Iterable[Condition] = (condition,)
    else:
        conditions = tuple(condition)
    return pattern.with_conditions(
        pattern.primary_key, conditions, replace_existing=replace_existing
    )


def add(
    pattern: QueryPattern, schema: SchemaGraph, edge_type_name: str
) -> QueryPattern:
    """``Add(ρk, Q)``: join a neighbor type and make it the new primary.

    Requires ``source(ρk)`` to be the current primary's node type — the UI
    only offers neighbor columns of the primary, so this is the only
    reachable case.
    """
    edge_type = schema.edge_type(edge_type_name)
    primary = pattern.primary
    if edge_type.source != primary.type_name:
        raise InvalidOperator(
            f"Add({edge_type_name!r}): edge source is {edge_type.source!r} "
            f"but the primary node type is {primary.type_name!r}"
        )
    new_key = pattern.fresh_key(edge_type.target)
    new_node = PatternNode(key=new_key, type_name=edge_type.target)
    new_edge = PatternEdge(
        edge_type=edge_type_name,
        source_key=primary.key,
        target_key=new_key,
    )
    return pattern.with_node(new_node, new_edge, new_primary=new_key)


def shift(pattern: QueryPattern, node_key: str) -> QueryPattern:
    """``Shift(τk, Q)``: change the primary to a participating node."""
    if not pattern.has_node(node_key):
        raise InvalidOperator(
            f"Shift({node_key!r}): not a participating pattern node "
            f"(have {[node.key for node in pattern.nodes]!r})"
        )
    return pattern.with_primary(node_key)
