"""The enriched table — ETable's presentation data model (Section 5.1).

An ETable has three kinds of columns (Section 5.4.2):

* base-attribute columns ``Ab`` — scalar attributes of the primary type;
* participating node columns ``At`` — one per non-primary pattern node,
  holding the entity references that co-occur with the row in the matched
  graph relation;
* neighbor node columns ``Ah`` — one per schema edge type leaving the
  primary type (regardless of the pattern), holding direct neighbors. They
  both describe each row and *preview every possible next join*.

Cells of the last two kinds hold ordered sets of :class:`EntityRef` —
clickable labels, like hyperlinks, plus the reference count badge shown in
the corner of each cell in Figure 1.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import InvalidAction
from repro.tgm.instance_graph import InstanceGraph, Node
from repro.core.query_pattern import QueryPattern


class ColumnKind(enum.Enum):
    BASE = "base attribute"
    PARTICIPATING = "participating node"
    NEIGHBOR = "neighbor node"


@dataclass(frozen=True)
class EntityRef:
    """A reference to another entity, displayed by its label (Section 5.1)."""

    node_id: int
    type_name: str
    label: Any

    def __str__(self) -> str:
        return str(self.label)


@dataclass(frozen=True)
class ColumnSpec:
    """One ETable column.

    ``key`` identifies what the column is bound to: the attribute name for
    base columns, the pattern-node key for participating columns, and the
    schema edge-type name for neighbor columns. ``display`` is the header
    text shown to users.
    """

    kind: ColumnKind
    key: str
    display: str
    type_name: str | None = None  # referenced entity type for ref columns


@dataclass
class ETableRow:
    """One row: a primary entity, its attributes, and its reference cells."""

    node_id: int
    attributes: dict[str, Any]
    cells: dict[str, list[EntityRef]] = field(default_factory=dict)

    def refs(self, column_key: str) -> list[EntityRef]:
        return self.cells.get(column_key, [])

    def ref_count(self, column_key: str) -> int:
        return len(self.cells.get(column_key, []))


class ETable:
    """A materialized enriched table plus light presentation state.

    Presentation state (sort order, hidden columns) lives here because the
    paper's Sort and Hide actions operate on the current result without
    changing the query pattern.
    """

    def __init__(
        self,
        pattern: QueryPattern,
        columns: list[ColumnSpec],
        rows: list[ETableRow],
        graph: InstanceGraph,
    ) -> None:
        self.pattern = pattern
        self.columns = columns
        self.rows = rows
        self.graph = graph
        self.hidden_columns: set[str] = set()
        self._by_key: dict[str, ColumnSpec] = {}
        for column in columns:
            # Keys are unique across kinds by construction: attribute names,
            # pattern keys, and edge-type names never collide (edge types
            # embed '->' and pattern keys are type names or 'Type#n').
            self._by_key[column.key] = column
        # Row lookup indexes, built lazily (rows may be appended right after
        # construction, e.g. by the set operations) and rebuilt when the row
        # list changes size; the attribute index is order-sensitive (it maps
        # to the *first* row in display order) so sorting invalidates it.
        self._row_by_node: dict[int, ETableRow] | None = None
        self._attr_rows: dict[str, dict[Any, ETableRow]] = {}
        self._attr_rows_size = len(rows)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rows)

    @property
    def primary_type(self) -> str:
        return self.pattern.primary.type_name

    def column(self, key: str) -> ColumnSpec:
        try:
            return self._by_key[key]
        except KeyError:
            raise InvalidAction(f"no ETable column with key {key!r}") from None

    def column_by_display(self, display: str) -> ColumnSpec:
        """Find a column by its header text (what a user clicks on).

        When a participating column and an auto-hidden neighbor column share
        a title (they present the same relationship), the visible one wins;
        among equally visible matches the participating column wins — it is
        the one the pattern actually joins.
        """
        matches = [c for c in self.columns if c.display == display]
        if not matches:
            raise InvalidAction(f"no ETable column titled {display!r}")
        if len(matches) == 1:
            return matches[0]
        visible = [c for c in matches if c.key not in self.hidden_columns]
        if len(visible) == 1:
            return visible[0]
        pool = visible or matches
        participating = [c for c in pool if c.kind is ColumnKind.PARTICIPATING]
        if len(participating) == 1:
            return participating[0]
        raise InvalidAction(f"column title {display!r} is ambiguous; use its key")

    def visible_columns(self) -> list[ColumnSpec]:
        return [c for c in self.columns if c.key not in self.hidden_columns]

    def base_columns(self) -> list[ColumnSpec]:
        return [c for c in self.columns if c.kind is ColumnKind.BASE]

    def participating_columns(self) -> list[ColumnSpec]:
        return [c for c in self.columns if c.kind is ColumnKind.PARTICIPATING]

    def neighbor_columns(self) -> list[ColumnSpec]:
        return [c for c in self.columns if c.kind is ColumnKind.NEIGHBOR]

    def row(self, index: int) -> ETableRow:
        try:
            return self.rows[index]
        except IndexError:
            raise InvalidAction(
                f"row index {index} out of range (0..{len(self.rows) - 1})"
            ) from None

    def row_for_node(self, node_id: int) -> ETableRow:
        """O(1) row lookup by primary node id (hash index, built lazily)."""
        index = self._row_by_node
        if index is None or len(index) != len(self.rows):
            index = {row.node_id: row for row in self.rows}
            self._row_by_node = index
        row = index.get(node_id)
        if row is None:
            raise InvalidAction(f"no ETable row for node id {node_id}")
        return row

    def find_row_by_attribute(self, attribute: str, value: Any) -> ETableRow:
        """First row whose base attribute equals ``value`` (test helper and
        the programmatic stand-in for 'the row the user is looking at').

        Backed by a lazily-built per-attribute hash index mapping each value
        to its first row in display order. Because ``ETableRow.attributes``
        is a public mutable dict, index hits are verified against the live
        value and misses fall back to an authoritative scan (which also
        drops the stale index) — only failing or post-mutation lookups pay
        the O(n) cost.
        """
        row: ETableRow | None = None
        try:
            if self._attr_rows_size != len(self.rows):
                self._attr_rows.clear()
                self._attr_rows_size = len(self.rows)
            index = self._attr_rows.get(attribute)
            if index is None:
                index = {}
                for candidate in self.rows:
                    index.setdefault(candidate.attributes.get(attribute),
                                     candidate)
                self._attr_rows[attribute] = index
            row = index.get(value)
        except TypeError:  # unhashable attribute or probe value
            row = None
        if row is not None and row.attributes.get(attribute) == value:
            return row
        for candidate in self.rows:
            if candidate.attributes.get(attribute) == value:
                self._attr_rows.pop(attribute, None)  # index was stale
                return candidate
        raise InvalidAction(f"no row with {attribute!r} == {value!r}")

    def node_of(self, row: ETableRow) -> Node:
        return self.graph.node(row.node_id)

    # ------------------------------------------------------------------
    # Presentation operations (Sort / Hide — Section 6.1 "additional")
    # ------------------------------------------------------------------
    def sort(self, column_key: str, descending: bool = False) -> None:
        """Sort rows in place by a base value or by reference count.

        Sorting an entity-reference column orders by its count — the
        paper's history shows exactly this ("Sort table by # of Papers
        (referenced)", Figure 1).
        """
        column = self.column(column_key)
        if column.kind is ColumnKind.BASE:
            key: Callable[[ETableRow], Any] = lambda row: _sort_key(
                row.attributes.get(column.key)
            )
        else:
            key = lambda row: row.ref_count(column.key)
        self.rows.sort(key=key, reverse=descending)
        # The attribute index maps values to their *first* row in display
        # order, which just changed.
        self._attr_rows.clear()

    def hide_column(self, column_key: str) -> None:
        self.column(column_key)
        self.hidden_columns.add(column_key)

    def show_column(self, column_key: str) -> None:
        self.hidden_columns.discard(column_key)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def page_rows(self, offset: int = 0,
                  limit: int | None = None) -> list[ETableRow]:
        """One page of rows in display order (the interface paginates;
        matching is complete, so ``len(self)`` stays the true row count).

        Used by the wire protocol's paginated serializer; offsets past the
        end return an empty page rather than raising, like any cursor.
        """
        if offset < 0:
            raise InvalidAction(f"page offset must be >= 0, got {offset}")
        if limit is not None and limit < 0:
            raise InvalidAction(f"page limit must be >= 0, got {limit}")
        rows = self.rows[offset:]
        if limit is not None:
            rows = rows[:limit]
        return rows

    def to_dicts(self, labels: bool = True) -> list[dict[str, Any]]:
        """Rows as plain dictionaries; reference cells become label lists."""
        out: list[dict[str, Any]] = []
        for row in self.rows:
            item: dict[str, Any] = dict(row.attributes)
            for column in self.columns:
                if column.kind is ColumnKind.BASE:
                    continue
                refs = row.refs(column.key)
                item[column.display] = (
                    [ref.label for ref in refs]
                    if labels
                    else [ref.node_id for ref in refs]
                )
            out.append(item)
        return out


def _sort_key(value: Any) -> tuple[int, str, Any]:
    """A total order over heterogeneous cell values.

    Numbers sort before strings (each kind compared within itself), NULLs
    sort last — so a mixed-type base column never raises ``TypeError`` on
    an int/str comparison, and homogeneous columns keep their old order.
    """
    if value is None:
        return (2, "", 0)
    if isinstance(value, bool):
        return (0, "", int(value))
    if isinstance(value, (int, float)):
        return (0, "", value)
    return (1, str(value), 0)
