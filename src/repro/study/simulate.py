"""The within-subjects study protocol (Section 7.1).

Twelve simulated participants complete six tasks in each condition (ETable
and the Navicat-like builder). Condition order is counterbalanced — six
participants start with ETable, six with Navicat — and the two matched task
sets alternate between conditions across participants. A task is cut off at
300 seconds, recorded as 300 s, exactly as the study protocol specifies.

Each task's ETable solution script is executed once for real (validating
its answer against the ground-truth SQL); pricing is then per-participant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import StudyError
from repro.relational.database import Database
from repro.tgm.instance_graph import InstanceGraph
from repro.tgm.schema_graph import SchemaGraph
from repro.core.session import EtableSession
from repro.study.etable_user import TaskOutcome, simulate_etable_task
from repro.study.navicat_user import simulate_navicat_task
from repro.study.participants import Participant, generate_participants
from repro.study.stats import TaskStats, task_stats
from repro.study.tasks import (
    TaskSpec,
    UiStep,
    ground_truth_for,
    task_set_a,
    task_set_b,
)

ETABLE = "etable"
NAVICAT = "navicat"


@dataclass
class StudyConfig:
    participant_count: int = 12
    seed: int = 42


@dataclass
class PreparedTask:  # repro: noqa-RPA102 — in-process only, never pickled
    """A task with its ground truth, validated ETable script, and flat-join
    size, computed once per study run."""

    spec: TaskSpec
    ground_truth: frozenset
    etable_answer: frozenset
    etable_steps: list[UiStep]
    flat_rows: int

    @property
    def etable_correct(self) -> bool:
        return self.etable_answer == self.ground_truth


@dataclass
class StudyResult:
    participants: list[Participant]
    # (participant_id, condition, task_id) -> outcome
    outcomes: dict[tuple[int, str, int], TaskOutcome]
    per_task: list[TaskStats] = field(default_factory=list)

    def times(self, condition: str, task_id: int) -> list[float]:
        return [
            self.outcomes[(p.participant_id, condition, task_id)].seconds
            for p in self.participants
        ]

    def participant_speedup(self, participant_id: int) -> float:
        """Mean Navicat time / mean ETable time for one participant."""
        etable = [
            outcome.seconds
            for (pid, condition, _), outcome in self.outcomes.items()
            if pid == participant_id and condition == ETABLE
        ]
        navicat = [
            outcome.seconds
            for (pid, condition, _), outcome in self.outcomes.items()
            if pid == participant_id and condition == NAVICAT
        ]
        return (sum(navicat) / len(navicat)) / (sum(etable) / len(etable))

    def etable_success_rate(self, participant_id: int) -> float:
        outcomes = [
            outcome
            for (pid, condition, _), outcome in self.outcomes.items()
            if pid == participant_id and condition == ETABLE
        ]
        return sum(1 for o in outcomes if o.correct) / len(outcomes)


def prepare_tasks(
    database: Database,
    schema: SchemaGraph,
    graph: InstanceGraph,
) -> dict[str, list[PreparedTask]]:
    """Resolve ground truths and validate every ETable script, per task set."""
    prepared: dict[str, list[PreparedTask]] = {}
    for set_name, tasks in (("A", task_set_a()), ("B", task_set_b())):
        bundle: list[PreparedTask] = []
        for task in tasks:
            truth = ground_truth_for(database, task)
            session = EtableSession(schema, graph)
            answer, steps = task.etable_script(session)
            if answer != truth:
                raise StudyError(
                    f"task {task.task_id}{task.task_set}: the ETable script "
                    f"answer {sorted(map(str, answer))[:5]!r} does not match "
                    f"ground truth {sorted(map(str, truth))[:5]!r}"
                )
            bundle.append(
                PreparedTask(
                    spec=task,
                    ground_truth=truth,
                    etable_answer=answer,
                    etable_steps=steps,
                    flat_rows=task.flat_result_rows(database),
                )
            )
        prepared[set_name] = bundle
    return prepared


def run_study(
    database: Database,
    schema: SchemaGraph,
    graph: InstanceGraph,
    config: StudyConfig | None = None,
) -> StudyResult:
    """Execute the full within-subjects protocol."""
    config = config or StudyConfig()
    participants = generate_participants(config.participant_count, config.seed)
    prepared = prepare_tasks(database, schema, graph)

    outcomes: dict[tuple[int, str, int], TaskOutcome] = {}
    for index, participant in enumerate(participants):
        conditions = (
            (ETABLE, NAVICAT) if index % 2 == 0 else (NAVICAT, ETABLE)
        )
        # Alternate which matched set goes with the first condition.
        sets = ("A", "B") if (index // 2) % 2 == 0 else ("B", "A")
        for position, condition in enumerate(conditions):
            tasks = prepared[sets[position]]
            second = position == 1
            groupby_experience = False
            for task in tasks:
                if condition == ETABLE:
                    outcome = simulate_etable_task(
                        task.spec,
                        task.etable_steps,
                        task.etable_correct,
                        participant,
                        second_condition=second,
                    )
                else:
                    outcome = simulate_navicat_task(
                        task.spec,
                        task.flat_rows,
                        participant,
                        second_condition=second,
                        groupby_experience=groupby_experience,
                    )
                    if task.spec.has_group_by and outcome.correct:
                        groupby_experience = True
                outcomes[
                    (participant.participant_id, condition, task.spec.task_id)
                ] = outcome

    result = StudyResult(participants=participants, outcomes=outcomes)
    result.per_task = [
        task_stats(
            task_id,
            result.times(ETABLE, task_id),
            result.times(NAVICAT, task_id),
        )
        for task_id in range(1, 7)
    ]
    return result
