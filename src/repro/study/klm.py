"""A keystroke-level-model (KLM) interaction cost model.

The original study measured wall-clock task times of 12 human participants
(Section 7). Humans are not available to a reproduction, so we price
interface interactions with the classic Card–Moran–Newell keystroke-level
model operators, the standard first-order model of routine interaction:

    K — keystroke            ~0.28 s (average typist)
    P — point with mouse     ~1.10 s
    B — mouse button press   ~0.20 s
    H — home hands on device ~0.40 s
    M — mental preparation   ~1.35 s
    R — system response      (nominal three-tier round trip)

On top of raw mechanics, the user models add *deliberation*: time spent
deciding the next step and interpreting intermediate results. Deliberation
grows with schema complexity (number of relations involved) — the behaviour
the paper observed ("participants ... spend significant time in
interpreting intermediate results before applying the next operators").
"""

from __future__ import annotations

from dataclasses import dataclass

K_KEYSTROKE = 0.28
P_POINT = 1.10
B_BUTTON = 0.20
H_HOME = 0.40
M_MENTAL = 1.35
R_RESPONSE = 0.30  # nominal three-tier round trip per executed query


@dataclass(frozen=True)
class KlmProfile:
    """Per-participant scaling of the KLM constants.

    ``motor`` scales K/P/B/H (typing and pointing speed); ``mental`` scales
    M and all deliberation (experience and task familiarity).
    """

    motor: float = 1.0
    mental: float = 1.0

    def keystrokes(self, count: int) -> float:
        return self.motor * K_KEYSTROKE * count

    def point_click(self) -> float:
        return self.motor * (P_POINT + B_BUTTON)

    def home(self) -> float:
        return self.motor * H_HOME

    def think(self, units: float = 1.0) -> float:
        return self.mental * M_MENTAL * units

    def type_text(self, characters: int) -> float:
        """Home onto the keyboard, then type."""
        if characters <= 0:
            return 0.0
        return self.home() + self.keystrokes(characters)
