"""Simulated participants.

The paper recruited 12 graduate students who "had taken at least one
database course or had industry experience", self-rating their SQL skill at
an average of 4.67 on a 7-point scale, ranging from 3 to 6 (Section 7.1).
The generated population reproduces exactly that: skills are drawn from
{3, 4, 5, 6} with frequencies whose mean is 4.67, and each participant gets
individual motor/mental speed factors and a private random stream.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.study.klm import KlmProfile

# 12 skills with mean 4.67 and range 3..6, as reported by the paper:
# sum = 56 -> e.g. one 3, three 4s, seven 5s, one 6.
_SKILL_TEMPLATE = [3, 4, 4, 4, 5, 5, 5, 5, 5, 5, 5, 6]


@dataclass(frozen=True)
class Participant:
    participant_id: int
    sql_skill: int            # 3..6 Likert self-rating
    profile: KlmProfile
    seed: int

    @property
    def skill_fraction(self) -> float:
        """Skill mapped to [0, 1] over the 1..7 Likert range."""
        return (self.sql_skill - 1) / 6.0

    def rng(self, salt: str = "") -> random.Random:
        return random.Random(f"{self.seed}:{salt}")


def generate_participants(count: int = 12, seed: int = 42) -> list[Participant]:
    """The study population; deterministic for a fixed seed."""
    rng = random.Random(seed)
    skills = list(_SKILL_TEMPLATE)
    while len(skills) < count:
        skills.append(rng.choice(_SKILL_TEMPLATE))
    skills = skills[:count]
    rng.shuffle(skills)
    participants: list[Participant] = []
    for index in range(count):
        motor = max(0.6, rng.gauss(1.0, 0.10))
        mental = max(0.6, rng.gauss(1.0, 0.15))
        participants.append(
            Participant(
                participant_id=index + 1,
                sql_skill=skills[index],
                profile=KlmProfile(motor=motor, mental=mental),
                seed=rng.randrange(10**9),
            )
        )
    return participants


def mean_skill(participants: list[Participant]) -> float:
    return sum(p.sql_skill for p in participants) / len(participants)
