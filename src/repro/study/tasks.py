"""The user-study tasks (Table 2) in both matched sets.

Each task carries everything both simulated conditions need:

* a ground-truth SQL query (run on the relational engine);
* an ETable *solution script* — the action sequence a trained participant
  performs, which is executed against a real session and must produce the
  ground-truth answer (this is how the reproduction proves the tasks are
  actually solvable in ETable);
* the flat SQL a query-builder participant eventually writes, plus the
  feature counts (#relations, #joins, GROUP BY…) that drive the error and
  timing models.

Set A is Table 2 verbatim; set B is the matched set "differing only in their
specific values used for parameters" (Section 7.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import TaskDefinitionError
from repro.relational.database import Database
from repro.relational.sql.executor import execute_sql
from repro.tgm.conditions import AttributeCompare, AttributeLike
from repro.core.session import EtableSession


@dataclass(frozen=True)
class UiStep:
    """One interface-level step of a solution, priced by the KLM model."""

    kind: str            # open | filter | pivot | see_all | sort | read
    typed_chars: int = 0
    rows_to_read: int = 1


@dataclass
class TaskSpec:
    task_id: int
    task_set: str
    description: str
    category: str        # Attribute | Filter | Aggregate
    relations: int       # the "#Relations" column of Table 2
    ground_truth_sql: str
    flat_sql: str
    has_group_by: bool
    join_count: int
    predicate_count: int
    typed_chars: int     # characters a SQL user must type for literals
    etable_script: Callable[[EtableSession], tuple[frozenset, list[UiStep]]]
    # Superlative aggregates ("which X has the largest ...") need a
    # max-over-count, the hardest SQL concept in the study (Task 5).
    superlative: bool = False

    def ground_truth(self, database: Database) -> frozenset:
        relation = execute_sql(database, self.ground_truth_sql)
        answer = frozenset(row[0] for row in relation.rows)
        if not answer:
            raise TaskDefinitionError(
                f"task {self.task_id}{self.task_set} has an empty ground "
                f"truth on this dataset"
            )
        return answer

    def flat_result_rows(self, database: Database) -> int:
        """Row count of the flat join — drives result-interpretation time
        (duplicated rows are the paper's core usability complaint)."""
        return len(execute_sql(database, self.flat_sql).rows)


# ----------------------------------------------------------------------
# Parameterized ETable solution scripts (shared across matched sets)
# ----------------------------------------------------------------------
def _script_task1(title: str):
    def run(session: EtableSession) -> tuple[frozenset, list[UiStep]]:
        session.open("Papers")
        etable = session.filter(AttributeCompare("title", "=", title))
        answer = frozenset(row.attributes["year"] for row in etable.rows)
        steps = [
            UiStep("open"),
            UiStep("filter", typed_chars=len(title)),
            UiStep("read", rows_to_read=len(etable.rows)),
        ]
        return answer, steps
    return run


def _script_task2(title: str):
    def run(session: EtableSession) -> tuple[frozenset, list[UiStep]]:
        session.open("Papers")
        etable = session.filter(AttributeCompare("title", "=", title))
        etable = session.see_all(etable.row(0), "Papers->Paper_Keywords")
        answer = frozenset(row.attributes["keyword"] for row in etable.rows)
        steps = [
            UiStep("open"),
            UiStep("filter", typed_chars=len(title)),
            UiStep("see_all"),
            UiStep("read", rows_to_read=len(etable.rows)),
        ]
        return answer, steps
    return run


def _script_task3(author: str, year: int):
    def run(session: EtableSession) -> tuple[frozenset, list[UiStep]]:
        session.open("Authors")
        etable = session.filter(AttributeCompare("name", "=", author))
        etable = session.see_all(etable.row(0), "Authors->Papers")
        etable = session.filter(AttributeCompare("year", ">=", year))
        answer = frozenset(row.attributes["title"] for row in etable.rows)
        steps = [
            UiStep("open"),
            UiStep("filter", typed_chars=len(author)),
            UiStep("see_all"),
            UiStep("filter", typed_chars=len(str(year))),
            UiStep("read", rows_to_read=len(etable.rows)),
        ]
        return answer, steps
    return run


def _script_task4(institution: str, conference: str):
    def run(session: EtableSession) -> tuple[frozenset, list[UiStep]]:
        session.open("Institutions")
        etable = session.filter(AttributeCompare("name", "=", institution))
        etable = session.see_all(etable.row(0), "Institutions->Authors")
        etable = session.pivot("Authors->Papers")
        etable = session.filter_by_neighbor(
            "Papers->Conferences", AttributeCompare("acronym", "=", conference)
        )
        answer = frozenset(row.attributes["title"] for row in etable.rows)
        steps = [
            UiStep("open"),
            UiStep("filter", typed_chars=len(institution)),
            UiStep("see_all"),
            UiStep("pivot"),
            UiStep("filter", typed_chars=len(conference)),
            UiStep("read", rows_to_read=len(etable.rows)),
        ]
        return answer, steps
    return run


def _script_task5(country_pattern: str):
    def run(session: EtableSession) -> tuple[frozenset, list[UiStep]]:
        session.open("Institutions")
        etable = session.filter(AttributeLike("country", country_pattern))
        etable = session.sort("Institutions->Authors", descending=True)
        answer = frozenset({etable.row(0).attributes["name"]})
        steps = [
            UiStep("open"),
            UiStep("filter", typed_chars=len(country_pattern)),
            UiStep("sort"),
            UiStep("read", rows_to_read=2),
        ]
        return answer, steps
    return run


def _script_task6(conference: str):
    def run(session: EtableSession) -> tuple[frozenset, list[UiStep]]:
        session.open("Conferences")
        etable = session.filter(AttributeCompare("acronym", "=", conference))
        etable = session.see_all(etable.row(0), "Conferences->Papers")
        etable = session.pivot("Papers->Authors")
        etable = session.sort("Papers", descending=True)  # participating col
        threshold = etable.row(min(2, len(etable.rows) - 1)).ref_count("Papers")
        answer = frozenset(
            row.attributes["name"]
            for row in etable.rows
            if row.ref_count("Papers") >= threshold
        )
        steps = [
            UiStep("open"),
            UiStep("filter", typed_chars=len(conference)),
            UiStep("see_all"),
            UiStep("pivot"),
            UiStep("sort"),
            UiStep("read", rows_to_read=3),
        ]
        return answer, steps
    return run


# ----------------------------------------------------------------------
# Task construction
# ----------------------------------------------------------------------
def _attribute_task(task_id: int, task_set: str, title: str) -> TaskSpec:
    description = (
        f"Find the year that the paper titled '{title}' was published in."
        if task_id == 1
        else f"Find all the keywords of the paper titled '{title}'."
    )
    if task_id == 1:
        gt = (
            "SELECT p.year FROM Papers p "
            f"WHERE p.title = '{title}'"
        )
        flat = gt
        relations, joins = 1, 0
        script = _script_task1(title)
    else:
        gt = (
            "SELECT k.keyword FROM Papers p, Paper_Keywords k "
            f"WHERE k.paper_id = p.id AND p.title = '{title}'"
        )
        flat = (
            "SELECT p.title, k.keyword FROM Papers p, Paper_Keywords k "
            f"WHERE k.paper_id = p.id AND p.title = '{title}'"
        )
        relations, joins = 2, 1
        script = _script_task2(title)
    return TaskSpec(
        task_id=task_id,
        task_set=task_set,
        description=description,
        category="Attribute",
        relations=relations,
        ground_truth_sql=gt,
        flat_sql=flat,
        has_group_by=False,
        join_count=joins,
        predicate_count=1,
        typed_chars=len(title),
        etable_script=script,
    )


def _filter_task3(task_set: str, author: str, year: int) -> TaskSpec:
    return TaskSpec(
        task_id=3,
        task_set=task_set,
        description=(
            f"Find all the papers that were written by '{author}' and "
            f"published in {year} or after."
        ),
        category="Filter",
        relations=3,
        ground_truth_sql=(
            "SELECT p.title FROM Papers p, Paper_Authors pa, Authors a "
            "WHERE pa.paper_id = p.id AND pa.author_id = a.id "
            f"AND a.name = '{author}' AND p.year >= {year}"
        ),
        flat_sql=(
            "SELECT p.title, a.name FROM Papers p, Paper_Authors pa, Authors a "
            "WHERE pa.paper_id = p.id AND pa.author_id = a.id "
            f"AND a.name = '{author}' AND p.year >= {year}"
        ),
        has_group_by=False,
        join_count=2,
        predicate_count=2,
        typed_chars=len(author) + 4,
        etable_script=_script_task3(author, year),
    )


def _filter_task4(task_set: str, institution: str, conference: str) -> TaskSpec:
    return TaskSpec(
        task_id=4,
        task_set=task_set,
        description=(
            f"Find all the papers written by researchers at '{institution}' "
            f"and published at the {conference} conference."
        ),
        category="Filter",
        relations=5,
        ground_truth_sql=(
            "SELECT DISTINCT p.title FROM Papers p, Paper_Authors pa, "
            "Authors a, Institutions i, Conferences c "
            "WHERE pa.paper_id = p.id AND pa.author_id = a.id "
            "AND a.institution_id = i.id AND p.conference_id = c.id "
            f"AND i.name = '{institution}' AND c.acronym = '{conference}'"
        ),
        flat_sql=(
            "SELECT p.title, a.name FROM Papers p, Paper_Authors pa, "
            "Authors a, Institutions i, Conferences c "
            "WHERE pa.paper_id = p.id AND pa.author_id = a.id "
            "AND a.institution_id = i.id AND p.conference_id = c.id "
            f"AND i.name = '{institution}' AND c.acronym = '{conference}'"
        ),
        has_group_by=False,
        join_count=4,
        predicate_count=2,
        typed_chars=len(institution) + len(conference),
        etable_script=_script_task4(institution, conference),
    )


def _aggregate_task5(task_set: str, country: str, pattern: str) -> TaskSpec:
    return TaskSpec(
        task_id=5,
        task_set=task_set,
        description=(
            f"Which institution in {country} has the largest number of "
            "researchers?"
        ),
        category="Aggregate",
        relations=2,
        ground_truth_sql=(
            "SELECT i.name FROM Institutions i, Authors a "
            "WHERE a.institution_id = i.id "
            f"AND i.country LIKE '{pattern}' "
            "GROUP BY i.id ORDER BY COUNT(a.id) DESC, i.name ASC LIMIT 1"
        ),
        flat_sql=(
            "SELECT i.name, a.name FROM Institutions i, Authors a "
            "WHERE a.institution_id = i.id "
            f"AND i.country LIKE '{pattern}'"
        ),
        has_group_by=True,
        join_count=1,
        predicate_count=1,
        typed_chars=len(pattern),
        etable_script=_script_task5(pattern),
        superlative=True,
    )


def _aggregate_task6(task_set: str, conference: str) -> TaskSpec:
    return TaskSpec(
        task_id=6,
        task_set=task_set,
        description=(
            f"Find the top 3 researchers who have published the most papers "
            f"in the {conference} conference."
        ),
        category="Aggregate",
        relations=4,
        # Ties at the third place are included on both sides (count >= the
        # third-highest participant count), so the answer is deterministic.
        ground_truth_sql=(
            "SELECT a.name, COUNT(p.id) AS cnt "
            "FROM Authors a, Paper_Authors pa, Papers p, Conferences c "
            "WHERE pa.author_id = a.id AND pa.paper_id = p.id "
            "AND p.conference_id = c.id "
            f"AND c.acronym = '{conference}' "
            "GROUP BY a.id ORDER BY cnt DESC, a.name ASC"
        ),
        flat_sql=(
            "SELECT a.name, p.title "
            "FROM Authors a, Paper_Authors pa, Papers p, Conferences c "
            "WHERE pa.author_id = a.id AND pa.paper_id = p.id "
            "AND p.conference_id = c.id "
            f"AND c.acronym = '{conference}'"
        ),
        has_group_by=True,
        join_count=3,
        predicate_count=1,
        typed_chars=len(conference),
        etable_script=_script_task6(conference),
    )


def task_set_a() -> list[TaskSpec]:
    """Table 2 verbatim."""
    return [
        _attribute_task(1, "A", "Making database systems usable"),
        _attribute_task(2, "A", "Collaborative filtering with temporal dynamics"),
        _filter_task3("A", "Samuel Madden", 2013),
        _filter_task4("A", "Carnegie Mellon University", "KDD"),
        _aggregate_task5("A", "South Korea", "%Korea%"),
        _aggregate_task6("A", "SIGMOD"),
    ]


def task_set_b() -> list[TaskSpec]:
    """The matched set: same structure, different parameter values."""
    return [
        _attribute_task(1, "B", "Spreadsheet as a relational database engine"),
        _attribute_task(2, "B", "Interactive data mining with evolving queries"),
        _filter_task3("B", "Jeffrey Heer", 2012),
        _filter_task4("B", "Stanford University", "CHI"),
        _aggregate_task5("B", "Germany", "%Germany%"),
        _aggregate_task6("B", "KDD"),
    ]


def top3_ground_truth(database: Database, task: TaskSpec) -> frozenset:
    """Ground truth for task 6: everyone at or above the third-highest count."""
    relation = execute_sql(database, task.ground_truth_sql)
    if not relation.rows:
        raise TaskDefinitionError("task 6 has no qualifying researchers")
    counts = [row[1] for row in relation.rows]
    threshold = counts[min(2, len(counts) - 1)]
    return frozenset(row[0] for row in relation.rows if row[1] >= threshold)


def ground_truth_for(database: Database, task: TaskSpec) -> frozenset:
    """Dispatch: task 6 needs the tie-aware top-3 rule."""
    if task.task_id == 6:
        return top3_ground_truth(database, task)
    return task.ground_truth(database)
