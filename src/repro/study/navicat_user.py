"""Simulated graphical-query-builder (Navicat-like) participant.

The model reproduces the behaviour the paper reports for the baseline
condition (Section 7.2):

* building a query means locating relations in a schema tree, wiring join
  lines (harder the more relations are on the canvas), filling criteria
  rows, and picking output columns — all priced with the KLM profile;
* join queries and especially GROUP BY queries are error-prone: "many
  participants did not specify a GROUP BY attribute in their SELECT clauses
  in their first attempts". Error probabilities fall with SQL skill, decay
  with retries, and drop sharply once a participant survives their first
  GROUP BY task in the condition (that is why the study's Task 6, despite
  joining more relations, averaged *less* time than Task 5);
* superlative aggregates ("which institution has the largest …", Task 5)
  need a max-over-count, the hardest concept — extra struggle per failure;
* on an error, participants debug — or, as the paper observed, "preferred
  to specify new SQL queries from scratch instead of debugging existing
  ones", modelled as a restart that re-pays most of the build cost;
* interpreting the flat join result costs time growing with its size
  (duplicated rows — the paper's running usability complaint);
* a task is cut off at 300 s and recorded as 300 s, like the study did.

The large Navicat variance visible in Figure 10 *emerges* from the error
model; it is not injected directly.
"""

from __future__ import annotations

import math

from repro.study.etable_user import TaskOutcome
from repro.study.klm import R_RESPONSE
from repro.study.participants import Participant
from repro.study.tasks import TaskSpec

# Build mechanics (think units / clicks).
COMPREHENSION_BASE = 4.0
COMPREHENSION_PER_RELATION = 2.6
LOCATE_RELATION = 2.6          # find + drag one relation onto the canvas
WIRE_JOIN_BASE = 5.0           # identify the FK pair + draw the join line
WIRE_JOIN_PER_RELATION = 0.6   # more tables on canvas = harder to wire
CRITERIA_ROW = 3.0             # add one predicate row
OUTPUT_COLUMN = 0.8            # tick one output column
GROUP_BY_SETUP = 8.0           # switch to grouping, pick the aggregate
RESULT_READ_BASE = 2.5
RESULT_READ_LOG = 0.9          # × log2(result rows + 1), duplication cost
TYPE_CAP = 22                  # long literals are partially copy-pasted

# Error model.
SYNTAX_ERROR_BASE = 0.35       # scaled by (1.1 - skill fraction)
JOIN_ERROR_PER_JOIN = 0.12
GROUP_BY_ERROR_CEILING = 1.25  # p_gb = clamp(1.25 - skill, .15, .95)
GROUP_BY_EXPERIENCE_FACTOR = 0.35  # survived one GROUP BY task already
SUPERLATIVE_FACTOR = 1.45      # max-over-count confusion multiplier
ERROR_DECAY = 0.78             # per additional within-task attempt
DEBUG_THINK = 11.0             # reading errors / wrong output, think units
SUPERLATIVE_DEBUG_FACTOR = 2.2
RESTART_PROBABILITY = 0.45     # start over instead of debugging
RESTART_FRACTION = 0.9         # rebuild cost fraction on restart
FIX_FRACTION = 0.45            # debugging cost fraction of a full rebuild
NOISE_SIGMA = 0.22
LEARNING_FACTOR = 0.93
TIME_CAP = 300.0
SQL_RESPONSE = 2.0 * R_RESPONSE  # heavier server round trip for full joins


def simulate_navicat_task(
    task: TaskSpec,
    flat_result_rows: int,
    participant: Participant,
    second_condition: bool = False,
    groupby_experience: bool = False,
) -> TaskOutcome:
    """Price one task in the query-builder condition."""
    profile = participant.profile
    skill = participant.skill_fraction  # 0.33 .. 0.83 for skills 3..6
    rng = participant.rng(f"navicat:{task.task_id}:{task.task_set}")
    learning = LEARNING_FACTOR if second_condition else 1.0

    seconds = profile.think(
        COMPREHENSION_BASE + COMPREHENSION_PER_RELATION * task.relations
    )
    build_cost = _build_cost(task, profile)
    seconds += build_cost

    attempt = 0
    while True:
        seconds += profile.point_click() + SQL_RESPONSE  # run the query
        if seconds > TIME_CAP:
            break
        error_probability = _error_probability(
            task, skill, attempt, groupby_experience
        )
        if rng.random() >= error_probability:
            break  # the query finally returns the right shape
        attempt += 1
        debug_units = DEBUG_THINK * (
            SUPERLATIVE_DEBUG_FACTOR if task.superlative else 1.0
        )
        seconds += profile.think(debug_units)
        if rng.random() < RESTART_PROBABILITY:
            seconds += RESTART_FRACTION * build_cost
        else:
            seconds += FIX_FRACTION * build_cost + profile.think(2.0)
        if seconds > TIME_CAP:
            break

    # Interpret the (possibly duplicated) result rows.
    seconds += profile.think(
        RESULT_READ_BASE + RESULT_READ_LOG * math.log2(flat_result_rows + 1)
    )
    seconds *= learning
    seconds *= math.exp(rng.gauss(0.0, NOISE_SIGMA))

    capped = seconds > TIME_CAP
    if capped:
        seconds = TIME_CAP
    return TaskOutcome(
        seconds=seconds, correct=not capped, capped=capped,
        steps=attempt + 1,
    )


def _build_cost(task: TaskSpec, profile) -> float:
    cost = task.relations * (profile.think(LOCATE_RELATION)
                             + 2 * profile.point_click())
    wire = WIRE_JOIN_BASE + WIRE_JOIN_PER_RELATION * task.relations
    cost += task.join_count * (profile.think(wire) + 2 * profile.point_click())
    cost += task.predicate_count * (
        profile.think(CRITERIA_ROW) + 2 * profile.point_click()
    )
    typed = min(task.typed_chars, TYPE_CAP) + (
        2 if task.typed_chars > TYPE_CAP else 0
    )
    cost += profile.type_text(typed)
    cost += 2 * (profile.think(OUTPUT_COLUMN) + profile.point_click())
    if task.has_group_by:
        cost += profile.think(GROUP_BY_SETUP) + 3 * profile.point_click()
    return cost


def _error_probability(
    task: TaskSpec, skill: float, attempt: int, groupby_experience: bool
) -> float:
    """First-attempt probability, decaying with each within-task retry."""
    syntax = SYNTAX_ERROR_BASE * (1.1 - skill)
    joins = JOIN_ERROR_PER_JOIN * task.join_count * (1.1 - skill)
    grouping = 0.0
    if task.has_group_by:
        grouping = min(0.95, max(0.15, GROUP_BY_ERROR_CEILING - skill))
        if task.superlative:
            grouping = min(0.95, grouping * SUPERLATIVE_FACTOR)
        if groupby_experience:
            grouping *= GROUP_BY_EXPERIENCE_FACTOR
    probability = min(0.95, syntax + joins + grouping)
    return probability * (ERROR_DECAY ** attempt)
