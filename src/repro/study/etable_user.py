"""Simulated ETable participant.

The model executes the task's real ETable solution script against a live
session (so the produced answer is checked against ground truth), and prices
each interface step with the KLM profile plus deliberation that grows with
the number of relations the task spans. ETable deliberately does *not*
depend on SQL skill — the paper's premise is that direct manipulation
removes the query-language barrier; individual differences enter only
through motor/mental speed and noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.study.klm import R_RESPONSE
from repro.study.participants import Participant
from repro.study.tasks import TaskSpec, UiStep

# Calibration constants (seconds are produced via KLM think() units).
COMPREHENSION_BASE = 3.0      # reading & planning, think units
COMPREHENSION_PER_RELATION = 1.4
INTERPRET_BASE = 0.6          # interpreting an intermediate result
INTERPRET_PER_RELATION = 1.5
NAVIGATION_SCAN = 0.9         # finding the right column/button
READ_UNIT = 0.55              # per row read from the final answer
AGGREGATE_SURCHARGE = 5.0     # reasoning about counts/ranking, once per task
AGGREGATE_VERIFY = 3.0        # double-checking the sorted counts
TYPE_CAP = 22                 # long literals are partially copy-pasted
MISSTEP_PROBABILITY = 0.05    # occasional wrong click, redone
NOISE_SIGMA = 0.16            # lognormal multiplicative noise
LEARNING_FACTOR = 0.93        # second-condition familiarity gain
TIME_CAP = 300.0


@dataclass(frozen=True)
class TaskOutcome:
    seconds: float
    correct: bool
    capped: bool
    steps: int


def simulate_etable_task(
    task: TaskSpec,
    steps: list[UiStep],
    correct: bool,
    participant: Participant,
    second_condition: bool = False,
) -> TaskOutcome:
    """Price an already-executed solution script for one participant.

    The script itself runs once per study (see
    :func:`repro.study.simulate.prepare_tasks`), which both validates the
    answer against ground truth and yields the UI step sequence priced here.
    """
    profile = participant.profile
    rng = participant.rng(f"etable:{task.task_id}:{task.task_set}")
    learning = LEARNING_FACTOR if second_condition else 1.0

    seconds = profile.think(
        COMPREHENSION_BASE + COMPREHENSION_PER_RELATION * task.relations
    )
    if task.category == "Aggregate":
        seconds += profile.think(AGGREGATE_SURCHARGE)
    for step in steps:
        seconds += _step_cost(step, task, profile, rng)
    seconds *= learning
    seconds *= math.exp(rng.gauss(0.0, NOISE_SIGMA))
    capped = seconds > TIME_CAP
    if capped:
        seconds = TIME_CAP
    return TaskOutcome(
        seconds=seconds, correct=correct and not capped, capped=capped,
        steps=len(steps),
    )


def _step_cost(step: UiStep, task: TaskSpec, profile, rng) -> float:
    interpret = profile.think(
        INTERPRET_BASE + INTERPRET_PER_RELATION * task.relations
    )
    if step.kind == "open":
        base = profile.think(1.0) + profile.point_click() + R_RESPONSE
    elif step.kind == "filter":
        typed = min(step.typed_chars, TYPE_CAP) + (
            2 if step.typed_chars > TYPE_CAP else 0
        )
        base = (
            profile.think(1.6)
            + profile.point_click()          # open the filter popup
            + profile.point_click()          # pick column / operator
            + profile.type_text(typed)
            + profile.point_click()          # apply
            + R_RESPONSE
        )
    elif step.kind in ("pivot", "see_all"):
        base = (
            profile.think(1.0 + NAVIGATION_SCAN * task.relations)
            + profile.point_click()
            + R_RESPONSE
        )
    elif step.kind == "sort":
        base = profile.think(1.0) + profile.point_click() + R_RESPONSE
    elif step.kind == "read":
        rows = min(step.rows_to_read, 12)
        verify = AGGREGATE_VERIFY if task.category == "Aggregate" else 0.0
        return profile.think(READ_UNIT * max(1, rows) + verify)
    else:  # pragma: no cover - task scripts only emit the kinds above
        raise ValueError(f"unknown UI step kind {step.kind!r}")

    if rng.random() < MISSTEP_PROBABILITY:
        base *= 2.0  # redo the interaction
    return base + interpret
