"""Statistics for the study: means, confidence intervals, paired t-tests.

The paper reports per-task mean completion times with 95% confidence
intervals and two-tailed paired t-tests, marking 99% significance with ``*``
and 90% with ``°`` (Figure 10). The same analysis is implemented here on
top of scipy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from scipy import stats as scipy_stats


@dataclass(frozen=True)
class TaskStats:
    task_id: int
    etable_mean: float
    navicat_mean: float
    etable_ci95: float
    navicat_ci95: float
    p_value: float

    @property
    def significance(self) -> str:
        """The paper's markers: '*' at 99%, '°' at 90%, '' otherwise."""
        if self.p_value < 0.01:
            return "*"
        if self.p_value < 0.10:
            return "°"
        return ""

    @property
    def speedup(self) -> float:
        if self.etable_mean == 0:
            return math.inf
        return self.navicat_mean / self.etable_mean


def mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def ci95_halfwidth(values: Sequence[float]) -> float:
    """Half-width of the t-based 95% confidence interval for the mean."""
    n = len(values)
    if n < 2:
        return 0.0
    sample_mean = mean(values)
    variance = sum((v - sample_mean) ** 2 for v in values) / (n - 1)
    sem = math.sqrt(variance / n)
    t_crit = scipy_stats.t.ppf(0.975, df=n - 1)
    return float(t_crit * sem)


def paired_t_test(left: Sequence[float], right: Sequence[float]) -> float:
    """Two-tailed paired t-test p-value (the paper's Figure 10 test)."""
    if len(left) != len(right):
        raise ValueError("paired t-test needs equal-length samples")
    result = scipy_stats.ttest_rel(left, right)
    return float(result.pvalue)


def task_stats(
    task_id: int,
    etable_times: Sequence[float],
    navicat_times: Sequence[float],
) -> TaskStats:
    return TaskStats(
        task_id=task_id,
        etable_mean=mean(etable_times),
        navicat_mean=mean(navicat_times),
        etable_ci95=ci95_halfwidth(etable_times),
        navicat_ci95=ci95_halfwidth(navicat_times),
        p_value=paired_t_test(etable_times, navicat_times),
    )


def likert_summary(ratings: Sequence[int]) -> float:
    """Mean of a 7-point Likert item."""
    return mean([float(r) for r in ratings])
