"""The simulated user study (Section 7).

The reproduction's substitute for the paper's 12 human participants: Table 2
tasks in two matched sets, a keystroke-level interaction cost model, an
error-prone query-builder user model, the within-subjects protocol with
counterbalancing and the 300-second cap, Figure 10's statistics, and Table
3's ratings model. See DESIGN.md for the substitution rationale.
"""

from repro.study.etable_user import TaskOutcome, simulate_etable_task
from repro.study.klm import KlmProfile
from repro.study.navicat_user import simulate_navicat_task
from repro.study.participants import (
    Participant,
    generate_participants,
    mean_skill,
)
from repro.study.ratings import (
    PREFERENCE_ASPECTS,
    QUESTIONS,
    RatingsResult,
    simulate_ratings,
)
from repro.study.simulate import (
    ETABLE,
    NAVICAT,
    PreparedTask,
    StudyConfig,
    StudyResult,
    prepare_tasks,
    run_study,
)
from repro.study.stats import (
    TaskStats,
    ci95_halfwidth,
    likert_summary,
    mean,
    paired_t_test,
    task_stats,
)
from repro.study.tasks import (
    TaskSpec,
    UiStep,
    ground_truth_for,
    task_set_a,
    task_set_b,
)

__all__ = [
    "ETABLE",
    "KlmProfile",
    "NAVICAT",
    "PREFERENCE_ASPECTS",
    "Participant",
    "PreparedTask",
    "QUESTIONS",
    "RatingsResult",
    "StudyConfig",
    "StudyResult",
    "TaskOutcome",
    "TaskSpec",
    "TaskStats",
    "UiStep",
    "ci95_halfwidth",
    "generate_participants",
    "ground_truth_for",
    "likert_summary",
    "mean",
    "mean_skill",
    "paired_t_test",
    "prepare_tasks",
    "run_study",
    "simulate_etable_task",
    "simulate_navicat_task",
    "simulate_ratings",
    "task_set_a",
    "task_set_b",
    "task_stats",
]
