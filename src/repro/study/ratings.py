"""Subjective-rating model (Table 3) and preference votes.

Subjective Likert ratings cannot be measured without humans; we model them
as a function of each simulated participant's *objective outcomes* plus a
fixed per-question affinity:

    rating_q(p) = clip(round(base_q + speed_weight_q · speed(p)
                              + success_weight · success(p) + noise), 1, 7)

where ``speed(p)`` is the participant's Navicat/ETable speedup squashed to
[0, 1] and ``success(p)`` their ETable success rate. The per-question bases
encode which aspects the design serves best (browsing > interpretation —
the paper's lowest-rated item, Q5, is the one its future-work section
addresses). The *shape* of Table 3 (which questions score high/low) comes
from these bases; the level is pushed up or down by how well the simulated
study actually went.

The seven head-to-head preference questions are modeled as Bernoulli votes
whose probabilities tilt with the same speedup signal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.study.participants import Participant
from repro.study.simulate import StudyResult

# (question text, base affinity, speed weight)
QUESTIONS: list[tuple[str, float, float]] = [
    ("Easy to learn", 5.6, 0.9),
    ("Easy to use", 5.5, 0.9),
    ("Helpful to locate and find specific data", 5.5, 0.8),
    ("Helpful to browse data stored in databases", 5.9, 0.9),
    ("Helpful to interpret and understand results", 4.9, 0.7),
    ("Helpful to know what type of information exists", 5.3, 0.8),
    ("Helpful to perform complex tasks", 5.3, 0.8),
    ("Felt confident when using ETable", 5.2, 0.8),
    ("Enjoyed using ETable", 5.55, 0.9),
    ("Would like to use software like ETable in the future", 5.65, 0.9),
]

SUCCESS_WEIGHT = 0.5
NOISE_SIGMA = 0.55

# (aspect, base probability of preferring ETable, speed tilt)
PREFERENCE_ASPECTS: list[tuple[str, float, float]] = [
    ("Easier to learn", 0.97, 0.02),
    ("More helpful in browsing and exploring data", 0.97, 0.02),
    ("Liked more overall", 0.88, 0.06),
    ("Easier to use", 0.82, 0.06),
    ("Would choose to use in the future", 0.80, 0.06),
    ("Felt more confident using it", 0.62, 0.08),
    ("More helpful in finding specific data", 0.45, 0.08),
]


@dataclass
class RatingsResult:
    # question -> list of 12 integer ratings
    ratings: dict[str, list[int]]
    # aspect -> number of participants preferring ETable
    preferences: dict[str, int]

    def means(self) -> dict[str, float]:
        return {
            question: sum(values) / len(values)
            for question, values in self.ratings.items()
        }


def _squash_speedup(speedup: float) -> float:
    """Map a ≥0 speedup ratio to [0, 1]; 1× → 0.5, 3× → ~0.88."""
    return 1.0 / (1.0 + math.exp(-(speedup - 1.0)))


def simulate_ratings(result: StudyResult) -> RatingsResult:
    """Produce Table 3 ratings and the preference votes for one study run."""
    ratings: dict[str, list[int]] = {question: [] for question, _, _ in QUESTIONS}
    preferences: dict[str, int] = {aspect: 0 for aspect, _, _ in PREFERENCE_ASPECTS}
    for participant in result.participants:
        speed = _squash_speedup(result.participant_speedup(
            participant.participant_id
        ))
        success = result.etable_success_rate(participant.participant_id)
        rng = participant.rng("ratings")
        for question, base, speed_weight in QUESTIONS:
            raw = (
                base
                + speed_weight * speed
                + SUCCESS_WEIGHT * success
                + rng.gauss(0.0, NOISE_SIGMA)
            )
            ratings[question].append(int(min(7, max(1, round(raw)))))
        for aspect, base_probability, tilt in PREFERENCE_ASPECTS:
            probability = min(
                0.99, max(0.01, base_probability + tilt * (speed - 0.5))
            )
            if rng.random() < probability:
                preferences[aspect] += 1
    return RatingsResult(ratings=ratings, preferences=preferences)
