"""Relational persistence of a TGDB (Section 6.2).

The paper's prototype "stores TGDB schema and instance graphs in four
relational tables: nodes, edges, node types, and edge types". We reproduce
that layout on our own relational engine. Node attribute values are
serialized into a JSON text column (the paper does not specify the physical
attribute encoding; JSON-in-a-column matches the PostgreSQL-era idiom and
keeps the table count at exactly four).
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import TgmError
from repro.relational.database import Database
from repro.relational.datatypes import DataType
from repro.relational.schema import ForeignKey, table_schema
from repro.tgm.instance_graph import GraphStatistics, InstanceGraph
from repro.tgm.schema_graph import (
    EdgeTypeCategory,
    NodeType,
    NodeTypeCategory,
    SchemaGraph,
)

NODE_TYPES_TABLE = "node_types"
EDGE_TYPES_TABLE = "edge_types"
NODES_TABLE = "nodes"
EDGES_TABLE = "edges"
# Optional fifth table, created on demand *alongside* the paper's four-table
# layout: persisted planner statistics (ROADMAP item "cross-session
# statistics persistence"), so a restarted service keeps its selectivity
# model warm without re-scanning the graph.
STATISTICS_TABLE = "graph_statistics"


def storage_database(name: str = "tgdb_storage") -> Database:
    """An empty database with the four TGDB tables declared."""
    db = Database(name)
    db.create_table(
        table_schema(
            NODE_TYPES_TABLE,
            [
                ("name", DataType.TEXT),
                ("attributes", DataType.TEXT),      # JSON array of names
                ("label_attribute", DataType.TEXT),
                ("category", DataType.TEXT),
            ],
            primary_key="name",
        )
    )
    db.create_table(
        table_schema(
            EDGE_TYPES_TABLE,
            [
                ("name", DataType.TEXT),
                ("source", DataType.TEXT),
                ("target", DataType.TEXT),
                ("display_name", DataType.TEXT),
                ("category", DataType.TEXT),
                ("reverse_name", DataType.TEXT),
            ],
            primary_key="name",
            foreign_keys=[
                ForeignKey("source", NODE_TYPES_TABLE, "name"),
                ForeignKey("target", NODE_TYPES_TABLE, "name"),
            ],
        )
    )
    db.create_table(
        table_schema(
            NODES_TABLE,
            [
                ("id", DataType.INTEGER),
                ("type_name", DataType.TEXT),
                ("attributes", DataType.TEXT),      # JSON object
                ("source_key", DataType.TEXT),      # JSON-encoded scalar
            ],
            primary_key="id",
            foreign_keys=[ForeignKey("type_name", NODE_TYPES_TABLE, "name")],
        )
    )
    db.create_table(
        table_schema(
            EDGES_TABLE,
            [
                ("id", DataType.INTEGER),
                ("type_name", DataType.TEXT),
                ("source_id", DataType.INTEGER),
                ("target_id", DataType.INTEGER),
                ("attributes", DataType.TEXT),      # JSON object
            ],
            primary_key="id",
            foreign_keys=[
                ForeignKey("type_name", EDGE_TYPES_TABLE, "name"),
                ForeignKey("source_id", NODES_TABLE, "id"),
                ForeignKey("target_id", NODES_TABLE, "id"),
            ],
        )
    )
    return db


def save_statistics(db: Database, graph: InstanceGraph) -> None:
    """Persist ``graph.statistics()`` into ``db`` (creating the table).

    Everything the statistics layer has computed — type cardinalities,
    per-edge degree histograms, and whatever distinct counts the planner
    already paid for — is serialized as one JSON payload, so the next
    process starts with the selectivity model this one ended with.
    """
    if db.has_table(STATISTICS_TABLE):
        db.drop_table(STATISTICS_TABLE)
    db.create_table(
        table_schema(
            STATISTICS_TABLE,
            [("key", DataType.TEXT), ("payload", DataType.TEXT)],
            primary_key="key",
        )
    )
    db.insert(
        STATISTICS_TABLE,
        {
            "key": "statistics",
            "payload": json.dumps(graph.statistics().to_payload()),
        },
    )


def load_statistics(db: Database, graph: InstanceGraph) -> GraphStatistics | None:
    """Install persisted statistics into ``graph``, if ``db`` has any."""
    if not db.has_table(STATISTICS_TABLE):
        return None
    for row in db.table(STATISTICS_TABLE).as_dicts():
        if row["key"] == "statistics":
            statistics = GraphStatistics.from_payload(
                graph, json.loads(row["payload"])
            )
            graph.install_statistics(statistics)
            return statistics
    return None


def save_graph(
    schema: SchemaGraph,
    graph: InstanceGraph,
    name: str = "tgdb_storage",
    include_statistics: bool = False,
) -> Database:
    """Persist a schema + instance graph into a four-table database.

    With ``include_statistics=True`` the planner's statistics ride along in
    a fifth ``graph_statistics`` table (see :func:`save_statistics`).
    """
    db = storage_database(name)
    for node_type in schema.node_types:
        db.insert(
            NODE_TYPES_TABLE,
            {
                "name": node_type.name,
                "attributes": json.dumps(list(node_type.attributes)),
                "label_attribute": node_type.label_attribute,
                "category": node_type.category.name,
            },
        )
    for edge_type in schema.edge_types:
        db.insert(
            EDGE_TYPES_TABLE,
            {
                "name": edge_type.name,
                "source": edge_type.source,
                "target": edge_type.target,
                "display_name": edge_type.display_name,
                "category": edge_type.category.name,
                "reverse_name": edge_type.reverse_name,
            },
        )
    for node in sorted(
        (graph.node(node_id) for type_name in (t.name for t in schema.node_types)
         for node_id in graph.node_ids_of_type(type_name)),
        key=lambda n: n.node_id,
    ):
        db.insert(
            NODES_TABLE,
            {
                "id": node.node_id,
                "type_name": node.type_name,
                "attributes": json.dumps(node.attributes),
                "source_key": json.dumps(node.source_key),
            },
        )
    for index, edge in enumerate(graph.edges(), start=1):
        db.insert(
            EDGES_TABLE,
            {
                "id": index,
                "type_name": edge.type_name,
                "source_id": edge.source_id,
                "target_id": edge.target_id,
                "attributes": json.dumps(dict(edge.attributes)),
            },
        )
    if include_statistics:
        save_statistics(db, graph)
    return db


def load_graph(db: Database) -> tuple[SchemaGraph, InstanceGraph]:
    """Rebuild (schema graph, instance graph) from a four-table database.

    Node ids are preserved so entity references serialized elsewhere stay
    valid across a save/load round trip. If the database carries a
    ``graph_statistics`` table (see :func:`save_statistics`), the persisted
    statistics are installed so the planner's selectivity model starts warm.
    """
    schema = SchemaGraph(db.name)
    for row in db.table(NODE_TYPES_TABLE).as_dicts():
        schema.add_node_type(
            NodeType(
                name=row["name"],
                attributes=tuple(json.loads(row["attributes"])),
                label_attribute=row["label_attribute"],
                category=NodeTypeCategory[row["category"]],
            )
        )
    edge_rows = db.table(EDGE_TYPES_TABLE).as_dicts()
    registered: set[str] = set()
    by_name = {row["name"]: row for row in edge_rows}
    for row in edge_rows:
        if row["name"] in registered:
            continue
        reverse_name = row["reverse_name"]
        if reverse_name is None:
            schema.add_edge_type(
                row["name"],
                row["source"],
                row["target"],
                EdgeTypeCategory[row["category"]],
                display_name=row["display_name"],
            )
            registered.add(row["name"])
            continue
        reverse = by_name.get(reverse_name)
        if reverse is None:
            raise TgmError(
                f"edge type {row['name']!r} references missing reverse "
                f"{reverse_name!r}"
            )
        schema.add_edge_type_pair(
            row["name"],
            reverse_name,
            row["source"],
            row["target"],
            EdgeTypeCategory[row["category"]],
            forward_display=row["display_name"],
            reverse_display=reverse["display_name"],
        )
        registered.add(row["name"])
        registered.add(reverse_name)

    graph = InstanceGraph(schema)
    node_rows = sorted(db.table(NODES_TABLE).as_dicts(), key=lambda r: r["id"])
    id_mapping: dict[int, int] = {}
    for row in node_rows:
        node = graph.add_node(
            row["type_name"],
            json.loads(row["attributes"]),
            source_key=_decode_source_key(row["source_key"]),
        )
        id_mapping[row["id"]] = node.node_id
        if node.node_id != row["id"]:
            raise TgmError(
                "node ids were not preserved on load; storage requires "
                "contiguous ids starting at 1"
            )
    for row in sorted(db.table(EDGES_TABLE).as_dicts(), key=lambda r: r["id"]):
        graph.add_edge(
            row["type_name"],
            id_mapping[row["source_id"]],
            id_mapping[row["target_id"]],
            json.loads(row["attributes"]),
        )
    load_statistics(db, graph)
    return schema, graph


def _decode_source_key(text: str | None) -> Any:
    if text is None:
        return None
    value = json.loads(text)
    # JSON lists come back as lists; composite keys were tuples originally.
    if isinstance(value, list):
        return tuple(value)
    return value
