"""The graph relation algebra of Section 5.4.1.

A *graph relation* is like a relation whose attribute domains are node sets:
each attribute corresponds to a node type (more precisely, to one occurrence
of a node type in a query pattern — a *pattern node*), and each tuple is a
list of node ids. Three operators are defined: selection ``σ``, join ``*``
(over an edge type), and projection ``Π``. Instance matching (Definition 4)
composes selections and joins; format transformation uses projection.

Storage is *columnar*: tuples live as parallel per-attribute lists of node
ids, so operators touch only the columns they need and the planner's delta
joins append to flat lists instead of re-building row tuples. The row-wise
``tuples`` view is materialized lazily for callers that want it.

Arity validation happens once, at construction boundaries (the public
``GraphRelation(...)`` constructor): operator outputs are built through the
internal fast constructors (:meth:`GraphRelation.from_columns` /
:meth:`GraphRelation.from_rows`) whose shapes are correct by construction,
so a query plan never re-validates the same tuples on every step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Sequence

from repro.errors import TgmError
from repro.tgm.conditions import Condition, ConditionMemo
from repro.tgm.instance_graph import InstanceGraph


@dataclass(frozen=True)
class GraphAttribute:
    """One attribute of a graph relation: a keyed occurrence of a node type.

    ``key`` disambiguates multiple occurrences of the same node type in one
    pattern (e.g. a self-join on Papers via citations).
    """

    key: str
    type_name: str

    def __str__(self) -> str:
        if self.key == self.type_name:
            return self.type_name
        return f"{self.key}:{self.type_name}"


class GraphRelation:
    """An ordered set of tuples of node ids over :class:`GraphAttribute` s."""

    __slots__ = ("attributes", "_columns", "_tuples")

    def __init__(
        self,
        attributes: Sequence[GraphAttribute],
        tuples: Iterable[tuple[int, ...]] = (),
    ) -> None:
        self.attributes = list(attributes)
        keys = [attribute.key for attribute in self.attributes]
        if len(set(keys)) != len(keys):
            raise TgmError(f"duplicate graph-relation attribute keys in {keys!r}")
        rows = [tuple(row) for row in tuples]
        arity = len(self.attributes)
        for row in rows:
            if len(row) != arity:
                raise TgmError(
                    f"tuple arity {len(row)} != attribute arity {arity}"
                )
        self._tuples: list[tuple[int, ...]] | None = rows
        if rows:
            self._columns: list[list[int]] = [list(col) for col in zip(*rows)]
        else:
            self._columns = [[] for _ in self.attributes]

    # ------------------------------------------------------------------
    # Fast internal constructors (operator outputs; no per-row validation)
    # ------------------------------------------------------------------
    @classmethod
    def from_columns(
        cls,
        attributes: Sequence[GraphAttribute],
        columns: Sequence[list[int]],
    ) -> "GraphRelation":
        """Wrap parallel columns without re-validating every row.

        The caller guarantees the columns are equal-length and aligned with
        ``attributes`` — true for every algebra operator, whose output shape
        is correct by construction.
        """
        relation = cls.__new__(cls)
        relation.attributes = list(attributes)
        relation._columns = list(columns)
        relation._tuples = None
        return relation

    @classmethod
    def from_rows(
        cls,
        attributes: Sequence[GraphAttribute],
        rows: list[tuple[int, ...]],
    ) -> "GraphRelation":
        """Wrap already-valid row tuples without re-validating arity."""
        relation = cls.__new__(cls)
        relation.attributes = list(attributes)
        relation._tuples = rows
        if rows:
            relation._columns = [list(col) for col in zip(*rows)]
        else:
            relation._columns = [[] for _ in relation.attributes]
        return relation

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        if self._columns:
            return len(self._columns[0])
        return len(self._tuples or ())

    @property
    def tuples(self) -> list[tuple[int, ...]]:
        """Row-wise view, materialized lazily from the columns."""
        if self._tuples is None:
            self._tuples = list(zip(*self._columns)) if self._columns else []
        return self._tuples

    def iter_rows(self) -> Iterator[tuple[int, ...]]:
        """Stream row tuples without caching the materialized list."""
        if self._tuples is not None:
            return iter(self._tuples)
        return zip(*self._columns)

    @property
    def keys(self) -> list[str]:
        return [attribute.key for attribute in self.attributes]

    def position(self, key: str) -> int:
        for index, attribute in enumerate(self.attributes):
            if attribute.key == key:
                return index
        raise TgmError(f"no graph-relation attribute with key {key!r}")

    def attribute(self, key: str) -> GraphAttribute:
        return self.attributes[self.position(key)]

    def column(self, key: str) -> list[int]:
        return list(self._columns[self.position(key)])

    def columns_view(self) -> list[list[int]]:
        """The internal parallel columns; callers must not mutate them."""
        return self._columns

    def distinct_column(self, key: str) -> list[int]:
        """Distinct node ids of one attribute, first-appearance order."""
        return list(dict.fromkeys(self._columns[self.position(key)]))

    # ------------------------------------------------------------------
    # Partitioning (the parallel engine's shard/merge primitives)
    # ------------------------------------------------------------------
    def split(self, parts: int) -> list["GraphRelation"]:
        """Partition the rows into up to ``parts`` contiguous slices.

        Row order is preserved across the concatenation of the returned
        relations (``concat(r.split(p))`` is the identity), which is what
        lets the parallel executor shard a prefix relation, join each shard
        independently, and merge without re-sorting. Attribute lists are
        shared, column slices are copies; a single-part split returns
        ``self`` unsliced (zero-copy).
        """
        size = len(self)
        if parts <= 1 or size <= 1:
            return [self]
        chunk = -(-size // min(parts, size))  # ceil division, no empty parts
        return [
            GraphRelation.from_columns(
                self.attributes,
                [column[start:start + chunk] for column in self._columns],
            )
            for start in range(0, size, chunk)
        ]

    @classmethod
    def concat(cls, relations: Sequence["GraphRelation"]) -> "GraphRelation":
        """Row-concatenate relations over identical attribute lists.

        The inverse of :meth:`split`: partial results come back in partition
        order and their rows are appended in that order, so the merged
        relation's tuple order equals the unsharded execution's. A single
        input is returned as-is (zero-copy).
        """
        if not relations:
            raise TgmError("concat needs at least one relation")
        first = relations[0]
        if len(relations) == 1:
            return first
        for relation in relations[1:]:
            if relation.attributes != first.attributes:
                raise TgmError(
                    f"concat over mismatched attributes: "
                    f"{[str(a) for a in first.attributes]} vs "
                    f"{[str(a) for a in relation.attributes]}"
                )
        columns: list[list[int]] = []
        for position in range(len(first.attributes)):
            merged: list[int] = []
            for relation in relations:
                merged.extend(relation._columns[position])
            columns.append(merged)
        return cls.from_columns(first.attributes, columns)

    def to_table(self, graph: InstanceGraph) -> list[dict[str, Any]]:
        """Render tuples as label dictionaries (used by Figure 8's bench)."""
        out: list[dict[str, Any]] = []
        for row in self.iter_rows():
            item: dict[str, Any] = {}
            for attribute, node_id in zip(self.attributes, row):
                item[attribute.key] = graph.node(node_id).label(graph.schema)
            out.append(item)
        return out


# ----------------------------------------------------------------------
# Algebra operators
# ----------------------------------------------------------------------
def base_relation(
    graph: InstanceGraph, type_name: str, key: str | None = None
) -> GraphRelation:
    """The base graph relation of one node type: one single-attribute tuple
    per node instance."""
    attribute = GraphAttribute(key or type_name, type_name)
    return GraphRelation.from_columns(
        [attribute], [list(graph.node_ids_of_type(type_name))]
    )


def selection(
    relation: GraphRelation,
    key: str,
    condition: Condition,
    graph: InstanceGraph,
    memo: ConditionMemo | None = None,
) -> GraphRelation:
    """``σ_Ci(R)``: keep tuples whose ``key`` node satisfies the condition.

    With a :class:`ConditionMemo`, each (condition, node) pair is evaluated
    at most once across the memo's lifetime — repeated incremental queries
    never re-scan the neighbors behind a ``NeighborSatisfies`` twice.
    """
    position = relation.position(key)
    target = relation.columns_view()[position]
    if memo is not None:
        kept = [
            index
            for index, node_id in enumerate(target)
            if memo.matches(condition, graph.node(node_id), graph)
        ]
    else:
        kept = [
            index
            for index, node_id in enumerate(target)
            if condition.matches(graph.node(node_id), graph)
        ]
    columns = [
        [column[index] for index in kept] for column in relation.columns_view()
    ]
    return GraphRelation.from_columns(list(relation.attributes), columns)


def join(
    left: GraphRelation,
    right: GraphRelation,
    edge_type_name: str,
    left_key: str,
    right_key: str,
    graph: InstanceGraph,
) -> GraphRelation:
    """``R1 *ρ R2``: concatenate tuple pairs connected by a ``ρ`` edge.

    ``left_key``/``right_key`` locate the source and target attributes. The
    join probes the instance graph's adjacency index from the left side and
    hashes the right side by its target attribute, so cost is
    O(|left| · avg-degree + |right|).
    """
    edge_type = graph.schema.edge_type(edge_type_name)
    left_position = left.position(left_key)
    right_position = right.position(right_key)
    left_attr = left.attributes[left_position]
    right_attr = right.attributes[right_position]
    if left_attr.type_name != edge_type.source:
        raise TgmError(
            f"join via {edge_type_name!r}: left attribute {left_key!r} has type "
            f"{left_attr.type_name!r}, edge expects {edge_type.source!r}"
        )
    if right_attr.type_name != edge_type.target:
        raise TgmError(
            f"join via {edge_type_name!r}: right attribute {right_key!r} has type "
            f"{right_attr.type_name!r}, edge expects {edge_type.target!r}"
        )

    right_columns = right.columns_view()
    by_target: dict[int, list[int]] = {}
    for index, node_id in enumerate(right_columns[right_position]):
        by_target.setdefault(node_id, []).append(index)

    left_columns = left.columns_view()
    left_width = len(left_columns)
    right_width = len(right_columns)
    out: list[list[int]] = [[] for _ in range(left_width + right_width)]
    left_source = left_columns[left_position]
    for left_index in range(len(left)):
        source_id = left_source[left_index]
        for neighbor_id in graph.neighbors_view(source_id, edge_type_name):
            for right_index in by_target.get(neighbor_id, ()):
                for c in range(left_width):
                    out[c].append(left_columns[c][left_index])
                for c in range(right_width):
                    out[left_width + c].append(right_columns[c][right_index])
    attributes = list(left.attributes) + list(right.attributes)
    return GraphRelation.from_columns(attributes, out)


def projection(relation: GraphRelation, keys: Sequence[str]) -> GraphRelation:
    """``Π``: keep only ``keys`` attributes; duplicate tuples are removed."""
    positions = [relation.position(key) for key in keys]
    attributes = [relation.attributes[position] for position in positions]
    columns = relation.columns_view()
    seen: set[tuple[int, ...]] = set()
    out: list[list[int]] = [[] for _ in positions]
    for index in range(len(relation)):
        projected = tuple(columns[position][index] for position in positions)
        if projected in seen:
            continue
        seen.add(projected)
        for c, value in enumerate(projected):
            out[c].append(value)
    return GraphRelation.from_columns(attributes, out)
