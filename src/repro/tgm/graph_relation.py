"""The graph relation algebra of Section 5.4.1.

A *graph relation* is like a relation whose attribute domains are node sets:
each attribute corresponds to a node type (more precisely, to one occurrence
of a node type in a query pattern — a *pattern node*), and each tuple is a
list of node ids. Three operators are defined: selection ``σ``, join ``*``
(over an edge type), and projection ``Π``. Instance matching (Definition 4)
composes selections and joins; format transformation uses projection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.errors import TgmError
from repro.tgm.conditions import Condition
from repro.tgm.instance_graph import InstanceGraph, Node


@dataclass(frozen=True)
class GraphAttribute:
    """One attribute of a graph relation: a keyed occurrence of a node type.

    ``key`` disambiguates multiple occurrences of the same node type in one
    pattern (e.g. a self-join on Papers via citations).
    """

    key: str
    type_name: str

    def __str__(self) -> str:
        if self.key == self.type_name:
            return self.type_name
        return f"{self.key}:{self.type_name}"


class GraphRelation:
    """An ordered set of tuples of node ids over :class:`GraphAttribute` s."""

    def __init__(
        self,
        attributes: Sequence[GraphAttribute],
        tuples: Iterable[tuple[int, ...]] = (),
    ) -> None:
        self.attributes = list(attributes)
        keys = [attribute.key for attribute in self.attributes]
        if len(set(keys)) != len(keys):
            raise TgmError(f"duplicate graph-relation attribute keys in {keys!r}")
        self.tuples: list[tuple[int, ...]] = list(tuples)
        for row in self.tuples:
            if len(row) != len(self.attributes):
                raise TgmError(
                    f"tuple arity {len(row)} != attribute arity "
                    f"{len(self.attributes)}"
                )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.tuples)

    @property
    def keys(self) -> list[str]:
        return [attribute.key for attribute in self.attributes]

    def position(self, key: str) -> int:
        for index, attribute in enumerate(self.attributes):
            if attribute.key == key:
                return index
        raise TgmError(f"no graph-relation attribute with key {key!r}")

    def attribute(self, key: str) -> GraphAttribute:
        return self.attributes[self.position(key)]

    def column(self, key: str) -> list[int]:
        position = self.position(key)
        return [row[position] for row in self.tuples]

    def distinct_column(self, key: str) -> list[int]:
        """Distinct node ids of one attribute, first-appearance order."""
        position = self.position(key)
        seen: set[int] = set()
        out: list[int] = []
        for row in self.tuples:
            node_id = row[position]
            if node_id in seen:
                continue
            seen.add(node_id)
            out.append(node_id)
        return out

    def to_table(self, graph: InstanceGraph) -> list[dict[str, Any]]:
        """Render tuples as label dictionaries (used by Figure 8's bench)."""
        out: list[dict[str, Any]] = []
        for row in self.tuples:
            item: dict[str, Any] = {}
            for attribute, node_id in zip(self.attributes, row):
                item[attribute.key] = graph.node(node_id).label(graph.schema)
            out.append(item)
        return out


# ----------------------------------------------------------------------
# Algebra operators
# ----------------------------------------------------------------------
def base_relation(
    graph: InstanceGraph, type_name: str, key: str | None = None
) -> GraphRelation:
    """The base graph relation of one node type: one single-attribute tuple
    per node instance."""
    attribute = GraphAttribute(key or type_name, type_name)
    tuples = [(node_id,) for node_id in graph.node_ids_of_type(type_name)]
    return GraphRelation([attribute], tuples)


def selection(
    relation: GraphRelation,
    key: str,
    condition: Condition,
    graph: InstanceGraph,
) -> GraphRelation:
    """``σ_Ci(R)``: keep tuples whose ``key`` node satisfies the condition."""
    position = relation.position(key)
    kept = [
        row
        for row in relation.tuples
        if condition.matches(graph.node(row[position]), graph)
    ]
    return GraphRelation(list(relation.attributes), kept)


def join(
    left: GraphRelation,
    right: GraphRelation,
    edge_type_name: str,
    left_key: str,
    right_key: str,
    graph: InstanceGraph,
) -> GraphRelation:
    """``R1 *ρ R2``: concatenate tuple pairs connected by a ``ρ`` edge.

    ``left_key``/``right_key`` locate the source and target attributes. The
    join probes the instance graph's adjacency index from the left side and
    hashes the right side by its target attribute, so cost is
    O(|left| · avg-degree + |right|).
    """
    edge_type = graph.schema.edge_type(edge_type_name)
    left_position = left.position(left_key)
    right_position = right.position(right_key)
    left_attr = left.attributes[left_position]
    right_attr = right.attributes[right_position]
    if left_attr.type_name != edge_type.source:
        raise TgmError(
            f"join via {edge_type_name!r}: left attribute {left_key!r} has type "
            f"{left_attr.type_name!r}, edge expects {edge_type.source!r}"
        )
    if right_attr.type_name != edge_type.target:
        raise TgmError(
            f"join via {edge_type_name!r}: right attribute {right_key!r} has type "
            f"{right_attr.type_name!r}, edge expects {edge_type.target!r}"
        )

    by_target: dict[int, list[tuple[int, ...]]] = {}
    for row in right.tuples:
        by_target.setdefault(row[right_position], []).append(row)

    attributes = list(left.attributes) + list(right.attributes)
    tuples: list[tuple[int, ...]] = []
    for left_row in left.tuples:
        source_id = left_row[left_position]
        for neighbor_id in graph.neighbor_ids(source_id, edge_type_name):
            for right_row in by_target.get(neighbor_id, ()):
                tuples.append(left_row + right_row)
    return GraphRelation(attributes, tuples)


def projection(relation: GraphRelation, keys: Sequence[str]) -> GraphRelation:
    """``Π``: keep only ``keys`` attributes; duplicate tuples are removed."""
    positions = [relation.position(key) for key in keys]
    attributes = [relation.attributes[position] for position in positions]
    seen: set[tuple[int, ...]] = set()
    tuples: list[tuple[int, ...]] = []
    for row in relation.tuples:
        projected = tuple(row[position] for position in positions)
        if projected in seen:
            continue
        seen.add(projected)
        tuples.append(projected)
    return GraphRelation(attributes, tuples)
