"""The typed graph model (TGM) of Section 4.

A typed graph database (TGDB) is a schema graph plus an instance graph.
ETable executes every user operation over these graphs rather than over the
relational database, giving users a conceptual entity-relationship view.

The subpackage also provides the graph relation algebra of Section 5.4.1
(:mod:`repro.tgm.graph_relation`) and the four-table relational persistence
of Section 6.2 (:mod:`repro.tgm.storage`).
"""

from repro.tgm.conditions import (
    AndCondition,
    AttributeCompare,
    AttributeIn,
    AttributeLike,
    Condition,
    ConditionMemo,
    LabelLike,
    NeighborSatisfies,
    NodeIn,
    NodeIs,
    NotCondition,
    OrCondition,
    conjoin_conditions,
)
from repro.tgm.graph_relation import (
    GraphAttribute,
    GraphRelation,
    base_relation,
    join,
    projection,
    selection,
)
from repro.tgm.instance_graph import (
    Edge,
    EdgeTypeStats,
    GraphStatistics,
    InstanceGraph,
    Node,
)
from repro.tgm.schema_graph import (
    EdgeType,
    EdgeTypeCategory,
    NodeType,
    NodeTypeCategory,
    SchemaGraph,
)
from repro.tgm.storage import load_graph, save_graph, storage_database

__all__ = [
    "AndCondition",
    "AttributeCompare",
    "AttributeIn",
    "AttributeLike",
    "Condition",
    "ConditionMemo",
    "Edge",
    "EdgeTypeStats",
    "GraphStatistics",
    "EdgeType",
    "EdgeTypeCategory",
    "GraphAttribute",
    "GraphRelation",
    "InstanceGraph",
    "LabelLike",
    "NeighborSatisfies",
    "Node",
    "NodeIn",
    "NodeIs",
    "NodeType",
    "NodeTypeCategory",
    "NotCondition",
    "OrCondition",
    "SchemaGraph",
    "base_relation",
    "conjoin_conditions",
    "join",
    "load_graph",
    "projection",
    "save_graph",
    "selection",
    "storage_database",
]
