"""Selection conditions over graph nodes.

These are the ``C`` components of an ETable query pattern (Definition 3):
predicates evaluated against a node's attributes, its label, its identity, or
— for the Filter-by-neighbor-label action of Section 6.1 — the labels of its
direct neighbors (a semijoin, translated to an EXISTS subquery in SQL).

Every condition renders to a human-readable string via ``describe()``; the
history view shows those strings (e.g. ``acronym = 'SIGMOD'``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable

from repro.errors import TgmError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.tgm.instance_graph import InstanceGraph, Node

_OPS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class Condition:
    """Base class. ``matches`` gets the node and the instance graph."""

    def matches(self, node: "Node", graph: "InstanceGraph") -> bool:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def index_probes(self) -> tuple[tuple[str, tuple[Any, ...]], ...]:
        """Attribute-equality probes this condition implies.

        Each probe is ``(attribute, candidate_values)``: every matching node
        must have ``attribute`` equal to one of ``candidate_values``, so the
        planner can answer the selection with hash-index lookups instead of
        a full type scan. An empty tuple means "no probe available".
        """
        return ()

    def node_probes(self) -> tuple[int, ...] | None:
        """Node ids this condition restricts matches to (identity probes).

        ``None`` means unconstrained; a tuple means every matching node's id
        is in the tuple (the planner starts from those ids directly).
        """
        return None

    def cache_token(self) -> str:
        """A string that distinguishes *semantically different* conditions.

        Cache keys must use this, not ``describe()``: display strings may
        drop discriminating detail (``NodeIs`` shows its label instead of
        its node id, and two different nodes can share a label).
        """
        return self.describe()

    def __str__(self) -> str:
        return self.describe()


class ConditionMemo:
    """Memoizes per-(condition, node) results across executions.

    Conditions and the instance graph are immutable during a browsing
    session, so a condition's verdict on a node never changes. Keeping the
    memo on the executor means an incremental session evaluates each
    ``NeighborSatisfies`` (the expensive semijoin condition) at most once
    per node over its whole lifetime, instead of once per user action.

    Combinators (``And``/``Or``/``Not``) are evaluated *compositionally*:
    their operands go through the memo individually, so the conjunction a
    session accretes filter-by-filter still hits the entries of its parts —
    the incremental pattern ``σ_A``, ``σ_A∧B``, ``σ_A∧B∧C`` evaluates each
    base predicate once per node, total.

    Conditions with unhashable payloads fall back to direct evaluation.
    """

    def __init__(self) -> None:
        self._results: dict[tuple[Condition, int], bool] = {}
        self.hits = 0
        self.evaluations = 0

    def matches(
        self, condition: "Condition", node: "Node", graph: "InstanceGraph"
    ) -> bool:
        try:
            key = (condition, node.node_id)
            cached = self._results.get(key)
        except TypeError:  # unhashable condition payload
            return self._evaluate(condition, node, graph)
        if cached is not None:
            self.hits += 1
            return cached
        result = self._evaluate(condition, node, graph)
        self._results[key] = result
        return result

    def _evaluate(
        self, condition: "Condition", node: "Node", graph: "InstanceGraph"
    ) -> bool:
        if isinstance(condition, AndCondition):
            return all(
                self.matches(operand, node, graph)
                for operand in condition.operands
            )
        if isinstance(condition, OrCondition):
            return any(
                self.matches(operand, node, graph)
                for operand in condition.operands
            )
        if isinstance(condition, NotCondition):
            return not self.matches(condition.operand, node, graph)
        self.evaluations += 1
        return condition.matches(node, graph)

    def clear(self) -> None:
        self._results.clear()


def _format_value(value: Any) -> str:
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return str(value)


@dataclass(frozen=True)
class AttributeCompare(Condition):
    """``attribute <op> value`` with NULL never matching."""

    attribute: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise TgmError(f"unknown comparison operator {self.op!r}")

    def matches(self, node: "Node", graph: "InstanceGraph") -> bool:
        actual = node.attributes.get(self.attribute)
        if actual is None or self.value is None:
            return False
        if self.op in ("<", "<=", ">", ">="):
            try:
                return _OPS[self.op](actual, self.value)
            except TypeError:
                return False
        return _OPS[self.op](actual, self.value)

    def index_probes(self) -> tuple[tuple[str, tuple[Any, ...]], ...]:
        if self.op == "=" and self.value is not None:
            return ((self.attribute, (self.value,)),)
        return ()

    def describe(self) -> str:
        return f"{self.attribute} {self.op} {_format_value(self.value)}"


@dataclass(frozen=True)
class AttributeLike(Condition):
    """SQL-LIKE pattern over an attribute, case-insensitive."""

    attribute: str
    pattern: str
    negate: bool = False

    def _regex(self) -> re.Pattern[str]:
        from repro.relational.expressions import _compile_like

        return _compile_like(self.pattern)

    def matches(self, node: "Node", graph: "InstanceGraph") -> bool:
        actual = node.attributes.get(self.attribute)
        if actual is None:
            return False
        matched = bool(self._regex().match(str(actual)))
        return not matched if self.negate else matched

    def describe(self) -> str:
        keyword = "not like" if self.negate else "like"
        return f"{self.attribute} {keyword} {_format_value(self.pattern)}"


@dataclass(frozen=True)
class AttributeIn(Condition):
    attribute: str
    values: tuple[Any, ...]

    def matches(self, node: "Node", graph: "InstanceGraph") -> bool:
        actual = node.attributes.get(self.attribute)
        return actual is not None and actual in self.values

    def index_probes(self) -> tuple[tuple[str, tuple[Any, ...]], ...]:
        values = tuple(v for v in self.values if v is not None)
        if values:
            return ((self.attribute, values),)
        return ()

    def describe(self) -> str:
        rendered = ", ".join(_format_value(v) for v in self.values)
        return f"{self.attribute} in ({rendered})"


@dataclass(frozen=True)
class NodeIs(Condition):
    """Identity selection ``{u | u = vk}`` used by Single / SeeAll (Sec 6.1).

    ``label`` is carried along purely for display, so the history view can
    show ``Conferences = 'SIGMOD'`` instead of an opaque node id.
    """

    node_id: int
    label: str = ""

    def matches(self, node: "Node", graph: "InstanceGraph") -> bool:
        return node.node_id == self.node_id

    def node_probes(self) -> tuple[int, ...] | None:
        return (self.node_id,)

    def cache_token(self) -> str:
        # describe() shows the label for the history panel, but two nodes
        # can share a label; the cache must key on identity.
        return f"node #{self.node_id}"

    def describe(self) -> str:
        if self.label:
            return f"= {_format_value(self.label)}"
        return f"node #{self.node_id}"


@dataclass(frozen=True)
class NodeIn(Condition):
    """Identity selection over a *set* of nodes.

    The set-operations module uses this to re-derive cells for transplanted
    rows: the source pattern is re-executed restricted to exactly the
    transplanted primary nodes (one membership test per candidate instead of
    an OR-chain of :class:`NodeIs`).
    """

    node_ids: frozenset[int]

    def __init__(self, node_ids: Iterable[int]) -> None:
        object.__setattr__(self, "node_ids", frozenset(node_ids))

    def matches(self, node: "Node", graph: "InstanceGraph") -> bool:
        return node.node_id in self.node_ids

    def node_probes(self) -> tuple[int, ...] | None:
        return tuple(sorted(self.node_ids))

    def describe(self) -> str:
        rendered = ", ".join(str(i) for i in sorted(self.node_ids))
        return f"node in {{{rendered}}}"


@dataclass(frozen=True)
class LabelLike(Condition):
    """LIKE over the node's *label attribute* (whatever it is)."""

    pattern: str

    def matches(self, node: "Node", graph: "InstanceGraph") -> bool:
        label = node.label(graph.schema)
        if label is None:
            return False
        return AttributeLike("_", self.pattern)._regex().match(str(label)) is not None

    def describe(self) -> str:
        return f"label like {_format_value(self.pattern)}"


@dataclass(frozen=True)
class NeighborSatisfies(Condition):
    """Semijoin: the node has ≥1 ``edge_type`` neighbor matching ``inner``.

    This implements the Section 6.1 rule that filtering by the labels of a
    neighbor column "is translated into subqueries": the ETable keeps its
    primary node type, and the condition becomes EXISTS(...) in SQL.
    """

    edge_type: str
    inner: Condition

    def matches(self, node: "Node", graph: "InstanceGraph") -> bool:
        return any(
            self.inner.matches(neighbor, graph)
            for neighbor in graph.neighbors(node.node_id, self.edge_type)
        )

    def cache_token(self) -> str:
        return f"any {self.edge_type} ({self.inner.cache_token()})"

    def describe(self) -> str:
        return f"any {self.edge_type} ({self.inner.describe()})"


@dataclass(frozen=True)
class AndCondition(Condition):
    operands: tuple[Condition, ...]

    def matches(self, node: "Node", graph: "InstanceGraph") -> bool:
        return all(operand.matches(node, graph) for operand in self.operands)

    def index_probes(self) -> tuple[tuple[str, tuple[Any, ...]], ...]:
        out: list[tuple[str, tuple[Any, ...]]] = []
        for operand in self.operands:
            out.extend(operand.index_probes())
        return tuple(out)

    def node_probes(self) -> tuple[int, ...] | None:
        constrained = [
            probes
            for probes in (op.node_probes() for op in self.operands)
            if probes is not None
        ]
        if not constrained:
            return None
        ids = set(constrained[0])
        for probes in constrained[1:]:
            ids &= set(probes)
        return tuple(sorted(ids))

    def cache_token(self) -> str:
        return " & ".join(operand.cache_token() for operand in self.operands)

    def describe(self) -> str:
        return " & ".join(operand.describe() for operand in self.operands)


@dataclass(frozen=True)
class OrCondition(Condition):
    operands: tuple[Condition, ...]

    def matches(self, node: "Node", graph: "InstanceGraph") -> bool:
        return any(operand.matches(node, graph) for operand in self.operands)

    def cache_token(self) -> str:
        return " | ".join(f"({operand.cache_token()})" for operand in self.operands)

    def describe(self) -> str:
        return " | ".join(f"({operand.describe()})" for operand in self.operands)


@dataclass(frozen=True)
class NotCondition(Condition):
    operand: Condition

    def matches(self, node: "Node", graph: "InstanceGraph") -> bool:
        return not self.operand.matches(node, graph)

    def cache_token(self) -> str:
        return f"not ({self.operand.cache_token()})"

    def describe(self) -> str:
        return f"not ({self.operand.describe()})"


def conjoin_conditions(conditions: Iterable[Condition]) -> Condition | None:
    """AND conditions together, flattening; None for an empty iterable."""
    flat: list[Condition] = []
    for condition in conditions:
        if isinstance(condition, AndCondition):
            flat.extend(condition.operands)
        else:
            flat.append(condition)
    if not flat:
        return None
    if len(flat) == 1:
        return flat[0]
    return AndCondition(tuple(flat))
