"""Selection conditions over graph nodes.

These are the ``C`` components of an ETable query pattern (Definition 3):
predicates evaluated against a node's attributes, its label, its identity, or
— for the Filter-by-neighbor-label action of Section 6.1 — the labels of its
direct neighbors (a semijoin, translated to an EXISTS subquery in SQL).

Every condition renders to a human-readable string via ``describe()``; the
history view shows those strings (e.g. ``acronym = 'SIGMOD'``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable

from repro.errors import TgmError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.tgm.instance_graph import InstanceGraph, Node

_OPS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class Condition:
    """Base class. ``matches`` gets the node and the instance graph."""

    def matches(self, node: "Node", graph: "InstanceGraph") -> bool:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def __str__(self) -> str:
        return self.describe()


def _format_value(value: Any) -> str:
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return str(value)


@dataclass(frozen=True)
class AttributeCompare(Condition):
    """``attribute <op> value`` with NULL never matching."""

    attribute: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise TgmError(f"unknown comparison operator {self.op!r}")

    def matches(self, node: "Node", graph: "InstanceGraph") -> bool:
        actual = node.attributes.get(self.attribute)
        if actual is None or self.value is None:
            return False
        if self.op in ("<", "<=", ">", ">="):
            try:
                return _OPS[self.op](actual, self.value)
            except TypeError:
                return False
        return _OPS[self.op](actual, self.value)

    def describe(self) -> str:
        return f"{self.attribute} {self.op} {_format_value(self.value)}"


@dataclass(frozen=True)
class AttributeLike(Condition):
    """SQL-LIKE pattern over an attribute, case-insensitive."""

    attribute: str
    pattern: str
    negate: bool = False

    def _regex(self) -> re.Pattern[str]:
        from repro.relational.expressions import _compile_like

        return _compile_like(self.pattern)

    def matches(self, node: "Node", graph: "InstanceGraph") -> bool:
        actual = node.attributes.get(self.attribute)
        if actual is None:
            return False
        matched = bool(self._regex().match(str(actual)))
        return not matched if self.negate else matched

    def describe(self) -> str:
        keyword = "not like" if self.negate else "like"
        return f"{self.attribute} {keyword} {_format_value(self.pattern)}"


@dataclass(frozen=True)
class AttributeIn(Condition):
    attribute: str
    values: tuple[Any, ...]

    def matches(self, node: "Node", graph: "InstanceGraph") -> bool:
        actual = node.attributes.get(self.attribute)
        return actual is not None and actual in self.values

    def describe(self) -> str:
        rendered = ", ".join(_format_value(v) for v in self.values)
        return f"{self.attribute} in ({rendered})"


@dataclass(frozen=True)
class NodeIs(Condition):
    """Identity selection ``{u | u = vk}`` used by Single / SeeAll (Sec 6.1).

    ``label`` is carried along purely for display, so the history view can
    show ``Conferences = 'SIGMOD'`` instead of an opaque node id.
    """

    node_id: int
    label: str = ""

    def matches(self, node: "Node", graph: "InstanceGraph") -> bool:
        return node.node_id == self.node_id

    def describe(self) -> str:
        if self.label:
            return f"= {_format_value(self.label)}"
        return f"node #{self.node_id}"


@dataclass(frozen=True)
class NodeIn(Condition):
    """Identity selection over a *set* of nodes.

    The set-operations module uses this to re-derive cells for transplanted
    rows: the source pattern is re-executed restricted to exactly the
    transplanted primary nodes (one membership test per candidate instead of
    an OR-chain of :class:`NodeIs`).
    """

    node_ids: frozenset[int]

    def __init__(self, node_ids: Iterable[int]) -> None:
        object.__setattr__(self, "node_ids", frozenset(node_ids))

    def matches(self, node: "Node", graph: "InstanceGraph") -> bool:
        return node.node_id in self.node_ids

    def describe(self) -> str:
        rendered = ", ".join(str(i) for i in sorted(self.node_ids))
        return f"node in {{{rendered}}}"


@dataclass(frozen=True)
class LabelLike(Condition):
    """LIKE over the node's *label attribute* (whatever it is)."""

    pattern: str

    def matches(self, node: "Node", graph: "InstanceGraph") -> bool:
        label = node.label(graph.schema)
        if label is None:
            return False
        return AttributeLike("_", self.pattern)._regex().match(str(label)) is not None

    def describe(self) -> str:
        return f"label like {_format_value(self.pattern)}"


@dataclass(frozen=True)
class NeighborSatisfies(Condition):
    """Semijoin: the node has ≥1 ``edge_type`` neighbor matching ``inner``.

    This implements the Section 6.1 rule that filtering by the labels of a
    neighbor column "is translated into subqueries": the ETable keeps its
    primary node type, and the condition becomes EXISTS(...) in SQL.
    """

    edge_type: str
    inner: Condition

    def matches(self, node: "Node", graph: "InstanceGraph") -> bool:
        return any(
            self.inner.matches(neighbor, graph)
            for neighbor in graph.neighbors(node.node_id, self.edge_type)
        )

    def describe(self) -> str:
        return f"any {self.edge_type} ({self.inner.describe()})"


@dataclass(frozen=True)
class AndCondition(Condition):
    operands: tuple[Condition, ...]

    def matches(self, node: "Node", graph: "InstanceGraph") -> bool:
        return all(operand.matches(node, graph) for operand in self.operands)

    def describe(self) -> str:
        return " & ".join(operand.describe() for operand in self.operands)


@dataclass(frozen=True)
class OrCondition(Condition):
    operands: tuple[Condition, ...]

    def matches(self, node: "Node", graph: "InstanceGraph") -> bool:
        return any(operand.matches(node, graph) for operand in self.operands)

    def describe(self) -> str:
        return " | ".join(f"({operand.describe()})" for operand in self.operands)


@dataclass(frozen=True)
class NotCondition(Condition):
    operand: Condition

    def matches(self, node: "Node", graph: "InstanceGraph") -> bool:
        return not self.operand.matches(node, graph)

    def describe(self) -> str:
        return f"not ({self.operand.describe()})"


def conjoin_conditions(conditions: Iterable[Condition]) -> Condition | None:
    """AND conditions together, flattening; None for an empty iterable."""
    flat: list[Condition] = []
    for condition in conditions:
        if isinstance(condition, AndCondition):
            flat.extend(condition.operands)
        else:
            flat.append(condition)
    if not flat:
        return None
    if len(flat) == 1:
        return flat[0]
    return AndCondition(tuple(flat))
