"""The TGDB schema graph (Definition 1 of the paper).

A schema graph ``GS = (T, P)`` holds node types (entity types) and edge types
(relationship types). Each node type ``τ = (α, A, β)`` has a name, a set of
single-valued attributes, and a *label attribute* used to display node
instances (the hyperlink text of entity references). Edge types are directed;
every non-self-loop edge type has a *reverse twin* so relationships can be
browsed from both ends (Appendix A, step 2 of the FK translation).

Node and edge types carry a :class:`TypeCategory` recording *how* they were
derived from the relational schema — the paper's Table 1 taxonomy — which the
Table 1 bench reproduces directly from these tags.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import SchemaError, TgmError, UnknownEdgeType, UnknownNodeType


class NodeTypeCategory(enum.Enum):
    """How a node type was derived from the relational schema (Table 1)."""

    ENTITY = "entity table"
    MULTIVALUED_ATTRIBUTE = "multi-valued attribute"
    CATEGORICAL_ATTRIBUTE = "single-valued categorical attribute"


class EdgeTypeCategory(enum.Enum):
    """How an edge type was derived from the relational schema (Table 1)."""

    ONE_TO_MANY = "one-to-many relationship"
    MANY_TO_MANY = "many-to-many relationship"
    MULTIVALUED_ATTRIBUTE = "multi-valued attribute"
    CATEGORICAL_ATTRIBUTE = "single-valued categorical attribute"


@dataclass(frozen=True)
class NodeType:
    """A node (entity) type: ``τi = (αi, Ai, βi)``."""

    name: str
    attributes: tuple[str, ...]
    label_attribute: str
    category: NodeTypeCategory = NodeTypeCategory.ENTITY

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("node type needs a non-empty name")
        if self.label_attribute not in self.attributes:
            raise SchemaError(
                f"label attribute {self.label_attribute!r} is not an attribute "
                f"of node type {self.name!r}"
            )

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class EdgeType:
    """A directed edge (relationship) type with an optional reverse twin.

    ``name`` is unique within the schema graph. ``display_name`` is what the
    UI shows as a column header (usually the target type's name, possibly
    disambiguated, e.g. ``Papers (referenced)``).
    """

    name: str
    source: str
    target: str
    display_name: str
    category: EdgeTypeCategory
    reverse_name: str | None = None
    attributes: tuple[str, ...] = ()

    @property
    def is_self_loop(self) -> bool:
        return self.source == self.target


class SchemaGraph:
    """A typed-graph-database schema: node types plus directed edge types."""

    def __init__(self, name: str = "tgdb") -> None:
        self.name = name
        self._node_types: dict[str, NodeType] = {}
        self._edge_types: dict[str, EdgeType] = {}
        # source node type -> [edge type names], insertion-ordered
        self._edges_from: dict[str, list[str]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node_type(self, node_type: NodeType) -> NodeType:
        if node_type.name in self._node_types:
            raise SchemaError(f"duplicate node type {node_type.name!r}")
        self._node_types[node_type.name] = node_type
        self._edges_from.setdefault(node_type.name, [])
        return node_type

    def add_edge_type(
        self,
        name: str,
        source: str,
        target: str,
        category: EdgeTypeCategory,
        display_name: str | None = None,
        attributes: tuple[str, ...] = (),
    ) -> EdgeType:
        """Register one directed edge type (no reverse twin is created)."""
        if name in self._edge_types:
            raise SchemaError(f"duplicate edge type {name!r}")
        for endpoint in (source, target):
            if endpoint not in self._node_types:
                raise UnknownNodeType(
                    f"edge type {name!r} references unknown node type {endpoint!r}"
                )
        edge_type = EdgeType(
            name=name,
            source=source,
            target=target,
            display_name=display_name or name,
            category=category,
            attributes=attributes,
        )
        self._edge_types[name] = edge_type
        self._edges_from[source].append(name)
        return edge_type

    def add_edge_type_pair(
        self,
        forward_name: str,
        reverse_name: str,
        source: str,
        target: str,
        category: EdgeTypeCategory,
        forward_display: str | None = None,
        reverse_display: str | None = None,
        attributes: tuple[str, ...] = (),
    ) -> tuple[EdgeType, EdgeType]:
        """Register a forward/reverse twin pair (Appendix A translation step 2).

        Both directions are materialized even for self-loops (citations need
        distinct "referenced" and "referencing" directions).
        """
        forward = self.add_edge_type(
            forward_name, source, target, category, forward_display, attributes
        )
        reverse = self.add_edge_type(
            reverse_name, target, source, category, reverse_display, attributes
        )
        self._edge_types[forward_name] = EdgeType(
            name=forward.name,
            source=forward.source,
            target=forward.target,
            display_name=forward.display_name,
            category=forward.category,
            reverse_name=reverse_name,
            attributes=attributes,
        )
        self._edge_types[reverse_name] = EdgeType(
            name=reverse.name,
            source=reverse.source,
            target=reverse.target,
            display_name=reverse.display_name,
            category=reverse.category,
            reverse_name=forward_name,
            attributes=attributes,
        )
        return self._edge_types[forward_name], self._edge_types[reverse_name]

    def unique_edge_name(self, base: str) -> str:
        """A name not yet taken, derived from ``base`` ("slightly different
        label" rule of Appendix A)."""
        if base not in self._edge_types:
            return base
        counter = 2
        while f"{base} #{counter}" in self._edge_types:
            counter += 1
        return f"{base} #{counter}"

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def node_types(self) -> list[NodeType]:
        return list(self._node_types.values())

    @property
    def edge_types(self) -> list[EdgeType]:
        return list(self._edge_types.values())

    @property
    def entity_types(self) -> list[NodeType]:
        """Node types shown in the default table list of the UI (Section 6)."""
        return [
            node_type
            for node_type in self._node_types.values()
            if node_type.category is NodeTypeCategory.ENTITY
        ]

    def node_type(self, name: str) -> NodeType:
        try:
            return self._node_types[name]
        except KeyError:
            raise UnknownNodeType(f"no node type named {name!r}") from None

    def has_node_type(self, name: str) -> bool:
        return name in self._node_types

    def edge_type(self, name: str) -> EdgeType:
        try:
            return self._edge_types[name]
        except KeyError:
            raise UnknownEdgeType(f"no edge type named {name!r}") from None

    def has_edge_type(self, name: str) -> bool:
        return name in self._edge_types

    def edges_from(self, node_type_name: str) -> list[EdgeType]:
        """Edge types whose source is ``node_type_name``, in creation order.

        These are exactly the *neighbor node columns* (Ah) that an ETable
        with this primary node type exposes (Section 5.4.2)."""
        if node_type_name not in self._node_types:
            raise UnknownNodeType(f"no node type named {node_type_name!r}")
        return [self._edge_types[name] for name in self._edges_from[node_type_name]]

    def edges_between(self, source: str, target: str) -> list[EdgeType]:
        return [
            edge_type
            for edge_type in self._edge_types.values()
            if edge_type.source == source and edge_type.target == target
        ]

    def reverse_of(self, edge_type_name: str) -> EdgeType:
        edge_type = self.edge_type(edge_type_name)
        if edge_type.reverse_name is None:
            raise TgmError(f"edge type {edge_type_name!r} has no reverse twin")
        return self.edge_type(edge_type.reverse_name)

    # ------------------------------------------------------------------
    # Rendering (Figure 4)
    # ------------------------------------------------------------------
    def to_ascii(self) -> str:
        """A textual rendering of the schema graph, one edge per line."""
        lines = [f"Schema graph '{self.name}'", "Node types:"]
        for node_type in self._node_types.values():
            label = f"  [{node_type.name}]"
            if node_type.category is not NodeTypeCategory.ENTITY:
                label += f"  ({node_type.category.value})"
            lines.append(label)
        lines.append("Edge types (forward direction of each twin pair):")
        seen_reverse: set[str] = set()
        for edge_type in self._edge_types.values():
            if edge_type.name in seen_reverse:
                continue
            if edge_type.reverse_name is not None:
                seen_reverse.add(edge_type.reverse_name)
            lines.append(
                f"  [{edge_type.source}] --{edge_type.display_name}--> "
                f"[{edge_type.target}]"
            )
        return "\n".join(lines)
