"""The TGDB instance graph (Definition 2 of the paper).

Nodes are entities with attribute values; edges are relationships typed by
the schema graph. The graph maintains adjacency indexes in *both* directions
of every edge-type twin pair, so a neighbor lookup — the operation behind
every entity-reference cell in an ETable — is a hash probe plus a list scan.

Beyond adjacency, the graph keeps two families of *secondary indexes* built
lazily and invalidated on mutation:

* an attribute-equality hash index per ``(type, attribute)`` pair, turning
  ``attribute = value`` selections into probes instead of full type scans;
* a label index per type (the attribute index over the type's label
  attribute), backing ``find_by_label`` and Single/SeeAll-style lookups.

A :class:`GraphStatistics` summary (per-type cardinalities, per-edge-type
degree histograms, per-attribute distinct counts) feeds the query planner's
selectivity and join-fanout estimates (``repro.core.planner``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

from repro.errors import GraphIntegrityError, TgmError, UnknownNodeType
from repro.tgm.conditions import Condition
from repro.tgm.schema_graph import EdgeType, NodeType, SchemaGraph


@dataclass
class Node:
    """One entity instance.

    ``node_id`` is globally unique within the graph. ``source_key`` records
    the originating relational primary key (or attribute value, for
    multivalued/categorical nodes), which keeps translation reversible.
    """

    node_id: int
    type_name: str
    attributes: dict[str, Any]
    source_key: Any = None

    def label(self, schema: SchemaGraph) -> Any:
        """The display label: ``label(v) = v[βi]`` (Definition 2)."""
        node_type = schema.node_type(self.type_name)
        return self.attributes.get(node_type.label_attribute)

    def __hash__(self) -> int:
        return hash(self.node_id)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Node) and other.node_id == self.node_id


@dataclass(frozen=True)
class Edge:
    """One relationship instance (stored once, in the forward direction)."""

    type_name: str
    source_id: int
    target_id: int
    attributes: tuple[tuple[str, Any], ...] = ()


@dataclass(frozen=True)
class EdgeTypeStats:
    """Degree summary of one edge-type direction (for join-fanout estimates).

    ``pairs`` counts (source, target) adjacency entries; ``sources`` counts
    distinct source nodes with at least one such edge; ``histogram`` maps
    out-degree -> number of source nodes with that degree.
    """

    pairs: int
    sources: int
    max_degree: int
    histogram: dict[int, int] = field(default_factory=dict)

    @property
    def avg_degree(self) -> float:
        return self.pairs / self.sources if self.sources else 0.0


class GraphStatistics:
    """Cheap summary statistics over one :class:`InstanceGraph` snapshot.

    Built once per graph version (the graph drops its cached statistics on
    mutation); all lookups afterwards are dictionary probes. The planner
    uses these for selectivity estimation, never for correctness.
    """

    def __init__(self, graph: "InstanceGraph") -> None:
        self.graph = graph
        self.type_cardinalities: dict[str, int] = {
            name: len(ids) for name, ids in graph._nodes_by_type.items()
        }
        per_edge: dict[str, dict[int, int]] = {}
        for (node_id, edge_name), targets in graph._adjacency.items():
            histogram = per_edge.setdefault(edge_name, {})
            degree = len(targets)
            histogram[degree] = histogram.get(degree, 0) + 1
        self.edge_stats: dict[str, EdgeTypeStats] = {}
        for edge_name, histogram in per_edge.items():
            pairs = sum(degree * count for degree, count in histogram.items())
            sources = sum(histogram.values())
            self.edge_stats[edge_name] = EdgeTypeStats(
                pairs=pairs,
                sources=sources,
                max_degree=max(histogram),
                histogram=dict(histogram),
            )
        self._distinct_counts: dict[tuple[str, str], int] = {}

    def cardinality(self, type_name: str) -> int:
        return self.type_cardinalities.get(type_name, 0)

    def edge_type_stats(self, edge_type_name: str) -> EdgeTypeStats:
        return self.edge_stats.get(
            edge_type_name, EdgeTypeStats(pairs=0, sources=0, max_degree=0)
        )

    def avg_fanout(self, edge_type_name: str, source_type: str) -> float:
        """Expected number of ``edge_type`` neighbors per *source-type node*
        (zero-degree nodes included — this is the join-growth factor)."""
        cardinality = self.cardinality(source_type)
        if cardinality == 0:
            return 0.0
        return self.edge_type_stats(edge_type_name).pairs / cardinality

    def distinct_count(self, type_name: str, attribute: str) -> int:
        """Distinct non-NULL values of one attribute (computed lazily)."""
        key = (type_name, attribute)
        cached = self._distinct_counts.get(key)
        if cached is None:
            cached = len(self.graph.attribute_index(type_name, attribute))
            self._distinct_counts[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Per-bucket refinements (ROADMAP: cost model refinement)
    # ------------------------------------------------------------------
    def equality_count(self, type_name: str, attribute: str,
                       value: Any) -> int | None:
        """Exact number of nodes with ``attribute == value``.

        The attribute hash indexes already hold every equality bucket, so
        an equality selectivity can be *exact* instead of the uniform
        ``1/distinct`` average — the difference between estimating 1 row
        and 500 for a skewed categorical value. Returns ``None`` for
        unhashable probe values (callers fall back to the average).
        """
        index = self.graph.attribute_index(type_name, attribute)
        try:
            return len(index.get(value, ()))
        except TypeError:  # unhashable probe value
            return None

    def equality_fraction(self, type_name: str, attribute: str,
                          value: Any) -> float:
        """Exact fraction of ``type_name`` nodes with ``attribute == value``
        (falls back to the ``1/distinct`` average for unhashable values)."""
        cardinality = max(1, self.cardinality(type_name))
        count = self.equality_count(type_name, attribute, value)
        if count is None:
            return 1.0 / max(1, self.distinct_count(type_name, attribute))
        return count / cardinality

    def neighbor_match_probability(
        self, edge_type_name: str, inner_selectivity: float
    ) -> float:
        """P(a participating source node has ≥ 1 neighbor matching a
        predicate of selectivity ``inner_selectivity``).

        Uses the per-edge degree *histogram* instead of the average degree:
        ``1 - Σ_d hist(d)/sources · (1-s)^d``. For skewed edges (a few hubs,
        many degree-1 nodes) the average-degree estimate badly overstates
        how many low-degree nodes match; the histogram form is exact under
        the independence assumption.
        """
        stats = self.edge_type_stats(edge_type_name)
        if stats.sources == 0:
            return 0.0
        survive = max(0.0, min(1.0, 1.0 - inner_selectivity))
        p_no_match = sum(
            count * survive ** degree
            for degree, count in stats.histogram.items()
        ) / stats.sources
        return 1.0 - p_no_match

    # ------------------------------------------------------------------
    # Persistence (ROADMAP: cross-session statistics persistence)
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """A JSON-able snapshot of every computed statistic.

        Persisted alongside the Section 6.2 four-table storage so a
        restarted service keeps its selectivity model warm instead of
        re-scanning the graph (see ``repro.tgm.storage.save_statistics``).
        Histogram keys become strings (JSON objects key on strings);
        lazily-computed distinct counts are exported as-is — whatever this
        process has already paid for, the next one inherits.
        """
        return {
            "type_cardinalities": dict(self.type_cardinalities),
            "edge_stats": {
                name: {
                    "pairs": stats.pairs,
                    "sources": stats.sources,
                    "max_degree": stats.max_degree,
                    "histogram": {
                        str(degree): count
                        for degree, count in stats.histogram.items()
                    },
                }
                for name, stats in self.edge_stats.items()
            },
            "distinct_counts": [
                [type_name, attribute, count]
                for (type_name, attribute), count
                in self._distinct_counts.items()
            ],
        }

    @classmethod
    def from_payload(cls, graph: "InstanceGraph",
                     payload: dict) -> "GraphStatistics":
        """Rebuild statistics from a persisted payload without scanning
        ``graph`` — the whole point of persisting them."""
        stats = cls.__new__(cls)
        stats.graph = graph
        stats.type_cardinalities = dict(payload["type_cardinalities"])
        stats.edge_stats = {
            name: EdgeTypeStats(
                pairs=entry["pairs"],
                sources=entry["sources"],
                max_degree=entry["max_degree"],
                histogram={
                    int(degree): count
                    for degree, count in entry["histogram"].items()
                },
            )
            for name, entry in payload["edge_stats"].items()
        }
        stats._distinct_counts = {
            (type_name, attribute): count
            for type_name, attribute, count in payload["distinct_counts"]
        }
        return stats


class InstanceGraph:
    """A typed instance graph ``GI = (V, E)`` conforming to a schema graph."""

    def __init__(self, schema: SchemaGraph) -> None:
        self.schema = schema
        # Logical graph state: every mutation must bump self._version (or
        # go through _invalidate_indexes) — checked statically by RPA105.
        self._nodes: dict[int, Node] = {}  # versioned-state
        self._nodes_by_type: dict[str, list[int]] = {  # versioned-state
            node_type.name: [] for node_type in schema.node_types
        }
        self._edges: list[Edge] = []  # versioned-state
        # (node_id, edge_type_name) -> [neighbor node ids]
        self._adjacency: dict[tuple[int, str], list[int]] = {}  # versioned-state
        # (type_name, source_key) -> node_id, for translation lookups
        self._by_source_key: dict[tuple[str, Any], int] = {}  # versioned-state
        self._next_id = 1
        # Lazily-built secondary indexes and statistics; dropped on mutation.
        # (type_name, attribute) -> value -> [node ids, insertion order]
        self._attribute_indexes: dict[
            tuple[str, str], dict[Any, list[int]]
        ] = {}
        self._statistics: GraphStatistics | None = None
        # Monotonic mutation counter so external caches (statistics users,
        # the transform layer's entity-ref cache) can detect staleness.
        self._version = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        type_name: str,
        attributes: dict[str, Any],
        source_key: Any = None,
    ) -> Node:
        node_type = self.schema.node_type(type_name)
        unknown = set(attributes) - set(node_type.attributes)
        if unknown:
            raise GraphIntegrityError(
                f"node of type {type_name!r} has undeclared attributes "
                f"{sorted(unknown)!r}"
            )
        node = Node(self._next_id, type_name, dict(attributes), source_key)
        self._next_id += 1
        self._nodes[node.node_id] = node
        self._nodes_by_type[type_name].append(node.node_id)
        self._invalidate_indexes(type_name)
        if source_key is not None:
            key = (type_name, source_key)
            if key in self._by_source_key:
                raise GraphIntegrityError(
                    f"duplicate source key {source_key!r} for type {type_name!r}"
                )
            self._by_source_key[key] = node.node_id
        return node

    def add_edge(
        self,
        edge_type_name: str,
        source_id: int,
        target_id: int,
        attributes: dict[str, Any] | None = None,
    ) -> Edge:
        """Add one edge; adjacency is indexed for the reverse twin too."""
        edge_type = self.schema.edge_type(edge_type_name)
        source = self.node(source_id)
        target = self.node(target_id)
        if source.type_name != edge_type.source:
            raise GraphIntegrityError(
                f"edge {edge_type_name!r} expects source type "
                f"{edge_type.source!r}, got {source.type_name!r}"
            )
        if target.type_name != edge_type.target:
            raise GraphIntegrityError(
                f"edge {edge_type_name!r} expects target type "
                f"{edge_type.target!r}, got {target.type_name!r}"
            )
        edge = Edge(
            edge_type_name,
            source_id,
            target_id,
            tuple(sorted((attributes or {}).items())),
        )
        self._edges.append(edge)
        self._adjacency.setdefault((source_id, edge_type_name), []).append(target_id)
        if edge_type.reverse_name is not None:
            self._adjacency.setdefault(
                (target_id, edge_type.reverse_name), []
            ).append(source_id)
        self._version += 1
        self._statistics = None  # degree histograms are stale
        return edge

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def node(self, node_id: int) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise TgmError(f"no node with id {node_id}") from None

    def has_node(self, node_id: int) -> bool:
        return node_id in self._nodes

    def node_by_source_key(self, type_name: str, source_key: Any) -> Node:
        """Find the node translated from a given relational key (or value)."""
        node_id = self._by_source_key.get((type_name, source_key))
        if node_id is None:
            raise TgmError(
                f"no node of type {type_name!r} with source key {source_key!r}"
            )
        return self._nodes[node_id]

    def nodes_of_type(self, type_name: str) -> list[Node]:
        if type_name not in self._nodes_by_type:
            raise UnknownNodeType(f"no node type named {type_name!r}")
        return [self._nodes[node_id] for node_id in self._nodes_by_type[type_name]]

    def node_ids_of_type(self, type_name: str) -> list[int]:
        if type_name not in self._nodes_by_type:
            raise UnknownNodeType(f"no node type named {type_name!r}")
        return list(self._nodes_by_type[type_name])

    def neighbors(self, node_id: int, edge_type_name: str) -> list[Node]:
        """Direct neighbors along one edge type — the quick neighbor-lookup
        the paper highlights for entity-reference cells."""
        self.schema.edge_type(edge_type_name)
        ids = self._adjacency.get((node_id, edge_type_name), [])
        return [self._nodes[neighbor_id] for neighbor_id in ids]

    def neighbor_ids(self, node_id: int, edge_type_name: str) -> list[int]:
        return list(self._adjacency.get((node_id, edge_type_name), []))

    def neighbors_view(
        self, node_id: int, edge_type_name: str
    ) -> Sequence[int]:
        """The internal adjacency list, without the defensive copy.

        Hot-path counterpart of :meth:`neighbor_ids` for the executor's join
        loops; callers must treat the returned sequence as read-only.
        """
        return self._adjacency.get((node_id, edge_type_name), ())

    def degree(self, node_id: int, edge_type_name: str) -> int:
        return len(self._adjacency.get((node_id, edge_type_name), []))

    def find_nodes(
        self, type_name: str, condition: Condition | None = None
    ) -> list[Node]:
        """All nodes of a type, optionally filtered by a condition."""
        nodes = self.nodes_of_type(type_name)
        if condition is None:
            return nodes
        return [node for node in nodes if condition.matches(node, self)]

    def find_by_label(self, type_name: str, label: Any) -> Node | None:
        """First node of ``type_name`` whose label equals ``label``.

        Rides the label index: a hash probe instead of a type scan. Buckets
        preserve insertion order, so "first" matches the legacy linear scan.
        """
        label_attr = self.schema.node_type(type_name).label_attribute
        if label is not None:
            try:
                ids = self.label_index(type_name).get(label)
            except TypeError:
                ids = None  # unhashable label value: fall back to scanning
            else:
                return self._nodes[ids[0]] if ids else None
        # NULL probes (the index omits NULLs) and unhashable values keep the
        # legacy scan semantics.
        for node in self.nodes_of_type(type_name):
            if node.attributes.get(label_attr) == label:
                return node
        return None

    # ------------------------------------------------------------------
    # Secondary indexes (lazy; invalidated by add_node / add_edge)
    # ------------------------------------------------------------------
    def attribute_index(
        self, type_name: str, attribute: str
    ) -> dict[Any, list[int]]:
        """Hash index ``value -> [node ids]`` for one ``(type, attribute)``.

        Built on first use and cached until the type gains a node. NULLs and
        unhashable values are omitted (an equality probe can never match
        NULL, and unhashable attribute values fall back to scans upstream).
        Buckets keep node-insertion order.
        """
        key = (type_name, attribute)
        index = self._attribute_indexes.get(key)
        if index is None:
            self.schema.node_type(type_name)  # raises UnknownNodeType
            index = {}
            for node_id in self._nodes_by_type.get(type_name, ()):
                value = self._nodes[node_id].attributes.get(attribute)
                if value is None:
                    continue
                try:
                    index.setdefault(value, []).append(node_id)
                except TypeError:
                    continue
            self._attribute_indexes[key] = index
        return index

    def label_index(self, type_name: str) -> dict[Any, list[int]]:
        """The attribute index over the type's label attribute."""
        label_attr = self.schema.node_type(type_name).label_attribute
        return self.attribute_index(type_name, label_attr)

    def find_ids_by_attribute(
        self, type_name: str, attribute: str, value: Any
    ) -> list[int]:
        """Node ids with ``attribute == value``, via the hash index."""
        try:
            return list(self.attribute_index(type_name, attribute).get(value, ()))
        except TypeError:  # unhashable probe value
            return [
                node.node_id
                for node in self.nodes_of_type(type_name)
                if node.attributes.get(attribute) == value
            ]

    @property
    def version(self) -> int:
        """Bumped on every mutation; caches key their entries by it."""
        return self._version

    def _invalidate_indexes(self, type_name: str) -> None:
        self._version += 1
        self._statistics = None
        if self._attribute_indexes:
            stale = [key for key in self._attribute_indexes if key[0] == type_name]
            for key in stale:
                del self._attribute_indexes[key]

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def statistics(self) -> GraphStatistics:
        """Summary statistics for the planner (cached per graph version)."""
        if self._statistics is None:
            self._statistics = GraphStatistics(self)
        return self._statistics

    def install_statistics(self, statistics: GraphStatistics) -> None:
        """Adopt persisted statistics instead of scanning the graph.

        The caller asserts the statistics describe *this* graph's current
        contents (the storage layer loads them from the same database the
        graph came from). Like the lazily-built version, they are dropped
        on the next mutation.
        """
        if statistics.graph is not self:
            statistics.graph = self
        self._statistics = statistics

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        return len(self._edges)

    def edges(self) -> Iterator[Edge]:
        return iter(self._edges)

    def type_counts(self) -> dict[str, int]:
        return {
            type_name: len(ids) for type_name, ids in self._nodes_by_type.items()
        }

    def to_ascii(self, max_nodes_per_type: int = 3) -> str:
        """A compact excerpt rendering in the spirit of Figure 5."""
        lines = [f"Instance graph over schema '{self.schema.name}'"]
        for type_name, ids in self._nodes_by_type.items():
            count = len(ids)
            sample = ", ".join(
                str(self._nodes[node_id].label(self.schema))
                for node_id in ids[:max_nodes_per_type]
            )
            suffix = ", ..." if count > max_nodes_per_type else ""
            lines.append(f"  {type_name} ({count}): {sample}{suffix}")
        lines.append(f"  edges: {self.edge_count}")
        return "\n".join(lines)
