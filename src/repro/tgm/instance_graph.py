"""The TGDB instance graph (Definition 2 of the paper).

Nodes are entities with attribute values; edges are relationships typed by
the schema graph. The graph maintains adjacency indexes in *both* directions
of every edge-type twin pair, so a neighbor lookup — the operation behind
every entity-reference cell in an ETable — is a hash probe plus a list scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.errors import GraphIntegrityError, TgmError, UnknownNodeType
from repro.tgm.conditions import Condition
from repro.tgm.schema_graph import EdgeType, NodeType, SchemaGraph


@dataclass
class Node:
    """One entity instance.

    ``node_id`` is globally unique within the graph. ``source_key`` records
    the originating relational primary key (or attribute value, for
    multivalued/categorical nodes), which keeps translation reversible.
    """

    node_id: int
    type_name: str
    attributes: dict[str, Any]
    source_key: Any = None

    def label(self, schema: SchemaGraph) -> Any:
        """The display label: ``label(v) = v[βi]`` (Definition 2)."""
        node_type = schema.node_type(self.type_name)
        return self.attributes.get(node_type.label_attribute)

    def __hash__(self) -> int:
        return hash(self.node_id)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Node) and other.node_id == self.node_id


@dataclass(frozen=True)
class Edge:
    """One relationship instance (stored once, in the forward direction)."""

    type_name: str
    source_id: int
    target_id: int
    attributes: tuple[tuple[str, Any], ...] = ()


class InstanceGraph:
    """A typed instance graph ``GI = (V, E)`` conforming to a schema graph."""

    def __init__(self, schema: SchemaGraph) -> None:
        self.schema = schema
        self._nodes: dict[int, Node] = {}
        self._nodes_by_type: dict[str, list[int]] = {
            node_type.name: [] for node_type in schema.node_types
        }
        self._edges: list[Edge] = []
        # (node_id, edge_type_name) -> [neighbor node ids]
        self._adjacency: dict[tuple[int, str], list[int]] = {}
        # (type_name, source_key) -> node_id, for translation lookups
        self._by_source_key: dict[tuple[str, Any], int] = {}
        self._next_id = 1

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        type_name: str,
        attributes: dict[str, Any],
        source_key: Any = None,
    ) -> Node:
        node_type = self.schema.node_type(type_name)
        unknown = set(attributes) - set(node_type.attributes)
        if unknown:
            raise GraphIntegrityError(
                f"node of type {type_name!r} has undeclared attributes "
                f"{sorted(unknown)!r}"
            )
        node = Node(self._next_id, type_name, dict(attributes), source_key)
        self._next_id += 1
        self._nodes[node.node_id] = node
        self._nodes_by_type[type_name].append(node.node_id)
        if source_key is not None:
            key = (type_name, source_key)
            if key in self._by_source_key:
                raise GraphIntegrityError(
                    f"duplicate source key {source_key!r} for type {type_name!r}"
                )
            self._by_source_key[key] = node.node_id
        return node

    def add_edge(
        self,
        edge_type_name: str,
        source_id: int,
        target_id: int,
        attributes: dict[str, Any] | None = None,
    ) -> Edge:
        """Add one edge; adjacency is indexed for the reverse twin too."""
        edge_type = self.schema.edge_type(edge_type_name)
        source = self.node(source_id)
        target = self.node(target_id)
        if source.type_name != edge_type.source:
            raise GraphIntegrityError(
                f"edge {edge_type_name!r} expects source type "
                f"{edge_type.source!r}, got {source.type_name!r}"
            )
        if target.type_name != edge_type.target:
            raise GraphIntegrityError(
                f"edge {edge_type_name!r} expects target type "
                f"{edge_type.target!r}, got {target.type_name!r}"
            )
        edge = Edge(
            edge_type_name,
            source_id,
            target_id,
            tuple(sorted((attributes or {}).items())),
        )
        self._edges.append(edge)
        self._adjacency.setdefault((source_id, edge_type_name), []).append(target_id)
        if edge_type.reverse_name is not None:
            self._adjacency.setdefault(
                (target_id, edge_type.reverse_name), []
            ).append(source_id)
        return edge

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def node(self, node_id: int) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise TgmError(f"no node with id {node_id}") from None

    def has_node(self, node_id: int) -> bool:
        return node_id in self._nodes

    def node_by_source_key(self, type_name: str, source_key: Any) -> Node:
        """Find the node translated from a given relational key (or value)."""
        node_id = self._by_source_key.get((type_name, source_key))
        if node_id is None:
            raise TgmError(
                f"no node of type {type_name!r} with source key {source_key!r}"
            )
        return self._nodes[node_id]

    def nodes_of_type(self, type_name: str) -> list[Node]:
        if type_name not in self._nodes_by_type:
            raise UnknownNodeType(f"no node type named {type_name!r}")
        return [self._nodes[node_id] for node_id in self._nodes_by_type[type_name]]

    def node_ids_of_type(self, type_name: str) -> list[int]:
        if type_name not in self._nodes_by_type:
            raise UnknownNodeType(f"no node type named {type_name!r}")
        return list(self._nodes_by_type[type_name])

    def neighbors(self, node_id: int, edge_type_name: str) -> list[Node]:
        """Direct neighbors along one edge type — the quick neighbor-lookup
        the paper highlights for entity-reference cells."""
        self.schema.edge_type(edge_type_name)
        ids = self._adjacency.get((node_id, edge_type_name), [])
        return [self._nodes[neighbor_id] for neighbor_id in ids]

    def neighbor_ids(self, node_id: int, edge_type_name: str) -> list[int]:
        return list(self._adjacency.get((node_id, edge_type_name), []))

    def degree(self, node_id: int, edge_type_name: str) -> int:
        return len(self._adjacency.get((node_id, edge_type_name), []))

    def find_nodes(
        self, type_name: str, condition: Condition | None = None
    ) -> list[Node]:
        """All nodes of a type, optionally filtered by a condition."""
        nodes = self.nodes_of_type(type_name)
        if condition is None:
            return nodes
        return [node for node in nodes if condition.matches(node, self)]

    def find_by_label(self, type_name: str, label: Any) -> Node | None:
        """First node of ``type_name`` whose label equals ``label``."""
        label_attr = self.schema.node_type(type_name).label_attribute
        for node in self.nodes_of_type(type_name):
            if node.attributes.get(label_attr) == label:
                return node
        return None

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        return len(self._edges)

    def edges(self) -> Iterator[Edge]:
        return iter(self._edges)

    def type_counts(self) -> dict[str, int]:
        return {
            type_name: len(ids) for type_name, ids in self._nodes_by_type.items()
        }

    def to_ascii(self, max_nodes_per_type: int = 3) -> str:
        """A compact excerpt rendering in the spirit of Figure 5."""
        lines = [f"Instance graph over schema '{self.schema.name}'"]
        for type_name, ids in self._nodes_by_type.items():
            count = len(ids)
            sample = ", ".join(
                str(self._nodes[node_id].label(self.schema))
                for node_id in ids[:max_nodes_per_type]
            )
            suffix = ", ..." if count > max_nodes_per_type else ""
            lines.append(f"  {type_name} ({count}): {sample}{suffix}")
        lines.append(f"  edges: {self.edge_count}")
        return "\n".join(lines)
