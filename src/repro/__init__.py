"""Reproduction of "Interactive Browsing and Navigation in Relational
Databases" (Kahng, Navathe, Stasko, Chau — VLDB 2016).

Subpackages:

* :mod:`repro.relational` — in-memory relational engine (the PostgreSQL
  substitute), with a SQL dialect including the ``ENT_LIST`` aggregate;
* :mod:`repro.tgm` — the typed graph model: schema/instance graphs, the
  graph relation algebra, and four-table relational storage;
* :mod:`repro.translate` — reverse engineering of relational schemas into
  typed graphs (Appendix A / Table 1);
* :mod:`repro.core` — ETable itself: query patterns, primitive operators,
  instance matching, format transformation, user-level actions, sessions,
  rendering, and SQL translation in both directions (Section 8);
* :mod:`repro.datasets` — the synthetic academic corpus (Figure 3), the
  Figure 8 toy instances, and a movies database;
* :mod:`repro.study` — the simulated user study (Section 7): tasks,
  keystroke-level timing, ETable and query-builder user models, statistics;
* :mod:`repro.bench` — table/figure reporting helpers for the benchmarks.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
