"""Reverse engineering of relational databases into typed graphs (Appendix A).

The translation is near-automatic: relations are classified by key analysis
(Table 1 of the paper), entity relations become node types, foreign keys and
relationship relations become bidirectional edge-type pairs, multivalued
attributes become value node types, and users may opt low-cardinality
columns into categorical-attribute node types.
"""

from repro.translate.classify import (
    ClassifiedRelation,
    RelationClass,
    classify_database,
)
from repro.translate.instance_translator import (
    TgdbTranslation,
    translate_database,
    translate_instances,
)
from repro.translate.labels import choose_label_attribute, is_categorical_candidate
from repro.translate.schema_translator import (
    EdgeMapping,
    NodeMapping,
    TranslationMap,
    default_categorical_attributes,
    translate_schema,
)

__all__ = [
    "ClassifiedRelation",
    "EdgeMapping",
    "NodeMapping",
    "RelationClass",
    "TgdbTranslation",
    "TranslationMap",
    "choose_label_attribute",
    "classify_database",
    "default_categorical_attributes",
    "is_categorical_candidate",
    "translate_database",
    "translate_instances",
    "translate_schema",
]
