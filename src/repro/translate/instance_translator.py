"""Relational instances → TGDB instance graph (Appendix A, final step).

"Once the schema is translated, it is straightforward to create the
corresponding TGDB instance graph": every entity row becomes a node, every
foreign-key value and junction row becomes an edge, every distinct
multivalued/categorical value becomes a value node linked to its owners.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import TranslationError
from repro.relational.database import Database
from repro.tgm.instance_graph import InstanceGraph
from repro.tgm.schema_graph import SchemaGraph
from repro.translate.schema_translator import (
    TranslationMap,
    translate_schema,
)


def translate_instances(
    database: Database,
    schema: SchemaGraph,
    mapping: TranslationMap,
) -> InstanceGraph:
    """Populate an instance graph from the database, following ``mapping``."""
    graph = InstanceGraph(schema)

    # Entity nodes first (everything else references them).
    for node_type_name, node_mapping in mapping.nodes.items():
        if node_mapping.category.name != "ENTITY":
            continue
        table = database.table(node_mapping.table)
        names = table.schema.column_names
        pk_positions = [
            table.schema.column_index(col) for col in table.schema.primary_key
        ]
        for row in table.rows:
            key_parts = tuple(row[position] for position in pk_positions)
            source_key = key_parts[0] if len(key_parts) == 1 else key_parts
            graph.add_node(node_type_name, dict(zip(names, row)), source_key)

    # Multivalued / categorical value nodes.
    for node_type_name, node_mapping in mapping.nodes.items():
        if node_mapping.category.name == "ENTITY":
            continue
        table = database.table(node_mapping.table)
        for value in table.distinct_values(node_mapping.key_column):
            graph.add_node(
                node_type_name, {node_mapping.key_column: value}, source_key=value
            )

    # Edges. Only forward edge types are materialized: the instance graph
    # indexes adjacency for the reverse twin automatically.
    for edge_name, edge_mapping in mapping.edges.items():
        kind = edge_mapping.kind
        data = edge_mapping.data
        if kind == "fk_forward":
            _translate_fk_edges(database, graph, edge_name, data, mapping)
        elif kind == "mn_forward":
            _translate_mn_edges(database, graph, edge_name, data, mapping)
        elif kind == "mv_forward":
            _translate_mv_edges(database, graph, edge_name, data, mapping)
        elif kind == "cat_forward":
            _translate_cat_edges(database, graph, edge_name, data, mapping)
    return graph


def _translate_fk_edges(
    database: Database,
    graph: InstanceGraph,
    edge_name: str,
    data: dict[str, str],
    mapping: TranslationMap,
) -> None:
    owner_type = mapping.node_for_table(data["owner_table"])
    ref_type = mapping.node_for_table(data["ref_table"])
    table = database.table(data["owner_table"])
    fk_position = table.schema.column_index(data["fk_column"])
    pk_position = table.schema.column_index(data["owner_pk"])
    for row in table.rows:
        fk_value = row[fk_position]
        if fk_value is None:
            continue
        source = graph.node_by_source_key(owner_type, row[pk_position])
        target = graph.node_by_source_key(ref_type, fk_value)
        graph.add_edge(edge_name, source.node_id, target.node_id)


def _translate_mn_edges(
    database: Database,
    graph: InstanceGraph,
    edge_name: str,
    data: dict[str, str],
    mapping: TranslationMap,
) -> None:
    source_type = mapping.node_for_table(data["source_table"])
    target_type = mapping.node_for_table(data["target_table"])
    table = database.table(data["junction_table"])
    source_position = table.schema.column_index(data["source_fk"])
    target_position = table.schema.column_index(data["target_fk"])
    extra_positions = [
        (column.name, table.schema.column_index(column.name))
        for column in table.schema.columns
        if column.name not in (data["source_fk"], data["target_fk"])
    ]
    for row in table.rows:
        source = graph.node_by_source_key(source_type, row[source_position])
        target = graph.node_by_source_key(target_type, row[target_position])
        attributes = {name: row[position] for name, position in extra_positions}
        graph.add_edge(edge_name, source.node_id, target.node_id, attributes)


def _translate_mv_edges(
    database: Database,
    graph: InstanceGraph,
    edge_name: str,
    data: dict[str, str],
    mapping: TranslationMap,
) -> None:
    owner_type = mapping.node_for_table(data["owner_table"])
    value_type = f"{data['attr_table']}: {data['value_column']}"
    table = database.table(data["attr_table"])
    owner_position = table.schema.column_index(data["owner_fk"])
    value_position = table.schema.column_index(data["value_column"])
    for row in table.rows:
        value = row[value_position]
        if value is None:
            continue
        source = graph.node_by_source_key(owner_type, row[owner_position])
        target = graph.node_by_source_key(value_type, value)
        graph.add_edge(edge_name, source.node_id, target.node_id)


def _translate_cat_edges(
    database: Database,
    graph: InstanceGraph,
    edge_name: str,
    data: dict[str, str],
    mapping: TranslationMap,
) -> None:
    owner_type = mapping.node_for_table(data["owner_table"])
    value_type = f"{data['owner_table']}: {data['column']}"
    table = database.table(data["owner_table"])
    pk_position = table.schema.column_index(data["owner_pk"])
    value_position = table.schema.column_index(data["column"])
    for row in table.rows:
        value = row[value_position]
        if value is None:
            continue
        source = graph.node_by_source_key(owner_type, row[pk_position])
        target = graph.node_by_source_key(value_type, value)
        graph.add_edge(edge_name, source.node_id, target.node_id)


@dataclass
class TgdbTranslation:
    """The full output of translating one relational database."""

    database: Database
    schema: SchemaGraph
    graph: InstanceGraph
    mapping: TranslationMap


def translate_database(
    database: Database,
    categorical_attributes: dict[str, list[str]] | None = None,
    label_overrides: dict[str, str] | None = None,
    graph_name: str | None = None,
) -> TgdbTranslation:
    """One-call translation: schema graph + instance graph + mapping."""
    schema, mapping = translate_schema(
        database,
        categorical_attributes=categorical_attributes,
        label_overrides=label_overrides,
        graph_name=graph_name,
    )
    graph = translate_instances(database, schema, mapping)
    return TgdbTranslation(database, schema, graph, mapping)
