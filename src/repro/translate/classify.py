"""Relation classification for reverse engineering (Appendix A, Table 1).

Every relation in the source database is classified into one of three
categories by analysing its primary key and foreign keys:

* **entity relation** — the primary key contains no foreign-key column;
  becomes a node type.
* **relationship relation** (many-to-many) — the primary key is a composite
  of two foreign keys onto entity relations; becomes an edge-type pair.
* **multivalued-attribute relation** — exactly two columns forming the
  primary key, the first a foreign key onto an entity relation, the second a
  plain value; becomes a value node type plus an edge-type pair.

The procedure enforces the paper's stated assumptions (BCNF/3NF input,
binary relationships only, relationship relations made of foreign keys) and
raises :class:`TranslationError` when a schema falls outside them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import TranslationError
from repro.relational.database import Database
from repro.relational.schema import ForeignKey, TableSchema


class RelationClass(enum.Enum):
    ENTITY = "entity"
    MANY_TO_MANY = "many-to-many relationship"
    MULTIVALUED = "multivalued attribute"


@dataclass(frozen=True)
class ClassifiedRelation:
    """One relation plus the evidence used to classify it."""

    table: str
    relation_class: RelationClass
    # ENTITY: foreign keys to other entity relations (one-to-many links).
    # MANY_TO_MANY: exactly the two participating foreign keys, in PK order.
    # MULTIVALUED: the single owner foreign key.
    foreign_keys: tuple[ForeignKey, ...]
    # MULTIVALUED only: the value column name.
    value_column: str | None = None


def classify_database(database: Database) -> dict[str, ClassifiedRelation]:
    """Classify every table; the result drives schema translation."""
    classified: dict[str, ClassifiedRelation] = {}
    schemas = {name: database.table(name).schema for name in database.table_names}
    entity_names = {
        name for name, schema in schemas.items() if _is_entity(schema)
    }
    for name, schema in schemas.items():
        classified[name] = _classify_one(schema, entity_names, schemas)
    return classified


def _is_entity(schema: TableSchema) -> bool:
    """Entity relation: primary key contains no foreign-key column."""
    if not schema.primary_key:
        return False
    fk_columns = schema.foreign_key_columns()
    return not any(column in fk_columns for column in schema.primary_key)


def _classify_one(
    schema: TableSchema,
    entity_names: set[str],
    schemas: dict[str, TableSchema],
) -> ClassifiedRelation:
    if not schema.primary_key:
        raise TranslationError(
            f"relation {schema.name!r} has no primary key; the Appendix A "
            "procedure requires keyed relations"
        )
    if _is_entity(schema):
        one_to_many = tuple(
            fk
            for fk in schema.foreign_keys
            if fk.ref_table in entity_names
        )
        dangling = [fk for fk in schema.foreign_keys if fk.ref_table not in entity_names]
        if dangling:
            raise TranslationError(
                f"entity relation {schema.name!r} has a foreign key onto "
                f"non-entity relation {dangling[0].ref_table!r}"
            )
        return ClassifiedRelation(schema.name, RelationClass.ENTITY, one_to_many)

    # Primary key involves foreign keys: relationship or multivalued.
    pk = schema.primary_key
    pk_fks = [
        fk for fk in schema.foreign_keys if all(col in pk for col in fk.columns)
    ]
    if len(pk) == 2 and len(pk_fks) == 2:
        ordered = sorted(pk_fks, key=lambda fk: pk.index(fk.columns[0]))
        for fk in ordered:
            if fk.ref_table not in entity_names:
                raise TranslationError(
                    f"relationship relation {schema.name!r} references "
                    f"non-entity relation {fk.ref_table!r}"
                )
        return ClassifiedRelation(
            schema.name, RelationClass.MANY_TO_MANY, tuple(ordered)
        )
    if len(pk) == 2 and len(pk_fks) == 1:
        if len(schema.columns) != 2:
            raise TranslationError(
                f"multivalued-attribute relation {schema.name!r} must have "
                f"exactly two columns, found {len(schema.columns)}"
            )
        owner_fk = pk_fks[0]
        if owner_fk.ref_table not in entity_names:
            raise TranslationError(
                f"multivalued-attribute relation {schema.name!r} must "
                f"reference an entity relation"
            )
        value_column = next(
            column.name
            for column in schema.columns
            if column.name not in owner_fk.columns
        )
        return ClassifiedRelation(
            schema.name,
            RelationClass.MULTIVALUED,
            (owner_fk,),
            value_column=value_column,
        )
    if len(pk) > 2 and len(pk_fks) > 2:
        raise TranslationError(
            f"relation {schema.name!r} looks like a ternary (or higher) "
            "relationship; the paper assumes binary relationships only"
        )
    raise TranslationError(
        f"cannot classify relation {schema.name!r}: primary key {pk!r} with "
        f"{len(pk_fks)} embedded foreign keys fits no Appendix A category"
    )
