"""Relational schema → TGDB schema graph (Appendix A).

Besides the schema graph itself, translation produces a
:class:`TranslationMap` that records, for every node and edge type, the
relational machinery it came from (tables, key columns, junction tables).
The ETable SQL-translation layer (Section 8) consumes this map to emit SQL
over the *original* relational schema, which is what lets us cross-validate
graph execution against the relational engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TranslationError
from repro.relational.database import Database
from repro.translate.classify import (
    ClassifiedRelation,
    RelationClass,
    classify_database,
)
from repro.translate.labels import choose_label_attribute, is_categorical_candidate
from repro.tgm.schema_graph import (
    EdgeTypeCategory,
    NodeType,
    NodeTypeCategory,
    SchemaGraph,
)


@dataclass(frozen=True)
class NodeMapping:
    """Where a node type's instances come from in the relational database."""

    node_type: str
    category: NodeTypeCategory
    table: str            # entity: the entity table; mv: the attribute table;
                          # categorical: the owning entity table
    key_column: str       # entity: pk column; mv: value column; cat: the column
    owner_table: str | None = None  # mv / categorical: the owning entity table


@dataclass(frozen=True)
class EdgeMapping:
    """How to traverse an edge type relationally.

    ``kind`` is one of: ``fk_forward``, ``fk_reverse``, ``mn_forward``,
    ``mn_reverse``, ``mv_forward``, ``mv_reverse``, ``cat_forward``,
    ``cat_reverse``. ``data`` holds the tables/columns needed to emit a SQL
    join for the traversal (see :mod:`repro.core.sql_translation`).
    """

    edge_type: str
    kind: str
    data: dict[str, str]


@dataclass
class TranslationMap:
    nodes: dict[str, NodeMapping] = field(default_factory=dict)
    edges: dict[str, EdgeMapping] = field(default_factory=dict)
    entity_table_to_node_type: dict[str, str] = field(default_factory=dict)

    def node_for_table(self, table: str) -> str:
        try:
            return self.entity_table_to_node_type[table]
        except KeyError:
            raise TranslationError(
                f"table {table!r} did not translate to an entity node type"
            ) from None


def translate_schema(
    database: Database,
    categorical_attributes: dict[str, list[str]] | None = None,
    label_overrides: dict[str, str] | None = None,
    graph_name: str | None = None,
) -> tuple[SchemaGraph, TranslationMap]:
    """Build the TGDB schema graph and its relational translation map.

    ``categorical_attributes`` maps entity table name → columns to expose as
    categorical-attribute node types (the user-driven, optional last step of
    Appendix A). ``label_overrides`` maps entity table name → label column.
    """
    categorical_attributes = categorical_attributes or {}
    label_overrides = label_overrides or {}
    classified = classify_database(database)
    schema = SchemaGraph(graph_name or f"tgdb({database.name})")
    mapping = TranslationMap()
    used_displays: dict[str, set[str]] = {}

    # Step 1: entity relations become node types.
    for name, info in classified.items():
        if info.relation_class is not RelationClass.ENTITY:
            continue
        table = database.table(name)
        label = choose_label_attribute(table, label_overrides.get(name))
        node_type = NodeType(
            name=name,
            attributes=table.schema.column_names,
            label_attribute=label,
            category=NodeTypeCategory.ENTITY,
        )
        schema.add_node_type(node_type)
        pk = table.schema.primary_key
        mapping.nodes[name] = NodeMapping(
            node_type=name,
            category=NodeTypeCategory.ENTITY,
            table=name,
            key_column=pk[0] if len(pk) == 1 else ",".join(pk),
        )
        mapping.entity_table_to_node_type[name] = name
        used_displays[name] = set()

    # Step 2: foreign keys between entity relations → 1:1 / 1:n edge pairs.
    for name, info in classified.items():
        if info.relation_class is not RelationClass.ENTITY:
            continue
        for fk in info.foreign_keys:
            _add_fk_edge_pair(schema, mapping, used_displays, database,
                              owner=name, fk=fk)

    # Step 3: relationship relations → many-to-many edge pairs.
    for name, info in classified.items():
        if info.relation_class is not RelationClass.MANY_TO_MANY:
            continue
        _add_mn_edge_pair(schema, mapping, used_displays, database, name, info)

    # Step 4: multivalued-attribute relations → value node types + edges.
    for name, info in classified.items():
        if info.relation_class is not RelationClass.MULTIVALUED:
            continue
        _add_multivalued(schema, mapping, used_displays, name, info)

    # Step 5 (optional, user-driven): categorical attributes.
    for table_name, columns in categorical_attributes.items():
        if table_name not in mapping.entity_table_to_node_type:
            raise TranslationError(
                f"categorical attribute owner {table_name!r} is not an "
                "entity relation"
            )
        for column in columns:
            _add_categorical(schema, mapping, used_displays, database,
                             table_name, column)

    return schema, mapping


def default_categorical_attributes(
    database: Database, max_cardinality: int = 30
) -> dict[str, list[str]]:
    """Suggest categorical attributes by the low-cardinality heuristic."""
    classified = classify_database(database)
    suggestions: dict[str, list[str]] = {}
    for name, info in classified.items():
        if info.relation_class is not RelationClass.ENTITY:
            continue
        table = database.table(name)
        columns = [
            column.name
            for column in table.schema.columns
            if is_categorical_candidate(table, column.name, max_cardinality)
        ]
        if columns:
            suggestions[name] = columns
    return suggestions


# ----------------------------------------------------------------------
# Edge-pair construction helpers
# ----------------------------------------------------------------------
def _dedupe_display(
    used_displays: dict[str, set[str]], source: str, wanted: str
) -> str:
    """Keep column-header labels unique per source node type (the "slightly
    different label" rule)."""
    used = used_displays.setdefault(source, set())
    candidate = wanted
    counter = 2
    while candidate in used:
        candidate = f"{wanted} #{counter}"
        counter += 1
    used.add(candidate)
    return candidate


def _add_fk_edge_pair(
    schema: SchemaGraph,
    mapping: TranslationMap,
    used_displays: dict[str, set[str]],
    database: Database,
    owner: str,
    fk,
) -> None:
    target = fk.ref_table
    fk_column = fk.columns[0]
    ref_pk = fk.ref_columns[0]
    if owner == target:
        forward_wanted = f"{target} ({fk_column})"
        reverse_wanted = f"{owner} (rev {fk_column})"
    else:
        forward_wanted = target
        reverse_wanted = owner
    forward_display = _dedupe_display(used_displays, owner, forward_wanted)
    reverse_display = _dedupe_display(used_displays, target, reverse_wanted)
    forward_name = schema.unique_edge_name(f"{owner}->{forward_display}")
    reverse_name = schema.unique_edge_name(f"{target}->{reverse_display}")
    schema.add_edge_type_pair(
        forward_name,
        reverse_name,
        source=owner,
        target=target,
        category=EdgeTypeCategory.ONE_TO_MANY,
        forward_display=forward_display,
        reverse_display=reverse_display,
    )
    data = {
        "owner_table": owner,
        "fk_column": fk_column,
        "ref_table": target,
        "ref_pk": ref_pk,
        "owner_pk": database.table(owner).schema.primary_key[0],
    }
    mapping.edges[forward_name] = EdgeMapping(forward_name, "fk_forward", dict(data))
    mapping.edges[reverse_name] = EdgeMapping(reverse_name, "fk_reverse", dict(data))


def _add_mn_edge_pair(
    schema: SchemaGraph,
    mapping: TranslationMap,
    used_displays: dict[str, set[str]],
    database: Database,
    junction: str,
    info: ClassifiedRelation,
) -> None:
    first_fk, second_fk = info.foreign_keys
    source = first_fk.ref_table
    target = second_fk.ref_table
    if source == target:
        forward_wanted = f"{target} (referenced)"
        reverse_wanted = f"{source} (referencing)"
    else:
        forward_wanted = target
        reverse_wanted = source
    forward_display = _dedupe_display(used_displays, source, forward_wanted)
    reverse_display = _dedupe_display(used_displays, target, reverse_wanted)
    forward_name = schema.unique_edge_name(f"{source}->{forward_display}")
    reverse_name = schema.unique_edge_name(f"{target}->{reverse_display}")
    junction_schema = database.table(junction).schema
    extra_attributes = tuple(
        column.name
        for column in junction_schema.columns
        if column.name not in junction_schema.primary_key
    )
    schema.add_edge_type_pair(
        forward_name,
        reverse_name,
        source=source,
        target=target,
        category=EdgeTypeCategory.MANY_TO_MANY,
        forward_display=forward_display,
        reverse_display=reverse_display,
        attributes=extra_attributes,
    )
    data = {
        "junction_table": junction,
        "source_fk": first_fk.columns[0],
        "target_fk": second_fk.columns[0],
        "source_table": source,
        "source_pk": first_fk.ref_columns[0],
        "target_table": target,
        "target_pk": second_fk.ref_columns[0],
    }
    mapping.edges[forward_name] = EdgeMapping(forward_name, "mn_forward", dict(data))
    mapping.edges[reverse_name] = EdgeMapping(reverse_name, "mn_reverse", dict(data))


def _add_multivalued(
    schema: SchemaGraph,
    mapping: TranslationMap,
    used_displays: dict[str, set[str]],
    attr_table: str,
    info: ClassifiedRelation,
) -> None:
    owner_fk = info.foreign_keys[0]
    owner = owner_fk.ref_table
    value_column = info.value_column
    assert value_column is not None
    node_type_name = f"{attr_table}: {value_column}"
    schema.add_node_type(
        NodeType(
            name=node_type_name,
            attributes=(value_column,),
            label_attribute=value_column,
            category=NodeTypeCategory.MULTIVALUED_ATTRIBUTE,
        )
    )
    used_displays[node_type_name] = set()
    mapping.nodes[node_type_name] = NodeMapping(
        node_type=node_type_name,
        category=NodeTypeCategory.MULTIVALUED_ATTRIBUTE,
        table=attr_table,
        key_column=value_column,
        owner_table=owner,
    )
    forward_display = _dedupe_display(used_displays, owner, attr_table)
    reverse_display = _dedupe_display(used_displays, node_type_name, owner)
    forward_name = schema.unique_edge_name(f"{owner}->{forward_display}")
    reverse_name = schema.unique_edge_name(f"{node_type_name}->{reverse_display}")
    schema.add_edge_type_pair(
        forward_name,
        reverse_name,
        source=owner,
        target=node_type_name,
        category=EdgeTypeCategory.MULTIVALUED_ATTRIBUTE,
        forward_display=forward_display,
        reverse_display=reverse_display,
    )
    data = {
        "attr_table": attr_table,
        "owner_fk": owner_fk.columns[0],
        "value_column": value_column,
        "owner_table": owner,
        "owner_pk": owner_fk.ref_columns[0],
    }
    mapping.edges[forward_name] = EdgeMapping(forward_name, "mv_forward", dict(data))
    mapping.edges[reverse_name] = EdgeMapping(reverse_name, "mv_reverse", dict(data))


def _add_categorical(
    schema: SchemaGraph,
    mapping: TranslationMap,
    used_displays: dict[str, set[str]],
    database: Database,
    table_name: str,
    column: str,
) -> None:
    table = database.table(table_name)
    if not table.schema.has_column(column):
        raise TranslationError(
            f"categorical attribute {table_name}.{column} does not exist"
        )
    node_type_name = f"{table_name}: {column}"
    if schema.has_node_type(node_type_name):
        raise TranslationError(
            f"categorical node type {node_type_name!r} already exists"
        )
    schema.add_node_type(
        NodeType(
            name=node_type_name,
            attributes=(column,),
            label_attribute=column,
            category=NodeTypeCategory.CATEGORICAL_ATTRIBUTE,
        )
    )
    used_displays[node_type_name] = set()
    mapping.nodes[node_type_name] = NodeMapping(
        node_type=node_type_name,
        category=NodeTypeCategory.CATEGORICAL_ATTRIBUTE,
        table=table_name,
        key_column=column,
        owner_table=table_name,
    )
    forward_display = _dedupe_display(used_displays, table_name, node_type_name)
    reverse_display = _dedupe_display(used_displays, node_type_name, table_name)
    forward_name = schema.unique_edge_name(f"{table_name}->{forward_display}")
    reverse_name = schema.unique_edge_name(f"{node_type_name}->{reverse_display}")
    schema.add_edge_type_pair(
        forward_name,
        reverse_name,
        source=table_name,
        target=node_type_name,
        category=EdgeTypeCategory.CATEGORICAL_ATTRIBUTE,
        forward_display=forward_display,
        reverse_display=reverse_display,
    )
    data = {
        "owner_table": table_name,
        "column": column,
        "owner_pk": table.schema.primary_key[0],
    }
    mapping.edges[forward_name] = EdgeMapping(forward_name, "cat_forward", dict(data))
    mapping.edges[reverse_name] = EdgeMapping(reverse_name, "cat_reverse", dict(data))
