"""Label-attribute selection heuristics (Appendix A).

The label attribute is the one shown as the clickable text of an entity
reference. The paper determines it "based on a combination of heuristics,
such as data type (e.g., text generally more interpretable than numbers) and
cardinality", with a manual override always available. We score candidate
columns and pick the best; the scoring is deterministic so translations are
reproducible.
"""

from __future__ import annotations

from repro.relational.datatypes import DataType
from repro.relational.table import Table

# Column names that strongly suggest a human-readable label, best first.
_PREFERRED_NAMES = (
    "name", "title", "label", "acronym", "short", "username", "full_name",
)


def choose_label_attribute(table: Table, override: str | None = None) -> str:
    """Pick the label attribute for the node type translated from ``table``.

    Scoring (higher wins): preferred name > TEXT type > non-key > high
    distinctness. Ties break on column order. ``override`` wins outright
    (the user-picked label of Appendix A).
    """
    schema = table.schema
    if override is not None:
        schema.column(override)  # validates the override exists
        return override

    best_name: str | None = None
    best_score: tuple[int, int, int, float, int] | None = None
    fk_columns = schema.foreign_key_columns()
    for position, column in enumerate(schema.columns):
        name_rank = 0
        lowered = column.name.lower()
        for rank, preferred in enumerate(_PREFERRED_NAMES):
            if lowered == preferred:
                name_rank = len(_PREFERRED_NAMES) - rank
                break
        is_text = 1 if column.dtype is DataType.TEXT else 0
        is_plain = 0 if (column.name in schema.primary_key
                         or column.name in fk_columns) else 1
        distinctness = _distinctness(table, column.name)
        score = (name_rank, is_text, is_plain, distinctness, -position)
        if best_score is None or score > best_score:
            best_score = score
            best_name = column.name
    assert best_name is not None  # schema guarantees >= 1 column
    return best_name


def _distinctness(table: Table, column: str) -> float:
    """Fraction of distinct non-null values; 0 for an empty table."""
    if not table.rows:
        return 0.0
    values = table.column_values(column)
    present = [value for value in values if value is not None]
    if not present:
        return 0.0
    return len(set(present)) / len(table.rows)


def is_categorical_candidate(
    table: Table, column: str, max_cardinality: int = 30
) -> bool:
    """The Appendix A rule of thumb: low-cardinality attributes (< ~30
    distinct values) are good categorical-attribute candidates."""
    schema = table.schema
    if column in schema.primary_key or column in schema.foreign_key_columns():
        return False
    if not table.rows:
        return False
    distinct = {
        value for value in table.column_values(column) if value is not None
    }
    return 0 < len(distinct) <= max_cardinality
