"""RPA103: protocol field coverage.

Adding a field to a dataclass that crosses the wire is only half a
change — both serializer directions must learn it, or sessions resumed
over the protocol silently lose state. For every serializer module
(files named ``protocol.py``) this check pairs the directions and
verifies, per serialized dataclass, that

* the *to* side reads **every** field: inside the ``isinstance`` branch
  dispatching on that class, or anywhere in the function when the class
  is named by the parameter annotation (``def x_to_json(v: C)``);
* the *from* side passes **every** field to the constructor call
  (keywords, positionals mapped by declaration order, or ``**payload``);
* every class dispatched on the *to* side is constructed somewhere on
  the *from* side (deleting a whole deserialize branch fails lint);
* method-style pairs (``to_json`` / ``from_json`` on an envelope
  dataclass) satisfy the same two rules via ``self.field`` /
  ``cls(...)``.

Only ``@dataclass`` classes participate; hand-rolled classes (``ETable``)
have bespoke wire shapes and are out of scope.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.analysis.base import (
    Check,
    ClassInfo,
    Finding,
    ParsedFile,
    iter_methods,
    register,
    self_attribute_name,
)
from repro.analysis.config import (
    FROM_METHOD,
    FROM_SUFFIX,
    PROTOCOL_FILE_NAMES,
    TO_METHOD,
    TO_SUFFIX,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.runner import Project


def _attribute_names(nodes: Iterable[ast.AST]) -> set[str]:
    out: set[str] = set()
    for root in nodes:
        for node in ast.walk(root):
            if isinstance(node, ast.Attribute):
                out.add(node.attr)
    return out


def _isinstance_classes(test: ast.expr) -> list[str]:
    """Class names a branch test dispatches on, [] if not isinstance."""
    if not (
        isinstance(test, ast.Call)
        and isinstance(test.func, ast.Name)
        and test.func.id == "isinstance"
        and len(test.args) == 2
    ):
        return []
    spec = test.args[1]
    candidates = spec.elts if isinstance(spec, ast.Tuple) else [spec]
    return [c.id for c in candidates if isinstance(c, ast.Name)]


def _constructed_fields(call: ast.Call, info: ClassInfo) -> set[str]:
    """Fields a constructor call covers."""
    covered: set[str] = set()
    for index, _ in enumerate(call.args):
        if index < len(info.fields):
            covered.add(info.fields[index])
    for keyword in call.keywords:
        if keyword.arg is None:  # **payload forwards everything
            return set(info.fields)
        covered.add(keyword.arg)
    return covered


@register
class ProtocolCoverageCheck(Check):
    code = "RPA103"
    name = "protocol-field-coverage"
    description = (
        "every dataclass crossing the wire has all fields read by the "
        "to-json side and restored by the from-json constructor"
    )

    def check_file(
        self, parsed: ParsedFile, project: "Project"
    ) -> Iterable[Finding]:
        if parsed.path.name not in PROTOCOL_FILE_NAMES:
            return ()
        findings: list[Finding] = []
        findings.extend(self._check_function_pairs(parsed, project))
        findings.extend(self._check_method_pairs(parsed, project))
        return findings

    def _dataclass(self, project: "Project", name: str) -> ClassInfo | None:
        info = project.classes.get(name)
        if info is not None and info.is_dataclass and info.fields:
            return info
        return None

    # -- module-level x_to_json / x_from_json pairs -------------------
    def _check_function_pairs(
        self, parsed: ParsedFile, project: "Project"
    ) -> Iterator[Finding]:
        functions = {
            node.name: node
            for node in parsed.tree.body
            if isinstance(node, ast.FunctionDef)
        }
        bases = {
            name[: -len(TO_SUFFIX)] for name in functions if name.endswith(TO_SUFFIX)
        } | {
            name[: -len(FROM_SUFFIX)]
            for name in functions
            if name.endswith(FROM_SUFFIX)
        }
        for base in sorted(bases):
            to_fn = functions.get(base + TO_SUFFIX)
            from_fn = functions.get(base + FROM_SUFFIX)
            if to_fn is None or from_fn is None:
                present = to_fn or from_fn
                missing = (base + TO_SUFFIX) if to_fn is None else (base + FROM_SUFFIX)
                yield self.finding(
                    parsed, present,
                    f"serializer '{present.name}' has no matching "
                    f"'{missing}' — the wire format must round-trip",
                )
                continue
            serialized = yield from self._check_to_side(parsed, project, to_fn)
            constructed = yield from self._check_from_side(parsed, project, from_fn)
            for name in sorted(serialized - constructed):
                yield self.finding(
                    parsed, from_fn,
                    f"'{to_fn.name}' serializes '{name}' but "
                    f"'{from_fn.name}' never constructs it",
                )

    def _check_to_side(
        self, parsed: ParsedFile, project: "Project", to_fn: ast.FunctionDef
    ):
        """Yield findings; return the set of class names serialized."""
        serialized: set[str] = set()
        for node in ast.walk(to_fn):
            if not isinstance(node, ast.If):
                continue
            for name in _isinstance_classes(node.test):
                info = self._dataclass(project, name)
                if info is None:
                    continue
                serialized.add(name)
                accessed = _attribute_names(node.body)
                for missing in sorted(set(info.fields) - accessed):
                    yield self.finding(
                        parsed, node,
                        f"'{to_fn.name}' branch for '{name}' never reads "
                        f"field '{missing}'",
                    )
        if not serialized:
            annotation = None
            if to_fn.args.args:
                annotation = to_fn.args.args[0].annotation
            if isinstance(annotation, ast.Name):
                info = self._dataclass(project, annotation.id)
                if info is not None:
                    serialized.add(annotation.id)
                    accessed = _attribute_names(to_fn.body)
                    for missing in sorted(set(info.fields) - accessed):
                        yield self.finding(
                            parsed, to_fn,
                            f"'{to_fn.name}' never reads field '{missing}' "
                            f"of '{annotation.id}'",
                        )
        return serialized

    def _check_from_side(
        self, parsed: ParsedFile, project: "Project", from_fn: ast.FunctionDef
    ):
        """Yield findings; return the set of class names constructed."""
        constructed: set[str] = set()
        for node in ast.walk(from_fn):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)):
                continue
            info = self._dataclass(project, node.func.id)
            if info is None:
                continue
            constructed.add(node.func.id)
            covered = _constructed_fields(node, info)
            for missing in sorted(set(info.fields) - covered):
                yield self.finding(
                    parsed, node,
                    f"'{from_fn.name}' constructs '{node.func.id}' without "
                    f"field '{missing}' (it falls back to the in-memory "
                    "default and drifts from the serialized value)",
                )
        return constructed

    # -- method-style to_json/from_json on envelope dataclasses -------
    def _check_method_pairs(
        self, parsed: ParsedFile, project: "Project"
    ) -> Iterator[Finding]:
        for node in ast.walk(parsed.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {m.name: m for m in iter_methods(node)}
            to_fn = methods.get(TO_METHOD)
            from_fn = methods.get(FROM_METHOD)
            if to_fn is None and from_fn is None:
                continue
            info = self._dataclass(project, node.name)
            if info is None:
                continue
            if to_fn is None or from_fn is None:
                present = to_fn or from_fn
                missing = TO_METHOD if to_fn is None else FROM_METHOD
                yield self.finding(
                    parsed, present,
                    f"'{node.name}.{present.name}' has no matching "
                    f"'{missing}' — the envelope must round-trip",
                )
                continue
            accessed = {
                self_attribute_name(a)
                for body_node in ast.walk(to_fn)
                for a in [body_node]
                if isinstance(a, ast.Attribute)
            }
            for missing_field in sorted(set(info.fields) - accessed):
                yield self.finding(
                    parsed, to_fn,
                    f"'{node.name}.{TO_METHOD}' never reads field "
                    f"'{missing_field}'",
                )
            covered: set[str] = set()
            saw_constructor = False
            for call in ast.walk(from_fn):
                if (
                    isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Name)
                    and call.func.id in ("cls", node.name)
                ):
                    saw_constructor = True
                    covered |= _constructed_fields(call, info)
            if not saw_constructor:
                yield self.finding(
                    parsed, from_fn,
                    f"'{node.name}.{FROM_METHOD}' never constructs the class",
                )
                continue
            for missing_field in sorted(set(info.fields) - covered):
                yield self.finding(
                    parsed, from_fn,
                    f"'{node.name}.{FROM_METHOD}' constructs the envelope "
                    f"without field '{missing_field}'",
                )
