"""RPA105: mutation-version discipline.

``InstanceGraph`` hands its mutation counter (``self._version``) to every
derived structure that memoizes over the graph — attribute indexes,
``GraphStatistics``, ``PrefixStore`` entries, the condition memo. A
mutator that forgets to bump the version leaves those caches serving
stale answers with no failing assertion anywhere near the bug.

Attributes assigned in ``__init__`` with a ``# versioned-state`` comment
are the logical state; any *other* method that mutates one (subscript or
attribute assignment, ``del``, or a mutating container-method call such
as ``.append``/``.setdefault``/``.update``) must, somewhere in its body,
bump ``self._version`` or call an invalidation helper
(``_invalidate_indexes``).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.analysis.base import Check, Finding, ParsedFile, iter_methods, register
from repro.analysis.base import self_attribute_name
from repro.analysis.config import (
    MUTATOR_METHOD_NAMES,
    VERSION_ATTRIBUTE,
    VERSION_BUMP_HELPERS,
    VERSIONED_STATE_MARKER,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.runner import Project


def _chain_self_attr(node: ast.AST) -> str | None:
    """Nearest ``self.X`` along an attribute/subscript/call chain."""
    while True:
        attr = self_attribute_name(node)
        if attr is not None:
            return attr
        if isinstance(node, ast.Attribute):
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        else:
            return None


def _target_self_attr(node: ast.AST) -> str | None:
    """``self.X`` / ``self.X[k]`` assignment-target -> ``"X"``."""
    while isinstance(node, ast.Subscript):
        node = node.value
    return self_attribute_name(node)


@register
class MutationVersionCheck(Check):
    code = "RPA105"
    name = "mutation-version-discipline"
    description = (
        "methods mutating '# versioned-state' attributes bump "
        "'self._version' or call an invalidation helper"
    )

    def check_file(
        self, parsed: ParsedFile, project: "Project"
    ) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(parsed.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(parsed, node))
        return findings

    def _versioned_attrs(
        self, parsed: ParsedFile, class_node: ast.ClassDef
    ) -> set[str]:
        versioned: set[str] = set()
        for method in iter_methods(class_node):
            if method.name != "__init__":
                continue
            for statement in ast.walk(method):
                if not isinstance(statement, (ast.Assign, ast.AnnAssign)):
                    continue
                lines = list(range(
                    statement.lineno,
                    (statement.end_lineno or statement.lineno) + 1,
                ))
                if statement.lineno - 1 in parsed.standalone_comments:
                    lines.insert(0, statement.lineno - 1)
                if not any(
                    VERSIONED_STATE_MARKER in parsed.comment_on(line)
                    for line in lines
                ):
                    continue
                targets = (
                    statement.targets
                    if isinstance(statement, ast.Assign)
                    else [statement.target]
                )
                for target in targets:
                    attr = self_attribute_name(target)
                    if attr is not None:
                        versioned.add(attr)
        return versioned

    def _check_class(
        self, parsed: ParsedFile, class_node: ast.ClassDef
    ) -> Iterator[Finding]:
        versioned = self._versioned_attrs(parsed, class_node)
        if not versioned:
            return
        for method in iter_methods(class_node):
            if method.name == "__init__":
                continue
            mutations: list[tuple[ast.AST, str]] = []
            bumps = False
            for node in ast.walk(method):
                if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        attr = _target_self_attr(target)
                        if attr == VERSION_ATTRIBUTE:
                            bumps = True
                        elif attr in versioned:
                            mutations.append((node, attr))
                elif isinstance(node, ast.Delete):
                    for target in node.targets:
                        attr = _target_self_attr(target)
                        if attr in versioned:
                            mutations.append((node, attr))
                elif isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ):
                    if (
                        node.func.attr in VERSION_BUMP_HELPERS
                        and self_attribute_name(node.func) is not None
                    ):
                        bumps = True
                    elif node.func.attr in MUTATOR_METHOD_NAMES:
                        attr = _chain_self_attr(node.func.value)
                        if attr in versioned:
                            mutations.append((node, attr))
            if mutations and not bumps:
                node, attr = mutations[0]
                yield self.finding(
                    parsed, node,
                    f"'{class_node.name}.{method.name}' mutates versioned "
                    f"state 'self.{attr}' without bumping "
                    f"'self.{VERSION_ATTRIBUTE}' or calling "
                    f"{' / '.join(sorted(VERSION_BUMP_HELPERS))} — "
                    "version-keyed caches would go stale",
                )
