"""RPA102: worker purity.

Anything shipped to a ``ProcessPoolExecutor`` crosses a pickle boundary:

* the submitted callable must be a *module-level* function (picklable by
  qualified name) — no lambdas, no bound methods, no nested defs;
* its body must not reference shared-state types from the denylist
  (``InstanceGraph``, executors, sessions): a worker that reaches for
  them either fails to pickle or silently operates on a *copy*;
* worker payload dataclasses (``*Task`` or ``# repro: worker-payload``)
  may only declare picklable-primitive field types, so the payload can
  never smuggle a graph or an executor into a child process.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.analysis.base import (
    Check,
    Finding,
    ParsedFile,
    register,
)
from repro.analysis.config import (
    PICKLABLE_TYPE_NAMES,
    POOL_RECEIVER_HINTS,
    POOL_SUBMIT_ATTRS,
    WORKER_DENYLIST,
    WORKER_PAYLOAD_MARKER,
    WORKER_PAYLOAD_NAME_SUFFIX,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.runner import Project


def _chain_names(node: ast.AST) -> set[str]:
    """All identifiers along an attribute/call chain."""
    names: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            names.add(child.id)
        elif isinstance(child, ast.Attribute):
            names.add(child.attr)
    return names


def _looks_like_pool(receiver: ast.AST) -> bool:
    lowered = [name.lower() for name in _chain_names(receiver)]
    return any(
        hint in name for name in lowered for hint in POOL_RECEIVER_HINTS
    )


def _annotation_leaf_names(node: ast.AST) -> Iterator[tuple[str, ast.AST]]:
    """Type names referenced by an annotation expression."""
    if isinstance(node, ast.Constant):
        if isinstance(node.value, str):
            try:
                parsed = ast.parse(node.value, mode="eval")
            except SyntaxError:
                yield node.value, node
            else:
                yield from _annotation_leaf_names(parsed.body)
        return  # None / Ellipsis constants are fine
    if isinstance(node, ast.Name):
        yield node.id, node
        return
    if isinstance(node, ast.Attribute):
        yield node.attr, node  # typing.Sequence -> "Sequence"
        return
    for child in ast.iter_child_nodes(node):
        yield from _annotation_leaf_names(child)


@register
class WorkerPurityCheck(Check):
    code = "RPA102"
    name = "worker-purity"
    description = (
        "process-pool workers are module-level, closure-free, reference no "
        "shared state; *Task payload fields are picklable primitives"
    )

    def check_file(
        self, parsed: ParsedFile, project: "Project"
    ) -> Iterable[Finding]:
        findings: list[Finding] = []
        module_functions = {
            node.name: node
            for node in parsed.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        nested_functions = {
            node.name
            for node in ast.walk(parsed.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name not in module_functions
        }

        workers: dict[str, ast.Call] = {}
        for node in ast.walk(parsed.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in POOL_SUBMIT_ATTRS
                and _looks_like_pool(node.func.value)
                and node.args
            ):
                continue
            submitted = node.args[0]
            if isinstance(submitted, ast.Lambda):
                findings.append(self.finding(
                    parsed, submitted,
                    "lambda submitted to a process pool is not picklable; "
                    "use a module-level function",
                ))
            elif isinstance(submitted, ast.Attribute):
                findings.append(self.finding(
                    parsed, submitted,
                    f"'{ast.unparse(submitted)}' submitted to a process pool; "
                    "bound methods drag their instance across the pickle "
                    "boundary — use a module-level function",
                ))
            elif isinstance(submitted, ast.Name):
                if submitted.id in module_functions:
                    workers.setdefault(submitted.id, node)
                elif submitted.id in nested_functions:
                    findings.append(self.finding(
                        parsed, submitted,
                        f"function '{submitted.id}' submitted to a process "
                        "pool is not module-level (nested functions close "
                        "over their frame and do not pickle)",
                    ))
                # Imported names: defined elsewhere, checked in their file.

        for name in workers:
            findings.extend(self._check_worker_body(parsed, module_functions[name]))

        for node in ast.walk(parsed.tree):
            if isinstance(node, ast.ClassDef) and self._is_payload(parsed, node):
                findings.extend(self._check_payload(parsed, node))
        return findings

    def _check_worker_body(
        self, parsed: ParsedFile, function: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        for node in ast.walk(function):
            if isinstance(node, ast.Name) and node.id in WORKER_DENYLIST:
                yield self.finding(
                    parsed, node,
                    f"worker '{function.name}' references '{node.id}' — "
                    "shared state must not leak into process-pool workers",
                )

    def _is_payload(self, parsed: ParsedFile, node: ast.ClassDef) -> bool:
        decorated = any(
            True
            for decorator in node.decorator_list
            for target in [
                decorator.func if isinstance(decorator, ast.Call) else decorator
            ]
            if (isinstance(target, ast.Name) and target.id == "dataclass")
            or (isinstance(target, ast.Attribute) and target.attr == "dataclass")
        )
        if not decorated:
            return False
        if node.name.endswith(WORKER_PAYLOAD_NAME_SUFFIX):
            return True
        return parsed.has_marker(node.lineno, WORKER_PAYLOAD_MARKER)

    def _check_payload(
        self, parsed: ParsedFile, node: ast.ClassDef
    ) -> Iterator[Finding]:
        for statement in node.body:
            if not (
                isinstance(statement, ast.AnnAssign)
                and isinstance(statement.target, ast.Name)
            ):
                continue
            for type_name, where in _annotation_leaf_names(statement.annotation):
                if type_name not in PICKLABLE_TYPE_NAMES:
                    yield self.finding(
                        parsed, statement,
                        f"field '{statement.target.id}' of worker payload "
                        f"'{node.name}' has non-primitive type '{type_name}' "
                        "— payloads must pickle cheaply and carry no shared "
                        "state",
                    )
