"""Builtin invariant checks; importing this package registers them."""

from repro.analysis.checks import (  # noqa: F401  (import for side effect)
    engine_parity,
    locks,
    protocol,
    versions,
    workers,
)
