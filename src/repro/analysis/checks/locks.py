"""RPA101: lock discipline.

An attribute assigned in ``__init__`` with a ``# guarded-by: self._lock``
comment may only be read or written

* lexically inside a ``with self._lock:`` statement, or
* inside a method annotated ``# requires-lock`` (every caller holds the
  lock — the runtime twin :func:`repro.analysis.runtime.assert_locked`
  verifies that claim under ``REPRO_DEBUG_LOCKS=1``).

The analysis is lexical and conservative: a nested function or lambda
does not inherit the enclosing ``with`` scope (it may be called later,
off-thread), so guarded accesses inside one are flagged unless the inner
``def`` itself carries ``# requires-lock``.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.analysis.base import Check, Finding, ParsedFile, iter_methods, register
from repro.analysis.base import self_attribute_name
from repro.analysis.config import (
    GUARDED_BY_MARKER,
    LOCK_EXEMPT_METHODS,
    REQUIRES_LOCK_MARKER,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.runner import Project


@register
class LockDisciplineCheck(Check):
    code = "RPA101"
    name = "lock-discipline"
    description = (
        "attributes declared '# guarded-by: self._lock' are only touched "
        "under 'with self._lock:' or in '# requires-lock' methods"
    )

    def check_file(
        self, parsed: ParsedFile, project: "Project"
    ) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(parsed.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(parsed, node))
        return findings

    # -- guard table --------------------------------------------------
    def _marker_lock(self, parsed: ParsedFile, statement: ast.stmt) -> str | None:
        """Lock attr named by a guarded-by comment on/above the statement."""
        lines = list(range(statement.lineno, (statement.end_lineno or statement.lineno) + 1))
        if statement.lineno - 1 in parsed.standalone_comments:
            lines.insert(0, statement.lineno - 1)
        for line in lines:
            text = parsed.comment_on(line)
            if GUARDED_BY_MARKER not in text:
                continue
            spec = text.split(GUARDED_BY_MARKER, 1)[1].strip()
            spec = spec.split()[0] if spec else ""
            if spec.startswith("self."):
                return spec[len("self."):]
        return None

    def _guard_table(
        self, parsed: ParsedFile, class_node: ast.ClassDef
    ) -> dict[str, str]:
        guarded: dict[str, str] = {}
        for method in iter_methods(class_node):
            if method.name != "__init__":
                continue
            for statement in ast.walk(method):
                if not isinstance(statement, (ast.Assign, ast.AnnAssign)):
                    continue
                lock = self._marker_lock(parsed, statement)
                if lock is None:
                    continue
                targets = (
                    statement.targets
                    if isinstance(statement, ast.Assign)
                    else [statement.target]
                )
                for target in targets:
                    attr = self_attribute_name(target)
                    if attr is not None:
                        guarded[attr] = lock
        return guarded

    def _requires_lock(
        self, parsed: ParsedFile, function: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> bool:
        return parsed.has_marker(function.lineno, REQUIRES_LOCK_MARKER)

    # -- scan ---------------------------------------------------------
    def _check_class(
        self, parsed: ParsedFile, class_node: ast.ClassDef
    ) -> Iterator[Finding]:
        guarded = self._guard_table(parsed, class_node)
        if not guarded:
            return
        for method in iter_methods(class_node):
            if method.name in LOCK_EXEMPT_METHODS:
                continue
            held = set(guarded.values()) if self._requires_lock(parsed, method) else set()
            for statement in method.body:
                yield from self._scan(parsed, statement, guarded, held)

    def _acquired_locks(self, node: ast.With | ast.AsyncWith) -> set[str]:
        acquired: set[str] = set()
        for item in node.items:
            attr = self_attribute_name(item.context_expr)
            if attr is not None:
                acquired.add(attr)
        return acquired

    def _scan(
        self,
        parsed: ParsedFile,
        node: ast.AST,
        guarded: dict[str, str],
        held: set[str],
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = held | self._acquired_locks(node)
            for item in node.items:
                yield from self._scan(parsed, item.context_expr, guarded, held)
                if item.optional_vars is not None:
                    yield from self._scan(parsed, item.optional_vars, guarded, held)
            for statement in node.body:
                yield from self._scan(parsed, statement, guarded, inner)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested def runs later, possibly without the lock.
            inner = set(guarded.values()) if self._requires_lock(parsed, node) else set()
            for statement in node.body:
                yield from self._scan(parsed, statement, guarded, inner)
            return
        if isinstance(node, ast.Lambda):
            yield from self._scan(parsed, node.body, guarded, set())
            return
        if isinstance(node, ast.ClassDef):
            return  # nested class: its own guard table, handled separately
        if isinstance(node, ast.Attribute):
            attr = self_attribute_name(node)
            if attr in guarded and guarded[attr] not in held:
                lock = guarded[attr]
                yield self.finding(
                    parsed, node,
                    f"'self.{attr}' is guarded by 'self.{lock}' but accessed "
                    f"without it (wrap in 'with self.{lock}:' or annotate the "
                    f"method '# {REQUIRES_LOCK_MARKER}')",
                )
        for child in ast.iter_child_nodes(node):
            yield from self._scan(parsed, child, guarded, held)
