"""RPA104: engine parity.

The engine names live as string literals on five surfaces (session
validation, REPL validation, service manager validation, the serve CLI's
``--engine`` choices, the fuzzer's lockstep list). A new engine added to
one surface but not the others "works on my REPL" and silently escapes
differential testing. The canonical lists live in ``repro/core/engines.py``
tagged ``# repro: engine-registry``; every surface literal is tagged
``# repro: engine-surface <role>`` and must agree:

* role ``all``     — exactly the full ``ENGINES`` registry;
* role ``service`` — exactly the ``SERVICE_ENGINES`` registry;
* role ``fuzzer``  — every entry is an engine name, an underscore
  composition of engine names (``incremental_parallel``), or a transport
  from the ``FUZZER_TRANSPORTS`` registry (lockstep participants that
  drive a real engine through another path, e.g. the fleet router);
  together the engine entries exercise every registered engine
  (transports do not count toward coverage).

When the real registry module is among the analyzed files, the check
also loads the known out-of-tree surface files (the fuzzer under
``tests/``) and requires at least one surface per role to exist at all —
so deleting a marker does not silently drop a surface from the audit.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable

from repro.analysis.base import Check, Finding, ParsedFile, register, string_elements
from repro.analysis.config import (
    ENGINE_EXTRA_SURFACE_FILES,
    ENGINE_REGISTRY_FILENAME,
    ENGINE_REGISTRY_MARKER,
    ENGINE_SURFACE_MARKER,
    EXPECTED_SURFACE_ROLES,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.runner import Project


@register
class EngineParityCheck(Check):
    code = "RPA104"
    name = "engine-parity"
    description = (
        "engine-name literals marked '# repro: engine-surface <role>' "
        "agree with the '# repro: engine-registry' canonical lists"
    )

    def finalize(self, project: "Project") -> Iterable[Finding]:
        findings: list[Finding] = []
        registry: dict[str, tuple[list[str], ParsedFile, ast.AST]] = {}
        registry_file: ParsedFile | None = None
        for parsed in project.files.values():
            for node in ast.walk(parsed.tree):
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                if not self._has_marker_in_span(parsed, node, ENGINE_REGISTRY_MARKER):
                    continue
                target = (
                    node.targets[0]
                    if isinstance(node, ast.Assign)
                    else node.target
                )
                values = string_elements(node.value) if node.value else None
                if not isinstance(target, ast.Name) or values is None:
                    findings.append(self.finding(
                        parsed, node,
                        "engine-registry marker must sit on a simple "
                        "'NAME = (string, ...)' assignment",
                    ))
                    continue
                registry[target.id] = (values, parsed, node)
                registry_file = parsed
        if not registry:
            return findings  # nothing to compare against in these paths

        full = registry.get("ENGINES")
        if full is None:
            some = next(iter(registry.values()))
            findings.append(self.finding(
                some[1], some[2],
                "engine registry defines no 'ENGINES' tuple (the full set)",
            ))
            return findings
        full_set = set(full[0])
        service = registry.get("SERVICE_ENGINES", full)
        service_set = set(service[0])
        transports = registry.get("FUZZER_TRANSPORTS")
        transport_set = set(transports[0]) if transports is not None else set()

        # The real registry knows about surfaces outside the analyzed
        # roots (the fuzzer lives under tests/).
        is_real = registry_file is not None and (
            registry_file.path.name == ENGINE_REGISTRY_FILENAME
        )
        if is_real:
            repo_root = registry_file.path.resolve().parents[3]
            for relative in ENGINE_EXTRA_SURFACE_FILES:
                project.load_extra(repo_root / relative)

        surfaces: list[tuple[str, list[str], ParsedFile, int]] = []
        every_file = list(project.files.values()) + list(project.extra_files.values())
        for parsed in every_file:
            for line, text in sorted(parsed.comments.items()):
                if ENGINE_SURFACE_MARKER not in text:
                    continue
                remainder = text.split(ENGINE_SURFACE_MARKER, 1)[1].strip()
                role = remainder.split()[0] if remainder else ""
                literal = self._literal_near(parsed, line)
                if literal is None:
                    findings.append(self.finding(
                        parsed, line,
                        "engine-surface marker has no adjacent "
                        "string-literal tuple/list/set of engine names",
                    ))
                    continue
                surfaces.append((role, literal, parsed, line))

        seen_roles: set[str] = set()
        for role, values, parsed, line in surfaces:
            seen_roles.add(role)
            if role == "all":
                findings.extend(self._compare(
                    parsed, line, values, full_set, "ENGINES"))
            elif role == "service":
                findings.extend(self._compare(
                    parsed, line, values, service_set, "SERVICE_ENGINES"))
            elif role == "fuzzer":
                exercised: set[str] = set()
                for value in values:
                    if value in full_set:
                        exercised.add(value)
                        continue
                    if value in transport_set:
                        # A transport drives some engine through another
                        # path (fleet router); legal, but it exercises no
                        # *new* engine, so it adds nothing to coverage.
                        continue
                    parts = value.split("_")
                    if len(parts) > 1 and all(p in full_set for p in parts):
                        exercised.update(parts)
                        continue
                    findings.append(self.finding(
                        parsed, line,
                        f"fuzzer surface names unknown engine '{value}' "
                        "(not in ENGINES or FUZZER_TRANSPORTS, nor a "
                        "composition of engines)",
                    ))
                for absent in sorted(full_set - exercised):
                    findings.append(self.finding(
                        parsed, line,
                        f"fuzzer lockstep list never exercises engine "
                        f"'{absent}'",
                    ))
            else:
                findings.append(self.finding(
                    parsed, line,
                    f"unknown engine-surface role '{role}' (expected one of "
                    f"{', '.join(EXPECTED_SURFACE_ROLES)})",
                ))

        if is_real:
            for role in EXPECTED_SURFACE_ROLES:
                if role not in seen_roles:
                    findings.append(self.finding(
                        registry_file, full[2],
                        f"no '# repro: {ENGINE_SURFACE_MARKER.split(': ')[-1]} "
                        f"{role}' surface found in the analyzed paths — a "
                        "surface marker was removed or the paths are wrong",
                    ))
        return findings

    def _has_marker_in_span(
        self, parsed: ParsedFile, node: ast.stmt, marker: str
    ) -> bool:
        lines = list(range(node.lineno, (node.end_lineno or node.lineno) + 1))
        if node.lineno - 1 in parsed.standalone_comments:
            lines.insert(0, node.lineno - 1)
        for line in lines:
            if marker in parsed.comment_on(line):
                return True
        return False

    def _literal_near(self, parsed: ParsedFile, line: int) -> list[str] | None:
        """Smallest all-string literal collection touching the marker line
        (same line, spanning it, or starting on the next line)."""
        best: tuple[int, list[str]] | None = None
        for node in ast.walk(parsed.tree):
            values = string_elements(node)
            if values is None:
                continue
            end = node.end_lineno or node.lineno
            if not (node.lineno <= line <= end or node.lineno == line + 1):
                continue
            size = end - node.lineno
            if best is None or size < best[0]:
                best = (size, values)
        return best[1] if best else None

    def _compare(
        self,
        parsed: ParsedFile,
        line: int,
        values: list[str],
        expected: set[str],
        registry_name: str,
    ) -> Iterable[Finding]:
        actual = set(values)
        for missing in sorted(expected - actual):
            yield self.finding(
                parsed, line,
                f"engine surface is missing '{missing}' from {registry_name}",
            )
        for extra in sorted(actual - expected):
            yield self.finding(
                parsed, line,
                f"engine surface names '{extra}' which is not in "
                f"{registry_name}",
            )
