"""Walking targets, running checks, filtering suppressions.

:class:`Project` is the cross-file context handed to every check: the
parsed files under analysis, a project-wide class/field table (for the
protocol-coverage check), and an on-demand loader for files *outside*
the analyzed roots (the engine-parity check reads the fuzzer's lockstep
list from ``tests/`` even when only ``src examples`` are being linted).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.base import (
    Check,
    ClassInfo,
    Finding,
    ParsedFile,
    all_checks,
    extract_class_info,
)

#: Directory names never descended into while collecting targets.
SKIP_DIRS = frozenset({
    "__pycache__", ".git", ".venv", "venv", "node_modules",
    ".pytest_cache", "results",
})


def iter_python_files(paths: Sequence[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    seen: set[Path] = set()
    out: list[Path] = []
    for path in paths:
        if path.is_file():
            candidates: Iterable[Path] = [path]
        else:
            candidates = sorted(
                p for p in path.rglob("*.py")
                if not any(part in SKIP_DIRS for part in p.parts)
            )
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                out.append(candidate)
    return out


class Project:
    """Everything the checks can see: parsed files + cross-file tables."""

    def __init__(self, files: Sequence[ParsedFile]) -> None:
        self.files: dict[Path, ParsedFile] = {f.path: f for f in files}
        # Files parsed on demand by cross-file checks (e.g. the fuzzer's
        # engine list); suppressions in them are honoured, but per-file
        # checks do not run over them.
        self.extra_files: dict[Path, ParsedFile] = {}
        self.classes: dict[str, ClassInfo] = {}
        for parsed in files:
            self._index_classes(parsed)

    def _index_classes(self, parsed: ParsedFile) -> None:
        for node in ast.walk(parsed.tree):
            if isinstance(node, ast.ClassDef):
                info = extract_class_info(node, parsed.path)
                # First definition wins; the repo has no intentional
                # cross-module class-name collisions among dataclasses.
                self.classes.setdefault(node.name, info)

    def load_extra(self, path: Path) -> ParsedFile | None:
        """Parse a file outside the analyzed roots (cached); None if it
        is missing or unparsable."""
        resolved = path.resolve()
        for table in (self.files, self.extra_files):
            for known, parsed in table.items():
                if known.resolve() == resolved:
                    return parsed
        try:
            parsed = ParsedFile(path, path.read_text(encoding="utf-8"))
        except (OSError, SyntaxError):
            return None
        self.extra_files[path] = parsed
        return parsed

    def parsed_for(self, path: Path) -> ParsedFile | None:
        resolved = path.resolve()
        for table in (self.files, self.extra_files):
            for known, parsed in table.items():
                if known.resolve() == resolved:
                    return parsed
        return None


def format_finding(finding: Finding) -> str:
    return finding.render()


def _instantiate(select: Sequence[str] | None) -> list[Check]:
    registry = all_checks()
    if select:
        unknown = sorted(set(select) - set(registry))
        if unknown:
            raise SystemExit(
                f"unknown check code(s): {', '.join(unknown)} "
                f"(known: {', '.join(registry)})"
            )
        return [registry[code]() for code in select]
    return [cls() for cls in registry.values()]


def analyze_paths(
    paths: Sequence[Path | str],
    select: Sequence[str] | None = None,
) -> list[Finding]:
    """Run the (selected) checks over ``paths``; return surviving findings
    sorted by location. Unparsable files surface as ``RPA001`` findings so
    a syntax error can never silently shrink coverage."""
    targets = iter_python_files([Path(p) for p in paths])
    parsed_files: list[ParsedFile] = []
    findings: list[Finding] = []
    for target in targets:
        try:
            parsed_files.append(
                ParsedFile(target, target.read_text(encoding="utf-8"))
            )
        except SyntaxError as error:
            findings.append(Finding(
                file=target, line=error.lineno or 1,
                col=(error.offset or 1) - 1, code="RPA001",
                message=f"file does not parse: {error.msg}",
            ))
        except OSError as error:
            findings.append(Finding(
                file=target, line=1, col=0, code="RPA001",
                message=f"file is unreadable: {error}",
            ))

    project = Project(parsed_files)
    checks = _instantiate(select)
    for check in checks:
        for parsed in parsed_files:
            findings.extend(check.check_file(parsed, project))
        findings.extend(check.finalize(project))

    survivors = []
    for finding in findings:
        parsed = project.parsed_for(finding.file)
        if parsed is not None and parsed.is_suppressed(finding):
            continue
        survivors.append(finding)
    survivors.sort(key=lambda f: (str(f.file), f.line, f.col, f.code))
    return survivors
