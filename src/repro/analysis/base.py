"""Framework core: parsed files, findings, the check registry.

A check is a class with a ``code`` (``RPA###``), a ``name``, and a
``description``; it inspects :class:`ParsedFile` objects (source + AST +
comment map) and yields :class:`Finding`\\ s. Checks run in two passes:

* :meth:`Check.check_file` per analyzed file — for purely local
  invariants;
* :meth:`Check.finalize` once, with the whole project — for cross-file
  invariants (protocol coverage, engine parity).

Comments are not part of Python's AST, so :class:`ParsedFile` extracts
them with :mod:`tokenize` into a ``line -> text`` map; annotation markers
(``guarded-by:``, ``requires-lock``, ``# repro: ...``) and suppressions
all resolve through that map, which makes them robust against ``#``
characters inside string literals.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.runner import Project

# ``# repro: noqa`` or ``# repro: noqa-RPA101[,RPA105]``; plain-flake8
# ``# noqa`` is deliberately NOT honoured — suppressions of repo
# invariants should be greppable as a policy decision, not a reflex.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:-(?P<codes>[A-Z0-9,\-]+))?")


@dataclass(frozen=True)
class Finding:
    """One reported invariant violation."""

    file: Path
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.file}:{self.line}:{self.col}: {self.code} {self.message}"


class ParsedFile:
    """One analyzed source file: path, text, AST, comments, suppressions."""

    def __init__(self, path: Path, source: str) -> None:
        self.path = path
        self.source = source
        self.tree = ast.parse(source, filename=str(path))
        # line number -> full comment text (without the leading '#').
        self.comments: dict[int, str] = {}
        # Lines whose comment is the whole line (only whitespace before
        # it). A marker on the line *above* a statement only counts when
        # standalone — a trailing comment belongs to its own statement.
        self.standalone_comments: set[int] = set()
        source_lines = source.splitlines()
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for token in tokens:
                if token.type == tokenize.COMMENT:
                    line = token.start[0]
                    text = token.string.lstrip("#").strip()
                    if line in self.comments:
                        self.comments[line] += " " + text
                    else:
                        self.comments[line] = text
                    if (
                        line <= len(source_lines)
                        and not source_lines[line - 1][: token.start[1]].strip()
                    ):
                        self.standalone_comments.add(line)
        except tokenize.TokenError:
            # A file that parses but fails to tokenize would be a CPython
            # bug; degrade to "no comments" rather than crash the run.
            pass
        # line -> None (suppress everything) | set of codes.
        self.noqa: dict[int, set[str] | None] = {}
        for line, text in self.comments.items():
            match = _NOQA_RE.search("# " + text)
            if match is None:
                continue
            codes = match.group("codes")
            if codes is None:
                self.noqa[line] = None
            else:
                existing = self.noqa.get(line)
                parsed = {c for c in codes.split(",") if c}
                if existing is None and line in self.noqa:
                    continue  # already suppress-all
                self.noqa[line] = (existing or set()) | parsed
        # Spans of defs/classes whose header line carries a noqa, so a
        # def-line suppression covers the whole body.
        self._noqa_spans: list[tuple[int, int, set[str] | None]] = []
        for node in ast.walk(self.tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ) and node.lineno in self.noqa:
                self._noqa_spans.append(
                    (node.lineno, node.end_lineno or node.lineno,
                     self.noqa[node.lineno])
                )

    def comment_on(self, line: int) -> str:
        return self.comments.get(line, "")

    def has_marker(self, line: int, marker: str) -> bool:
        """True if ``line``'s comment (or the previous line's standalone
        comment) contains ``marker``."""
        if marker in self.comment_on(line):
            return True
        return (
            line - 1 in self.standalone_comments
            and marker in self.comment_on(line - 1)
        )

    def is_suppressed(self, finding: Finding) -> bool:
        codes = self.noqa.get(finding.line, ...)
        if codes is None:
            return True
        if codes is not ... and finding.code in codes:
            return True
        for start, end, span_codes in self._noqa_spans:
            if start <= finding.line <= end:
                if span_codes is None or finding.code in span_codes:
                    return True
        return False


class Check:
    """Base class for one invariant checker."""

    code: str = ""
    name: str = ""
    description: str = ""

    def check_file(
        self, parsed: ParsedFile, project: "Project"
    ) -> Iterable[Finding]:
        return ()

    def finalize(self, project: "Project") -> Iterable[Finding]:
        return ()

    def finding(
        self, parsed: ParsedFile, node: ast.AST | int, message: str,
        col: int | None = None,
    ) -> Finding:
        if isinstance(node, int):
            line, column = node, (col or 0)
        else:
            line, column = node.lineno, node.col_offset
        return Finding(
            file=parsed.path, line=line, col=column,
            code=self.code, message=message,
        )


_REGISTRY: dict[str, type[Check]] = {}


def register(cls: type[Check]) -> type[Check]:
    """Class decorator adding a check to the global registry."""
    if not cls.code:
        raise ValueError(f"check {cls.__name__} has no code")
    if cls.code in _REGISTRY:
        raise ValueError(f"duplicate check code {cls.code}")
    _REGISTRY[cls.code] = cls
    return cls


def all_checks() -> dict[str, type[Check]]:
    """code -> check class, with the builtin checks imported."""
    import repro.analysis.checks  # noqa: F401  (registers on import)

    return dict(sorted(_REGISTRY.items()))


# ----------------------------------------------------------------------
# Shared AST helpers used by several checks
# ----------------------------------------------------------------------
def attribute_root(node: ast.AST) -> ast.AST:
    """The leftmost object of an attribute/subscript/call chain:
    ``self._adjacency.setdefault(k, []).append(v)`` -> the ``self`` Name."""
    while True:
        if isinstance(node, ast.Attribute):
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        else:
            return node


def self_attribute_name(node: ast.AST) -> str | None:
    """``self.X`` -> ``"X"`` for a plain attribute access, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def iter_methods(
    class_node: ast.ClassDef,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in class_node.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def string_elements(node: ast.AST) -> list[str] | None:
    """The element strings of an all-string-literal tuple/list/set."""
    if not isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return None
    out: list[str] = []
    for element in node.elts:
        if isinstance(element, ast.Constant) and isinstance(element.value, str):
            out.append(element.value)
        else:
            return None
    return out


@dataclass
class ClassInfo:
    """A dataclass (or __init__-constructed class) seen anywhere in the
    project, with its field names in declaration order — the ground truth
    the protocol-coverage check compares serializers against."""

    name: str
    file: Path
    line: int
    fields: tuple[str, ...]
    is_dataclass: bool
    bases: tuple[str, ...] = ()


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def extract_class_info(node: ast.ClassDef, path: Path) -> ClassInfo:
    """Field table of one class: dataclass AnnAssigns, else __init__ params."""
    is_dc = _is_dataclass_decorated(node)
    fields: list[str] = []
    if is_dc:
        for statement in node.body:
            if isinstance(statement, ast.AnnAssign) and isinstance(
                statement.target, ast.Name
            ):
                fields.append(statement.target.id)
    else:
        for method in iter_methods(node):
            if method.name == "__init__":
                args = method.args
                names = [a.arg for a in args.posonlyargs + args.args]
                fields = names[1:]  # drop self
                fields += [a.arg for a in args.kwonlyargs]
                break
    bases = tuple(
        base.id for base in node.bases if isinstance(base, ast.Name)
    )
    return ClassInfo(
        name=node.name, file=path, line=node.lineno,
        fields=tuple(fields), is_dataclass=is_dc, bases=bases,
    )
