"""Debug-mode runtime twin of the RPA101 static lock check.

``# requires-lock`` is a *static* promise that every caller already
holds the lock; :func:`assert_locked` turns it into a *dynamic* check.
Annotated methods call ``assert_locked(self._lock)`` on entry, which is
a no-op by default (zero production cost beyond one truthiness test) and
raises :class:`LockDisciplineError` when debugging is enabled via the
``REPRO_DEBUG_LOCKS=1`` environment variable or :func:`enable` — the
service-layer concurrency stress tests run with it on, so the static
annotations and the runtime behaviour cross-validate.

For an ``RLock`` the check is exact (``_is_owned`` knows the owning
thread). A plain ``Lock`` carries no owner, so the best available check
is ``locked()`` — it catches "nobody holds the lock at all", the bug the
static check exists to prevent, but cannot attribute ownership.
"""

from __future__ import annotations

import os
import threading
from typing import Union

LockLike = Union[threading.Lock, threading.RLock]


class LockDisciplineError(RuntimeError):
    """A ``# requires-lock`` method ran without the lock held."""


_enabled = os.environ.get("REPRO_DEBUG_LOCKS", "") == "1"


def enable() -> None:
    """Turn on lock assertions for this process (tests call this)."""
    global _enabled
    _enabled = True


def disable() -> None:
    global _enabled
    _enabled = False


def enabled() -> bool:
    return _enabled


def assert_locked(lock: LockLike, name: str = "lock") -> None:
    """Raise unless ``lock`` is held (when debugging is enabled)."""
    if not _enabled:
        return
    is_owned = getattr(lock, "_is_owned", None)
    if is_owned is not None:  # RLock: exact, thread-attributed
        if not is_owned():
            raise LockDisciplineError(
                f"requires-lock violated: calling thread does not own {name}"
            )
        return
    if not lock.locked():  # plain Lock: owner unknown, held-ness known
        raise LockDisciplineError(
            f"requires-lock violated: {name} is not held by anyone"
        )
