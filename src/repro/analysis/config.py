"""Shared configuration for the invariant checks.

Markers are plain comments, so annotating code costs nothing at runtime;
this module is the single place their spellings (and the worker-purity
type policy) live, for both the checks and the docs.
"""

from __future__ import annotations

# --- RPA101 lock discipline -------------------------------------------
#: On an attribute assignment in ``__init__``:
#: ``self._sessions = {}  # guarded-by: self._lock``
GUARDED_BY_MARKER = "guarded-by:"
#: On a ``def`` line (or the line above): the caller holds the lock.
REQUIRES_LOCK_MARKER = "requires-lock"
#: Methods where unguarded access is allowed: construction happens
#: before the object is shared, and teardown after.
LOCK_EXEMPT_METHODS = frozenset({"__init__", "__del__", "__repr__"})

# --- RPA102 worker purity ---------------------------------------------
#: On a ``@dataclass`` class line: fields must be picklable primitives.
WORKER_PAYLOAD_MARKER = "repro: worker-payload"
#: Payload classes are also recognised by this name suffix.
WORKER_PAYLOAD_NAME_SUFFIX = "Task"
#: Annotation type names allowed in worker payload fields. Anything
#: outside this set (``InstanceGraph``, executors, sessions, locks...)
#: would drag un-picklable or mutable shared state across the process
#: boundary.
PICKLABLE_TYPE_NAMES = frozenset({
    "int", "float", "str", "bool", "bytes", "complex", "None",
    "tuple", "list", "dict", "set", "frozenset",
    "Tuple", "List", "Dict", "Set", "FrozenSet", "Optional", "Union",
    "Sequence", "Mapping", "Iterable", "Any",
})
#: Names a worker function must never reference — shared state that
#: must not leak into (or be reconstructed inside) a worker process.
WORKER_DENYLIST = frozenset({
    "InstanceGraph", "ProcessPoolExecutor", "ThreadPoolExecutor",
    "SessionManager", "EtableSession", "CachingExecutor",
    "IncrementalExecutor", "ParallelContext",
})
#: Attribute names whose access on a call suggests pool submission.
POOL_SUBMIT_ATTRS = frozenset({"submit", "map"})
POOL_RECEIVER_HINTS = ("pool",)

# --- RPA103 protocol coverage -----------------------------------------
#: Only files whose name matches participate (serializer modules).
PROTOCOL_FILE_NAMES = frozenset({"protocol.py"})
#: ``X_to_json`` / ``X_from_json`` function-name suffixes.
TO_SUFFIX = "_to_json"
FROM_SUFFIX = "_from_json"
#: Method-style serializer names on dataclasses.
TO_METHOD = "to_json"
FROM_METHOD = "from_json"

# --- RPA104 engine parity ---------------------------------------------
#: On the canonical tuple assignments in ``repro/core/engines.py``.
ENGINE_REGISTRY_MARKER = "repro: engine-registry"
#: On each literal surface, this marker followed by a role:
#: ``all`` | ``service`` | ``fuzzer``.
ENGINE_SURFACE_MARKER = "repro: engine-surface"
#: The registry module and the surfaces the repo must declare. The check
#: only enforces *presence* of these surfaces when it can see the real
#: registry file (named ``engines.py``), so fixture tests stay
#: self-contained.
ENGINE_REGISTRY_FILENAME = "engines.py"
EXPECTED_SURFACE_ROLES = ("all", "service", "fuzzer")
#: Repo-root-relative files consulted for surfaces even when they are
#: outside the analyzed paths (the fuzzer lives under ``tests/``).
ENGINE_EXTRA_SURFACE_FILES = (
    "tests/integration/test_session_fuzz.py",
)

# --- RPA105 mutation-version discipline -------------------------------
#: On an ``__init__`` assignment of logical graph state.
VERSIONED_STATE_MARKER = "versioned-state"
#: Attribute whose increment counts as a version bump.
VERSION_ATTRIBUTE = "_version"
#: Calling any of these methods also counts (they bump internally).
VERSION_BUMP_HELPERS = frozenset({"_invalidate_indexes"})
#: Method names on an attribute chain that mutate the container.
MUTATOR_METHOD_NAMES = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "setdefault", "add", "discard", "sort", "reverse",
})
