"""AST-based invariant checkers for the reproduction's concurrency core.

PRs 3-5 turned the reproduction into a concurrent, multi-engine service
whose correctness rests on conventions no test can see directly: which
attributes a lock guards, which functions may cross a process boundary,
which dataclasses the wire protocol must round-trip, which literal engine
lists have to stay in sync, and which graph mutations must bump the cache
version. This package makes those conventions *machine-checked at lint
time* — the "compile-time contract" discipline server codebases such as
edgedb apply to their cores — so the next concurrency PRs fail in CI
instead of in a fuzzer stack trace.

Check catalog
=============

========  ==========================================================
code      invariant
========  ==========================================================
RPA101    **Lock discipline.** Attributes declared
          ``# guarded-by: self._lock`` may only be read or written
          inside a ``with self._lock:`` scope or inside a method
          annotated ``# requires-lock`` (caller holds the lock).
RPA102    **Worker purity.** Functions shipped to a
          ``ProcessPoolExecutor`` must be module-level (picklable by
          reference, closure-free), must not touch denylisted shared
          state (``InstanceGraph``, executors, registries), and
          worker payload dataclasses (``*Task`` / classes marked
          ``# repro: worker-payload``) may only carry
          picklable-primitive field types.
RPA103    **Protocol field coverage.** Every dataclass serialized by
          a ``X_to_json`` / ``X_from_json`` pair (or ``to_json`` /
          ``from_json`` methods) must have *every* field read on the
          serialize side and restored by the constructor call on the
          deserialize side — adding a field without wire support
          fails lint instead of fuzz.
RPA104    **Engine parity.** The engine-name literal sets marked
          ``# repro: engine-surface <role>`` across the session, the
          REPL, the service manager, ``examples/serve.py`` and the
          differential fuzzer must agree with the canonical registry
          in ``repro.core.engines`` (``# repro: engine-registry``).
RPA105    **Mutation-version discipline.** Methods of a class that
          mutate attributes declared ``# versioned-state`` must bump
          the mutation version (``self._version``) or call an
          invalidation helper — caches keyed on the version
          (``PrefixStore``, ``GraphStatistics``, the condition memo)
          must never outlive the data they summarize.
========  ==========================================================

Running
=======

::

    PYTHONPATH=src python -m repro.analysis src examples benchmarks
    PYTHONPATH=src python -m repro.analysis --list-checks
    PYTHONPATH=src python -m repro.analysis --select RPA101,RPA105 src

Findings are reported one per line as ``file:line:col: CODE message``;
the process exits non-zero when any finding survives, so the CI ``lint``
job gates on a clean run.

Suppressions
============

``# repro: noqa-RPA101`` on the offending line suppresses that code
there; ``# repro: noqa`` suppresses every code on the line. A noqa
comment on a ``def``/``class`` line suppresses inside the whole body —
used sparingly, with a justification comment, for deliberate exceptions
such as the lock-free ``CachingExecutor.stats_payload`` health probe.

The runtime twin
================

:mod:`repro.analysis.runtime` provides ``assert_locked(lock)``, a
debug-mode *dynamic* counterpart of RPA101: ``# requires-lock`` methods
call it on entry, and with ``REPRO_DEBUG_LOCKS=1`` (or
``runtime.enable()``) it raises if the caller does not actually hold the
lock — so the static annotation and the runtime behaviour cross-validate
under the service-layer concurrency stress tests.
"""

from repro.analysis.base import Check, Finding, all_checks, register
from repro.analysis.runner import Project, analyze_paths, format_finding

__all__ = [
    "Check",
    "Finding",
    "Project",
    "all_checks",
    "analyze_paths",
    "format_finding",
    "register",
]
