"""CLI: ``python -m repro.analysis [paths...]``.

Exits 0 on a clean run, 1 when findings survive suppression — so a CI
job can gate on the process status alone.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.base import all_checks
from repro.analysis.runner import analyze_paths, format_finding


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Run the repo's AST invariant checks (RPA101-RPA105).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated check codes to run (default: all)",
    )
    parser.add_argument(
        "--list-checks", action="store_true",
        help="print the check catalog and exit",
    )
    args = parser.parse_args(argv)

    if args.list_checks:
        for code, cls in all_checks().items():
            print(f"{code}  {cls.name}: {cls.description}")
        return 0

    select = None
    if args.select:
        select = [code.strip() for code in args.select.split(",") if code.strip()]

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    findings = analyze_paths(args.paths, select=select)
    for finding in findings:
        print(format_finding(finding))
    if findings:
        count = len(findings)
        print(f"{count} finding{'s' if count != 1 else ''}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
