"""Benchmark reporting helpers."""

from repro.bench.reporting import (
    banner,
    drain_report,
    format_table,
    report,
    save_result,
)

__all__ = ["banner", "drain_report", "format_table", "report", "save_result"]
