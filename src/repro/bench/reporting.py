"""Reporting helpers shared by the benchmarks.

Each benchmark regenerates one table or figure of the paper and prints it in
a paper-like textual form; these helpers keep the formatting consistent and
write machine-readable copies under ``results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Sequence

RESULTS_DIR = Path(__file__).resolve().parents[3] / "results"

# Reproduced tables/figures are buffered here as well as printed, so the
# benchmark conftest can replay them in the terminal summary (pytest
# captures per-test stdout of passing tests, which would otherwise hide
# the paper-style output from `pytest benchmarks/ --benchmark-only`).
_REPORT_LINES: list[str] = []


def report(*parts: Any, sep: str = " ") -> None:
    """Print and buffer one line of reproduction output."""
    text = sep.join(str(part) for part in parts)
    _REPORT_LINES.append(text)
    print(text)


def drain_report() -> str:
    """Return everything reported so far and clear the buffer."""
    text = "\n".join(_REPORT_LINES)
    _REPORT_LINES.clear()
    return text


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """A fixed-width text table."""
    rendered_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[index])),
            max((len(row[index]) for row in rendered_rows), default=0))
        for index in range(len(headers))
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("─" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.1f}"
    return str(cell)


def save_result(name: str, payload: dict[str, Any]) -> Path:
    """Persist a benchmark's reproduced numbers as JSON under results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    with path.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, default=str)
    return path


def banner(text: str) -> str:
    line = "=" * max(60, len(text) + 4)
    return f"\n{line}\n  {text}\n{line}"
