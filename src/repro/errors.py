"""Shared exception hierarchy for the ETable reproduction.

Every error raised by the library derives from :class:`ReproError` so
applications can catch library failures with a single ``except`` clause while
still being able to distinguish the layer that failed (relational engine,
typed-graph model, translator, ETable core, or study simulator).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class RelationalError(ReproError):
    """Base class for errors raised by the relational engine."""


class SchemaError(RelationalError):
    """A table or database schema is malformed (duplicate columns, bad FK...)."""


class ConstraintViolation(RelationalError):
    """An insert or update violates a declared constraint."""


class PrimaryKeyViolation(ConstraintViolation):
    """A duplicate primary-key value was inserted."""


class ForeignKeyViolation(ConstraintViolation):
    """A foreign-key value does not reference an existing row."""


class NotNullViolation(ConstraintViolation):
    """A NULL value was supplied for a NOT NULL column."""


class TypeMismatch(RelationalError):
    """A value cannot be coerced to the declared column type."""


class UnknownTable(RelationalError):
    """A query referenced a table that is not in the catalog."""


class UnknownColumn(RelationalError):
    """An expression referenced a column that does not exist in scope."""


class AmbiguousColumn(RelationalError):
    """An unqualified column name matched more than one column in scope."""


class SqlSyntaxError(RelationalError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class SqlSemanticError(RelationalError):
    """The SQL parsed but is not executable (bad grouping, bad aggregate...)."""


class UnknownBackend(RelationalError):
    """A SQL backend name is not in the backend registry."""


class TgmError(ReproError):
    """Base class for typed-graph-model errors."""


class UnknownNodeType(TgmError):
    """A node type name is not part of the schema graph."""


class UnknownEdgeType(TgmError):
    """An edge type name is not part of the schema graph."""


class GraphIntegrityError(TgmError):
    """An instance-graph operation would break schema conformance."""


class TranslationError(ReproError):
    """The relational schema violates the Appendix A translation assumptions."""


class EtableError(ReproError):
    """Base class for ETable presentation-model errors."""


class InvalidQueryPattern(EtableError):
    """A query pattern is not a connected acyclic graph rooted in its types."""


class InvalidOperator(EtableError):
    """A primitive operator was applied in a state where it is undefined."""


class InvalidAction(EtableError):
    """A user-level action referenced a column, row, or cell that is absent."""


class ServiceError(ReproError):
    """Base class for multi-user navigation-service errors."""


class ProtocolError(ServiceError):
    """A wire-protocol request is malformed (bad action, params, version)."""


class UnknownSession(ServiceError):
    """A request referenced a session id the manager does not host."""


class JournalCorrupt(ServiceError):
    """An action journal contains an undecodable record before its tail."""


class AuthError(ServiceError):
    """A request's per-session auth token is missing or wrong."""


class QuotaExceeded(ServiceError):
    """A session spent its action quota for the current window."""


class WorkerFailure(ServiceError):
    """A fleet worker process failed mid-request and could not be retried."""


class Overloaded(ServiceError):
    """The frontend shed this request: its in-flight cap is reached.

    Clients should honor the accompanying ``Retry-After`` and resubmit;
    nothing about the session changed.
    """


class Degraded(ServiceError):
    """A session's journal stopped accepting writes (disk full, IO error).

    The session is read-only until recovered: mutating actions are
    refused rather than accepted-but-not-durable, because an accepted
    action that would vanish on crash breaks the bit-identical-resume
    contract.
    """


class StudyError(ReproError):
    """Base class for user-study simulator errors."""


class TaskDefinitionError(StudyError):
    """A study task is malformed or has no ground-truth answer in the data."""
