"""Unit tests for the toy (Figure 8) and movies datasets."""

from repro.datasets.movies import MoviesConfig, generate_movies
from repro.datasets.toy import FIGURE8_EXPECTED, generate_toy


class TestToy:
    def test_integrity(self, toy_db):
        assert toy_db.validate_integrity() == []

    def test_figure8_instances(self, toy_db):
        papers = {row[0] for row in toy_db.table("Papers").rows}
        assert {1, 4, 5, 8} <= papers
        authors = {row[1] for row in toy_db.table("Authors").rows}
        assert {"Bob", "Mark", "Chad"} <= authors

    def test_sigmod_recent_papers(self, toy_db):
        recent_sigmod = [
            row[0]
            for row in toy_db.table("Papers").rows
            if row[1] == 1 and row[3] > 2005
        ]
        assert sorted(recent_sigmod) == [1, 4, 5, 8]

    def test_korean_institutions(self, toy_db):
        korean = [
            row[0]
            for row in toy_db.table("Institutions").rows
            if row[2] == "South Korea"
        ]
        assert sorted(korean) == [3, 8]

    def test_expected_answer_shape(self):
        assert set(FIGURE8_EXPECTED) == {"Bob", "Mark", "Chad"}


class TestMovies:
    def test_integrity(self, movies_db):
        assert movies_db.validate_integrity() == []

    def test_deterministic(self):
        db1 = generate_movies(MoviesConfig(movies=30, people=25, seed=5))
        db2 = generate_movies(MoviesConfig(movies=30, people=25, seed=5))
        assert db1.table("Movies").rows == db2.table("Movies").rows

    def test_decade_matches_year(self, movies_db):
        for row in movies_db.table("Movies").as_dicts():
            assert row["decade"] == f"{(row['year'] // 10) * 10}s"

    def test_every_movie_has_cast(self, movies_db):
        movies_with_cast = {
            row[0] for row in movies_db.table("Movie_Cast").rows
        }
        all_movies = {row[0] for row in movies_db.table("Movies").rows}
        assert movies_with_cast == all_movies

    def test_genres_within_pool(self, movies_db):
        from repro.datasets.movies import _GENRES

        genres = set(movies_db.table("Movie_Genres").column_values("genre"))
        assert genres <= set(_GENRES)

    def test_movies_tgdb_structure(self, movies):
        names = {t.name for t in movies.schema.node_types}
        assert "Movie_Genres: genre" in names
        assert "Movies: decade" in names
        # Two FK edges from Movies (studio, director) plus cast / genres /
        # decade edges.
        displays = [e.display_name for e in movies.schema.edges_from("Movies")]
        assert "Studios" in displays and "People" in displays
