"""Unit tests for the synthetic academic corpus generator."""

from repro.datasets.academic import (
    ANCHOR_AUTHORS,
    AcademicConfig,
    academic_schema,
    generate_academic,
    paper_scale_config,
)
from repro.relational.sql.executor import execute_sql


class TestSchema:
    def test_seven_relations(self):
        assert len(academic_schema()) == 7

    def test_seven_foreign_keys(self):
        total = sum(len(schema.foreign_keys) for schema in academic_schema())
        assert total == 7

    def test_paper_scale_config(self):
        assert paper_scale_config().papers == 38_000


class TestGeneration:
    def test_deterministic(self):
        db1, _ = generate_academic(AcademicConfig(papers=120, seed=3))
        db2, _ = generate_academic(AcademicConfig(papers=120, seed=3))
        assert db1.table("Papers").rows == db2.table("Papers").rows
        assert db1.table("Paper_Authors").rows == db2.table("Paper_Authors").rows

    def test_seed_changes_output(self):
        db1, _ = generate_academic(AcademicConfig(papers=120, seed=3))
        db2, _ = generate_academic(AcademicConfig(papers=120, seed=4))
        assert db1.table("Papers").rows != db2.table("Papers").rows

    def test_row_counts(self, academic_db):
        assert len(academic_db.table("Papers")) == 300
        assert len(academic_db.table("Conferences")) == 19
        assert len(academic_db.table("Authors")) >= 60

    def test_referential_integrity(self, academic_db):
        assert academic_db.validate_integrity() == []

    def test_titles_unique(self, academic_db):
        titles = academic_db.table("Papers").column_values("title")
        assert len(set(titles)) == len(titles)

    def test_years_in_range(self, academic_db):
        years = academic_db.table("Papers").column_values("year")
        assert all(2000 <= year <= 2015 for year in years)

    def test_citations_point_backwards(self, academic_db):
        """Papers cite earlier papers (ids are assigned in year order)."""
        for paper_id, ref_id in academic_db.table("Paper_References").rows:
            assert ref_id < paper_id

    def test_authorship_skewed(self, academic_db):
        """Preferential attachment yields a long-tailed distribution."""
        counts = {}
        for _, author_id, _ in academic_db.table("Paper_Authors").rows:
            counts[author_id] = counts.get(author_id, 0) + 1
        values = sorted(counts.values(), reverse=True)
        assert values[0] >= 4 * values[len(values) // 2]


class TestAnchors:
    def test_anchor_paper_exists(self, academic_db):
        result = execute_sql(
            academic_db,
            "SELECT p.year FROM Papers p "
            "WHERE p.title = 'Making database systems usable'",
        )
        assert result.rows == [(2007,)]

    def test_anchor_paper_keywords(self, academic_db):
        result = execute_sql(
            academic_db,
            "SELECT k.keyword FROM Papers p, Paper_Keywords k "
            "WHERE k.paper_id = p.id "
            "AND p.title = 'Making database systems usable'",
        )
        keywords = {row[0] for row in result.rows}
        assert "usability" in keywords and "user interfaces" in keywords

    def test_anchor_authors_exist(self, academic_db, academic):
        for name, _institution in ANCHOR_AUTHORS:
            assert academic.graph.find_by_label("Authors", name) is not None

    def test_korea_unique_maximum(self, academic_db):
        result = execute_sql(
            academic_db,
            "SELECT i.name, COUNT(a.id) AS n FROM Institutions i, Authors a "
            "WHERE a.institution_id = i.id AND i.country = 'South Korea' "
            "GROUP BY i.id ORDER BY n DESC",
        )
        assert result.rows[0][0] == "KAIST"
        assert result.rows[0][1] > result.rows[1][1]  # strict maximum

    def test_germany_unique_maximum(self, academic_db):
        result = execute_sql(
            academic_db,
            "SELECT i.name, COUNT(a.id) AS n FROM Institutions i, Authors a "
            "WHERE a.institution_id = i.id AND i.country = 'Germany' "
            "GROUP BY i.id ORDER BY n DESC",
        )
        assert result.rows[0][0] == "Technical University of Munich"
        assert result.rows[0][1] > result.rows[1][1]

    def test_madden_has_recent_papers(self, academic_db):
        result = execute_sql(
            academic_db,
            "SELECT p.title FROM Papers p, Paper_Authors pa, Authors a "
            "WHERE pa.paper_id = p.id AND pa.author_id = a.id "
            "AND a.name = 'Samuel Madden' AND p.year >= 2013",
        )
        assert len(result.rows) >= 2
