"""Shared fixtures: generated databases and their TGDB translations.

Session-scoped because generation and translation are deterministic and the
tests only read from them. Tests that need to mutate state build their own
objects.
"""

from __future__ import annotations

import pytest

from repro.datasets.academic import (
    AcademicConfig,
    default_categorical_attributes,
    default_label_overrides,
    generate_academic,
)
from repro.datasets.movies import (
    MoviesConfig,
    generate_movies,
    movies_categorical_attributes,
    movies_label_overrides,
)
from repro.datasets.toy import generate_toy
from repro.translate import translate_database


@pytest.fixture(scope="session")
def academic_db():
    db, _report = generate_academic(AcademicConfig(papers=300, seed=7))
    return db


@pytest.fixture(scope="session")
def academic(academic_db):
    """The translated academic TGDB (schema, graph, mapping, database)."""
    return translate_database(
        academic_db,
        categorical_attributes=default_categorical_attributes(),
        label_overrides=default_label_overrides(),
    )


@pytest.fixture(scope="session")
def toy_db():
    return generate_toy()


@pytest.fixture(scope="session")
def toy(toy_db):
    return translate_database(
        toy_db,
        categorical_attributes={"Institutions": ["country"],
                                "Papers": ["year"]},
        label_overrides=default_label_overrides(),
    )


@pytest.fixture(scope="session")
def movies_db():
    return generate_movies(MoviesConfig(movies=80, people=60, seed=11))


@pytest.fixture(scope="session")
def movies(movies_db):
    return translate_database(
        movies_db,
        categorical_attributes=movies_categorical_attributes(),
        label_overrides=movies_label_overrides(),
    )
